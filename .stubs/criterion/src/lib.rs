//! Offline build stub for `criterion`: the bench binaries compile and
//! each routine runs exactly once (a smoke execution, no measurement).

use std::fmt::Display;

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    pub fn bench_function<F>(&mut self, _name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }

    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup {
        BenchmarkGroup
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher, &I),
    {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = routine(setup());
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn from_parameter<D: Display>(_parameter: D) -> BenchmarkId {
        BenchmarkId
    }

    pub fn new<D: Display>(_name: &str, _parameter: D) -> BenchmarkId {
        BenchmarkId
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
