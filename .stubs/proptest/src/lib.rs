//! Offline build stub for `proptest`: a miniature but *functional*
//! property-testing engine covering exactly the API surface the
//! workspace uses. Strategies sample from a deterministic xorshift64*
//! stream seeded from the test's module path + name, so runs are
//! reproducible; `prop_assume` rejections are retried like the real
//! crate. Far fewer shrinking/edge-case smarts than real proptest — CI
//! with the genuine crate remains the authority.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic xorshift64* stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a 64 over the test name, never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        let mantissa = self.next_u64() >> 11;
        mantissa as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, bound); bound must be > 0.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// A sampling strategy. The workspace's combinators all funnel through
/// [`BoxedStrategy`], a clonable `Rc` sampling closure.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.sample(rng))))
    }

    /// Recursive strategies: each level flips between "stop here" and one
    /// more application of `f`, so samples span shallow to `depth`-deep.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _max_nodes: u32,
        _items_per_collection: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = f(cur.clone()).boxed();
            cur = strategy::union(vec![cur, deeper]);
        }
        cur
    }
}

pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::rc::Rc;

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub fn union<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let idx = rng.below(choices.len());
            choices[idx].sample(rng)
        }))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, i32, i64);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi.saturating_sub(self.size.lo) + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        reject: bool,
        message: String,
    }

    impl TestCaseError {
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                reject: true,
                message: message.into(),
            }
        }

        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                reject: false,
                message: message.into(),
            }
        }

        pub fn is_reject(&self) -> bool {
            self.reject
        }

        pub fn message(&self) -> &str {
            &self.message
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                // 20x attempt budget absorbs prop_assume rejections.
                while ran < cfg.cases && attempts < cfg.cases.saturating_mul(20) {
                    attempts += 1;
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err(e) if e.is_reject() => {}
                        ::std::result::Result::Err(e) =>

                            panic!("property failed: {}", e.message()),
                    }
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}
