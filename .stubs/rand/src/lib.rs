//! Offline build stub: declared but unused by the workspace.
