//! Offline build stub: sequential `par_iter` so bench binaries compile
//! and run without the real rayon. Parallelism is an optimization here,
//! not a semantic requirement — results are identical.

pub mod prelude {
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}
