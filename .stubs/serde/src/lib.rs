//! Offline build stub for `serde`: marker traits with blanket impls so
//! `T: Serialize` / `T: Deserialize` bounds compile. No actual
//! (de)serialization happens — `serde_json` stub functions return `Err`.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait Serializer {}
pub trait Deserializer<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use crate::{Deserialize, Deserializer};
}

pub mod ser {
    pub use crate::{Serialize, Serializer};
}
