//! Offline build stub for `serde_json`: every entry point returns an
//! error. Callers that `.unwrap()` these results (the serde round-trip
//! tests and the facade spec tests) fail — the 13 known stub-only
//! failures tracked in ROADMAP.md. `write_json` in the bench crate
//! handles the error by printing a warning instead of a results file.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn unavailable() -> Error {
    Error("serde_json stub: serialization unavailable in offline builds".to_string())
}

pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    Err(unavailable())
}

pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String> {
    Err(unavailable())
}

pub fn from_str<'a, T>(_s: &'a str) -> Result<T> {
    Err(unavailable())
}
