//! The reverse sweep and the adjoint container.

use crate::tape::{Tape, Var};

/// Adjoints (`∂out/∂node`) of every node on the tape at the moment
/// [`Var::backward`] was called. Detached from the tape, so the tape may be
/// cleared or extended afterwards.
pub struct Gradients {
    adjoints: Vec<f64>,
}

impl Gradients {
    pub(crate) fn compute(tape: &Tape, output: u32) -> Gradients {
        let nodes = tape.nodes.borrow();
        let n = nodes.len();
        let mut adjoints = vec![0.0; n];
        adjoints[output as usize] = 1.0;
        // Nodes appear after their parents, so one reverse pass suffices.
        for i in (0..=output as usize).rev() {
            let a = adjoints[i];
            if a == 0.0 {
                continue;
            }
            let node = &nodes[i];
            for k in 0..node.n_parents as usize {
                adjoints[node.parents[k] as usize] += a * node.partials[k];
            }
        }
        Gradients { adjoints }
    }

    /// Adjoint with respect to `v`: `∂out/∂v`.
    ///
    /// # Panics
    /// If `v` was recorded after `backward()` was called (its index is out of
    /// range for this snapshot).
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        self.adjoints[v.index()]
    }

    /// Adjoint by raw tape index.
    pub fn by_index(&self, idx: usize) -> f64 {
        self.adjoints[idx]
    }

    /// Gradient vector with respect to a slice of variables (typically the
    /// leaves created with [`Tape::vars`]).
    pub fn wrt_slice(&self, vars: &[Var<'_>]) -> Vec<f64> {
        vars.iter().map(|&v| self.wrt(v)).collect()
    }

    /// Number of adjoints captured.
    pub fn len(&self) -> usize {
        self.adjoints.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.adjoints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::{finite_grad, Tape};

    #[test]
    fn gradient_of_composite() {
        // f(x, y) = tanh(x·y) + x/y at (0.7, 1.3)
        let t = Tape::new();
        let x = t.var(0.7);
        let y = t.var(1.3);
        let f = (x * y).tanh() + x / y;
        let g = f.backward();
        let fd = finite_grad(|p| (p[0] * p[1]).tanh() + p[0] / p[1], &[0.7, 1.3], 1e-6);
        assert!((g.wrt(x) - fd[0]).abs() < 1e-5);
        assert!((g.wrt(y) - fd[1]).abs() < 1e-5);
    }

    #[test]
    fn unused_leaf_has_zero_gradient() {
        let t = Tape::new();
        let x = t.var(1.0);
        let y = t.var(2.0);
        let f = x * 3.0;
        let g = f.backward();
        assert_eq!(g.wrt(y), 0.0);
        assert_eq!(g.wrt(x), 3.0);
    }

    #[test]
    fn wrt_slice_matches_individual() {
        let t = Tape::new();
        let vs = t.vars(&[1.0, 2.0, 3.0]);
        let f = vs[0] * vs[1] + vs[2].powi(2);
        let g = f.backward();
        let gs = g.wrt_slice(&vs);
        assert_eq!(gs, vec![2.0, 1.0, 6.0]);
    }

    #[test]
    fn backward_mid_tape_ignores_later_nodes() {
        let t = Tape::new();
        let x = t.var(2.0);
        let f = x * x; // recorded
        let _later = x * 100.0; // also recorded, after f
        let g = f.backward();
        assert_eq!(g.wrt(x), 4.0);
    }

    #[test]
    fn deep_chain() {
        // f = ((((x+1)+1)...+1) * 2 repeatedly — checks long tapes.
        let t = Tape::new();
        let x = t.var(0.0);
        let mut v = x;
        for _ in 0..1000 {
            v = v + 1.0;
        }
        let g = v.backward();
        assert_eq!(v.value(), 1000.0);
        assert_eq!(g.wrt(x), 1.0);
    }
}
