//! Tape-based reverse-mode automatic differentiation.
//!
//! The Dragster paper uses PyTorch `autograd` to differentiate the DAG
//! throughput composition `f_t(y)` with respect to per-operator service
//! capacities in order to identify bottleneck operators (Section 3.2).
//! This crate is the from-scratch Rust substitute: a classic Wengert-list
//! (tape) reverse-mode AD over scalar expressions.
//!
//! # Design
//!
//! * A [`Tape`] is an append-only arena of nodes. Each node records up to two
//!   parent indices together with the *local partial derivatives* computed
//!   eagerly during the forward pass, so the backward sweep is a single
//!   reverse iteration accumulating adjoints.
//! * A [`Var`] is a lightweight `(tape, index, value)` handle implementing
//!   the usual operator overloads, so model code reads like plain arithmetic.
//! * Non-smooth primitives (`min`, `max`, `abs`, `relu`) propagate a
//!   subgradient, matching what PyTorch does and what the online saddle
//!   point algorithm requires for the `min(α·y, h(ē))` truncation of Eq. (4).
//!
//! # Example
//!
//! ```
//! use dragster_autodiff::Tape;
//!
//! let tape = Tape::new();
//! let x = tape.var(3.0);
//! let y = tape.var(2.0);
//! let z = (x * y + x.tanh()).min(y * 10.0);
//! let grads = z.backward();
//! assert!((grads.wrt(x) - (2.0 + (1.0 - 3.0f64.tanh().powi(2)))).abs() < 1e-12);
//! ```

mod grad;
mod ops;
mod tape;

pub use grad::Gradients;
pub use ops::{dot, sum, weighted_min};
pub use tape::{Tape, Var};

/// Convenience: numerically differentiate `f` at `x` with central differences.
///
/// Used by tests and as a cross-check utility; `h` is the step size (a good
/// default is `1e-6 * (1.0 + x.abs())`).
pub fn finite_diff<F: Fn(f64) -> f64>(f: F, x: f64, h: f64) -> f64 {
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Numerically compute the gradient of a multivariate function with central
/// differences. `f` receives the full point; one coordinate is perturbed at a
/// time.
pub fn finite_grad<F: Fn(&[f64]) -> f64>(f: F, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_diff_of_square() {
        let d = finite_diff(|x| x * x, 3.0, 1e-6);
        assert!((d - 6.0).abs() < 1e-6);
    }

    #[test]
    fn finite_grad_of_dot() {
        let g = finite_grad(|x| x[0] * 2.0 + x[1] * 3.0, &[1.0, 1.0], 1e-6);
        assert!((g[0] - 2.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }
}
