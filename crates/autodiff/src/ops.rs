//! Operator overloads and transcendental primitives for [`Var`].

use crate::tape::Var;
use std::ops::{Add, Div, Mul, Neg, Sub};

// ---------------------------------------------------------------------------
// Var ∘ Var
// ---------------------------------------------------------------------------

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(rhs, self.val + rhs.val, 1.0, 1.0)
    }
}

impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(rhs, self.val - rhs.val, 1.0, -1.0)
    }
}

impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(rhs, self.val * rhs.val, rhs.val, self.val)
    }
}

impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        let inv = 1.0 / rhs.val;
        self.binary(rhs, self.val * inv, inv, -self.val * inv * inv)
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        self.unary(-self.val, -1.0)
    }
}

// ---------------------------------------------------------------------------
// Var ∘ f64 and f64 ∘ Var
// ---------------------------------------------------------------------------

impl<'t> Add<f64> for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: f64) -> Var<'t> {
        self.unary(self.val + rhs, 1.0)
    }
}

impl<'t> Add<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        rhs + self
    }
}

impl<'t> Sub<f64> for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: f64) -> Var<'t> {
        self.unary(self.val - rhs, 1.0)
    }
}

impl<'t> Sub<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        rhs.unary(self - rhs.val, -1.0)
    }
}

impl<'t> Mul<f64> for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: f64) -> Var<'t> {
        self.unary(self.val * rhs, rhs)
    }
}

impl<'t> Mul<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        rhs * self
    }
}

impl<'t> Div<f64> for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: f64) -> Var<'t> {
        self * (1.0 / rhs)
    }
}

impl<'t> Div<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        let inv = 1.0 / rhs.val;
        rhs.unary(self * inv, -self * inv * inv)
    }
}

// ---------------------------------------------------------------------------
// Transcendental / non-smooth primitives
// ---------------------------------------------------------------------------

impl<'t> Var<'t> {
    /// Hyperbolic tangent — the paper's example concave throughput function
    /// (Eq. 2c).
    pub fn tanh(self) -> Var<'t> {
        let t = self.val.tanh();
        self.unary(t, 1.0 - t * t)
    }

    /// Natural exponential.
    pub fn exp(self) -> Var<'t> {
        let e = self.val.exp();
        self.unary(e, e)
    }

    /// Natural logarithm. Undefined for non-positive input (propagates NaN,
    /// as `f64::ln` does).
    pub fn ln(self) -> Var<'t> {
        self.unary(self.val.ln(), 1.0 / self.val)
    }

    /// Square root.
    pub fn sqrt(self) -> Var<'t> {
        let s = self.val.sqrt();
        self.unary(s, 0.5 / s)
    }

    /// Integer power.
    pub fn powi(self, n: i32) -> Var<'t> {
        self.unary(self.val.powi(n), n as f64 * self.val.powi(n - 1))
    }

    /// Real power (base must be positive for a meaningful derivative).
    pub fn powf(self, p: f64) -> Var<'t> {
        self.unary(self.val.powf(p), p * self.val.powf(p - 1.0))
    }

    /// Pointwise minimum. Subgradient: picks the branch attaining the min;
    /// ties route the full gradient to `self` (a valid subgradient choice).
    /// This is the truncation primitive of Eq. (4):
    /// `e = min(α·y, h(ē))`.
    pub fn min(self, rhs: Var<'t>) -> Var<'t> {
        if self.val <= rhs.val {
            self.binary(rhs, self.val, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.val, 0.0, 1.0)
        }
    }

    /// Pointwise maximum (subgradient; ties route to `self`).
    pub fn max(self, rhs: Var<'t>) -> Var<'t> {
        if self.val >= rhs.val {
            self.binary(rhs, self.val, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.val, 0.0, 1.0)
        }
    }

    /// `min` against a constant.
    pub fn min_c(self, c: f64) -> Var<'t> {
        if self.val <= c {
            self.unary(self.val, 1.0)
        } else {
            self.unary(c, 0.0)
        }
    }

    /// `max` against a constant.
    pub fn max_c(self, c: f64) -> Var<'t> {
        if self.val >= c {
            self.unary(self.val, 1.0)
        } else {
            self.unary(c, 0.0)
        }
    }

    /// Absolute value; subgradient 0 at the kink.
    pub fn abs(self) -> Var<'t> {
        let d = if self.val > 0.0 {
            1.0
        } else if self.val < 0.0 {
            -1.0
        } else {
            0.0
        };
        self.unary(self.val.abs(), d)
    }

    /// Rectified linear: `max(x, 0)`.
    pub fn relu(self) -> Var<'t> {
        self.max_c(0.0)
    }

    /// Smooth (log-sum-exp) approximation of `min`, useful when the
    /// saddle-point inner maximization benefits from a differentiable
    /// surrogate of the Eq. (4) truncation. `beta > 0` controls sharpness;
    /// as `beta → ∞` this approaches the exact min from below.
    pub fn soft_min(self, rhs: Var<'t>, beta: f64) -> Var<'t> {
        // -1/β · ln(exp(-β a) + exp(-β b)), computed stably around the min.
        let m = self.min(rhs);
        let a = (self - m) * (-beta);
        let b = (rhs - m) * (-beta);
        m - (a.exp() + b.exp()).ln() / beta
    }
}

/// Sum a slice of variables. Returns `None` for an empty slice (an empty sum
/// has no tape to attach a zero constant to).
pub fn sum<'t>(vars: &[Var<'t>]) -> Option<Var<'t>> {
    let mut it = vars.iter().copied();
    let first = it.next()?;
    Some(it.fold(first, |acc, v| acc + v))
}

/// Inner product of variables with constant weights (Eq. 2a's
/// `k⃗ · ē`). Panics if lengths differ; returns `None` when empty.
pub fn dot<'t>(vars: &[Var<'t>], weights: &[f64]) -> Option<Var<'t>> {
    assert_eq!(vars.len(), weights.len(), "dot length mismatch");
    let mut it = vars.iter().copied().zip(weights.iter().copied());
    let (v0, w0) = it.next()?;
    Some(it.fold(v0 * w0, |acc, (v, w)| acc + v * w))
}

/// Minimum over a weighted slice (Eq. 2b's `min(k⃗ ∘ ē)`).
pub fn weighted_min<'t>(vars: &[Var<'t>], weights: &[f64]) -> Option<Var<'t>> {
    assert_eq!(vars.len(), weights.len(), "weighted_min length mismatch");
    let mut it = vars.iter().copied().zip(weights.iter().copied());
    let (v0, w0) = it.next()?;
    Some(it.fold(v0 * w0, |acc, (v, w)| acc.min(v * w)))
}

#[cfg(test)]
mod tests {
    use crate::{finite_diff, Tape};

    #[test]
    fn add_sub_mul_div() {
        let t = Tape::new();
        let x = t.var(3.0);
        let y = t.var(4.0);
        let z = (x + y) * (x - y) / y; // (x²−y²)/y
        assert!((z.value() - (9.0 - 16.0) / 4.0).abs() < 1e-12);
        let g = z.backward();
        // ∂/∂x = 2x/y = 1.5 ; ∂/∂y = (−2y·y − (x²−y²))/y² = −2 − (x²−y²)/y²
        assert!((g.wrt(x) - 1.5).abs() < 1e-12);
        assert!((g.wrt(y) - (-2.0 - (9.0 - 16.0) / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn scalar_ops_all_directions() {
        let t = Tape::new();
        let x = t.var(2.0);
        let z = 1.0 + (3.0 * x - 1.0) / 2.0 - (4.0 - x) + 6.0 / x;
        // z = 1 + (3x−1)/2 − 4 + x + 6/x ; dz/dx = 1.5 + 1 − 6/x²
        let g = z.backward();
        assert!((g.wrt(x) - (1.5 + 1.0 - 6.0 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn tanh_exp_ln_sqrt_pow_match_finite_diff() {
        for x0 in [0.3, 1.1, 2.7] {
            let t = Tape::new();
            let x = t.var(x0);
            let z = x.tanh() + x.exp() * 0.01 + x.ln() + x.sqrt() + x.powi(3) * 0.1 + x.powf(1.7);
            let g = z.backward().wrt(x);
            let fd = finite_diff(
                |v| v.tanh() + v.exp() * 0.01 + v.ln() + v.sqrt() + v.powi(3) * 0.1 + v.powf(1.7),
                x0,
                1e-6,
            );
            assert!((g - fd).abs() < 1e-5, "x0={x0} ad={g} fd={fd}");
        }
    }

    #[test]
    fn min_max_pick_active_branch() {
        let t = Tape::new();
        let x = t.var(2.0);
        let y = t.var(5.0);
        let lo = x.min(y);
        let hi = x.max(y);
        assert_eq!(lo.value(), 2.0);
        assert_eq!(hi.value(), 5.0);
        let gl = lo.backward();
        assert_eq!(gl.wrt(x), 1.0);
        assert_eq!(gl.wrt(y), 0.0);
        let gh = hi.backward();
        assert_eq!(gh.wrt(x), 0.0);
        assert_eq!(gh.wrt(y), 1.0);
    }

    #[test]
    fn min_c_max_c_abs_relu() {
        let t = Tape::new();
        let x = t.var(-1.5);
        assert_eq!(x.min_c(0.0).value(), -1.5);
        assert_eq!(x.max_c(0.0).value(), 0.0);
        assert_eq!(x.abs().value(), 1.5);
        assert_eq!(x.abs().backward().wrt(x), -1.0);
        assert_eq!(x.relu().backward().wrt(x), 0.0);
        let y = t.var(2.0);
        assert_eq!(y.relu().backward().wrt(y), 1.0);
    }

    #[test]
    fn abs_at_zero_has_zero_subgradient() {
        let t = Tape::new();
        let x = t.var(0.0);
        assert_eq!(x.abs().backward().wrt(x), 0.0);
    }

    #[test]
    fn soft_min_approaches_min() {
        let t = Tape::new();
        let x = t.var(2.0);
        let y = t.var(3.0);
        let sm = x.soft_min(y, 50.0);
        assert!((sm.value() - 2.0).abs() < 1e-3);
        // gradient mostly routed to the smaller argument
        let g = sm.backward();
        assert!(g.wrt(x) > 0.99);
        assert!(g.wrt(y) < 0.01);
    }

    #[test]
    fn helpers_sum_dot_weighted_min() {
        let t = Tape::new();
        let vs = t.vars(&[1.0, 2.0, 3.0]);
        let s = super::sum(&vs).unwrap();
        assert_eq!(s.value(), 6.0);
        let d = super::dot(&vs, &[1.0, 0.5, 2.0]).unwrap();
        assert_eq!(d.value(), 1.0 + 1.0 + 6.0);
        let m = super::weighted_min(&vs, &[5.0, 1.0, 1.0]).unwrap();
        assert_eq!(m.value(), 2.0);
        let g = m.backward();
        assert_eq!(g.wrt(vs[1]), 1.0);
        assert_eq!(g.wrt(vs[0]), 0.0);
    }

    #[test]
    fn empty_helpers_return_none() {
        assert!(super::sum(&[]).is_none());
        assert!(super::dot(&[], &[]).is_none());
        assert!(super::weighted_min(&[], &[]).is_none());
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // z = w + w where w = x², so dz/dx = 4x.
        let t = Tape::new();
        let x = t.var(3.0);
        let w = x * x;
        let z = w + w;
        assert_eq!(z.backward().wrt(x), 12.0);
    }
}
