//! The tape (Wengert list) and variable handle.

use std::cell::RefCell;

/// One recorded operation. Parents store the tape indices of the inputs and
/// the local partial derivative of this node's value with respect to each.
/// Leaf variables have `n_parents == 0`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub parents: [u32; 2],
    pub partials: [f64; 2],
    pub n_parents: u8,
}

impl Node {
    pub(crate) fn leaf() -> Self {
        Node {
            parents: [0, 0],
            partials: [0.0, 0.0],
            n_parents: 0,
        }
    }

    pub(crate) fn unary(parent: u32, partial: f64) -> Self {
        Node {
            parents: [parent, 0],
            partials: [partial, 0.0],
            n_parents: 1,
        }
    }

    pub(crate) fn binary(p0: u32, d0: f64, p1: u32, d1: f64) -> Self {
        Node {
            parents: [p0, p1],
            partials: [d0, d1],
            n_parents: 2,
        }
    }
}

/// An append-only arena recording every scalar operation performed through
/// [`Var`] handles. Cheap to create; reuse one tape per gradient evaluation
/// and call [`Tape::clear`] between evaluations to avoid reallocation.
///
/// The tape is single-threaded by construction (`RefCell`); the Dragster
/// controller differentiates one DAG per decision slot, which is a
/// microsecond-scale operation — parallelism lives at the experiment level.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(256)),
        }
    }

    /// Create an empty tape with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(cap)),
        }
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no node has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every recorded node, invalidating all outstanding [`Var`]s.
    /// Keeps the allocation.
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
    }

    /// Record a new leaf (independent) variable with value `v`.
    pub fn var(&self, v: f64) -> Var<'_> {
        let idx = self.push(Node::leaf());
        Var {
            tape: self,
            idx,
            val: v,
        }
    }

    /// Record a constant. Constants are leaves too — their adjoint is simply
    /// never read — but keeping them on the tape keeps the node indexing
    /// uniform.
    pub fn constant(&self, v: f64) -> Var<'_> {
        self.var(v)
    }

    /// Record a batch of leaf variables.
    pub fn vars(&self, vs: &[f64]) -> Vec<Var<'_>> {
        vs.iter().map(|&v| self.var(v)).collect()
    }

    pub(crate) fn push(&self, node: Node) -> u32 {
        let mut nodes = self.nodes.borrow_mut();
        let idx = nodes.len();
        assert!(idx < u32::MAX as usize, "tape overflow");
        nodes.push(node);
        idx as u32
    }
}

/// A handle to one scalar value on a [`Tape`]. `Copy`, so expressions can
/// reuse sub-terms freely; the recorded graph is a DAG.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) idx: u32,
    pub(crate) val: f64,
}

impl<'t> Var<'t> {
    /// The forward value of this expression.
    pub fn value(self) -> f64 {
        self.val
    }

    /// Tape index (stable for the lifetime of the tape; used as a key by
    /// [`crate::Gradients`]).
    pub fn index(self) -> usize {
        self.idx as usize
    }

    pub(crate) fn unary(self, val: f64, partial: f64) -> Var<'t> {
        let idx = self.tape.push(Node::unary(self.idx, partial));
        Var {
            tape: self.tape,
            idx,
            val,
        }
    }

    pub(crate) fn binary(self, rhs: Var<'t>, val: f64, d_self: f64, d_rhs: f64) -> Var<'t> {
        debug_assert!(
            std::ptr::eq(self.tape, rhs.tape),
            "vars from different tapes"
        );
        let idx = self
            .tape
            .push(Node::binary(self.idx, d_self, rhs.idx, d_rhs));
        Var {
            tape: self.tape,
            idx,
            val,
        }
    }

    /// Run the reverse sweep seeded with `∂out/∂out = 1` and return the
    /// adjoints of every node recorded so far.
    pub fn backward(self) -> crate::Gradients {
        crate::Gradients::compute(self.tape, self.idx)
    }
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var[{}]={}", self.idx, self.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_records_leaves() {
        let t = Tape::new();
        let a = t.var(1.0);
        let b = t.var(2.0);
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(a.value(), 1.0);
        assert_eq!(b.value(), 2.0);
    }

    #[test]
    fn clear_resets_indices() {
        let t = Tape::new();
        let _ = t.var(1.0);
        t.clear();
        assert!(t.is_empty());
        let a = t.var(5.0);
        assert_eq!(a.index(), 0);
    }

    #[test]
    fn vars_batch() {
        let t = Tape::new();
        let vs = t.vars(&[1.0, 2.0, 3.0]);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[2].value(), 3.0);
    }
}
