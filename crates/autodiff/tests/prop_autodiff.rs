//! Property tests: reverse-mode gradients agree with central finite
//! differences on randomly generated expressions.

use dragster_autodiff::{finite_grad, Tape};
use proptest::prelude::*;

/// A tiny expression language we can evaluate both through the tape and as
/// plain f64 arithmetic.
#[derive(Clone, Debug)]
enum Expr {
    Leaf(usize),
    Const(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Tanh(Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, xs: &[f64]) -> f64 {
        match self {
            Expr::Leaf(i) => xs[*i],
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval(xs) + b.eval(xs),
            Expr::Sub(a, b) => a.eval(xs) - b.eval(xs),
            Expr::Mul(a, b) => a.eval(xs) * b.eval(xs),
            Expr::Tanh(a) => a.eval(xs).tanh(),
            Expr::Min(a, b) => a.eval(xs).min(b.eval(xs)),
            Expr::Max(a, b) => a.eval(xs).max(b.eval(xs)),
        }
    }

    fn trace<'t>(
        &self,
        tape: &'t Tape,
        leaves: &[dragster_autodiff::Var<'t>],
    ) -> dragster_autodiff::Var<'t> {
        match self {
            Expr::Leaf(i) => leaves[*i],
            Expr::Const(c) => tape.constant(*c),
            Expr::Add(a, b) => a.trace(tape, leaves) + b.trace(tape, leaves),
            Expr::Sub(a, b) => a.trace(tape, leaves) - b.trace(tape, leaves),
            Expr::Mul(a, b) => a.trace(tape, leaves) * b.trace(tape, leaves),
            Expr::Tanh(a) => a.trace(tape, leaves).tanh(),
            Expr::Min(a, b) => a.trace(tape, leaves).min(b.trace(tape, leaves)),
            Expr::Max(a, b) => a.trace(tape, leaves).max(b.trace(tape, leaves)),
        }
    }

    /// Distance from the point `xs` to the nearest min/max tie — finite
    /// differences are invalid near kinks, so tests skip those points.
    fn kink_margin(&self, xs: &[f64]) -> f64 {
        match self {
            Expr::Leaf(_) | Expr::Const(_) => f64::INFINITY,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.kink_margin(xs).min(b.kink_margin(xs))
            }
            Expr::Tanh(a) => a.kink_margin(xs),
            Expr::Min(a, b) | Expr::Max(a, b) => {
                let gap = (a.eval(xs) - b.eval(xs)).abs();
                gap.min(a.kink_margin(xs)).min(b.kink_margin(xs))
            }
        }
    }
}

fn arb_expr(n_leaves: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..n_leaves).prop_map(Expr::Leaf),
        (-2.0..2.0f64).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Tanh(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gradient_matches_finite_difference(
        expr in arb_expr(3),
        xs in proptest::collection::vec(-1.5..1.5f64, 3),
    ) {
        // Skip points too close to a min/max tie: the subgradient choice and
        // the central difference legitimately disagree there.
        prop_assume!(expr.kink_margin(&xs) > 1e-3);

        let tape = Tape::new();
        let leaves = tape.vars(&xs);
        let out = expr.trace(&tape, &leaves);
        prop_assert!((out.value() - expr.eval(&xs)).abs() < 1e-9);

        let grads = out.backward();
        let ad: Vec<f64> = grads.wrt_slice(&leaves);
        let fd = finite_grad(|p| expr.eval(p), &xs, 1e-5);
        for (i, (a, f)) in ad.iter().zip(fd.iter()).enumerate() {
            let scale = 1.0 + a.abs().max(f.abs());
            prop_assert!(
                (a - f).abs() / scale < 1e-3,
                "coord {i}: ad={a} fd={f} expr={expr:?} xs={xs:?}"
            );
        }
    }

    #[test]
    fn forward_value_is_pure(expr in arb_expr(2), xs in proptest::collection::vec(-1.0..1.0f64, 2)) {
        // Tracing the same expression twice on fresh tapes yields identical
        // values (the tape has no hidden state).
        let t1 = Tape::new();
        let v1 = expr.trace(&t1, &t1.vars(&xs)).value();
        let t2 = Tape::new();
        let v2 = expr.trace(&t2, &t2.vars(&xs)).value();
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn linearity_of_backward(a in -2.0..2.0f64, b in -2.0..2.0f64, x0 in -1.0..1.0f64) {
        // d(a·g + b·h)/dx == a·dg/dx + b·dh/dx with g = x², h = tanh x.
        let t = Tape::new();
        let x = t.var(x0);
        let g = x * x;
        let h = x.tanh();
        let combo = g * a + h * b;
        let dg = 2.0 * x0;
        let dh = 1.0 - x0.tanh().powi(2);
        let got = combo.backward().wrt(x);
        prop_assert!((got - (a * dg + b * dh)).abs() < 1e-10);
    }
}
