//! Dhalion — the rule-based state of the art the paper compares against.
//!
//! The paper summarizes the policy it runs (Section 6.1):
//!
//! > *"Dhalion linearly increases the number of tasks for an operator
//! > suffering from the backpressure and removes the idle one if its CPU
//! > utilization is lower than a threshold."*
//!
//! and Figure 4(d) adds: *"at each time slot, Dhalion selects one operator
//! to adjust its configuration"*. Faithfully to Dhalion's
//! symptom → diagnosis → resolution pipeline, each slot:
//!
//! 1. **Symptom**: operators reporting backpressure (buffer growth or
//!    sustained saturation — what Heron derives from stream-manager
//!    metrics).
//! 2. **Diagnosis**: the most backpressured operator (largest buffer) is
//!    under-provisioned.
//! 3. **Resolution**: add `scale_step` task(s) to it. If nothing is
//!    backpressured, remove one task from the most idle operator whose CPU
//!    utilization is below `idle_threshold` (scale-down rule).
//!
//! Dhalion has no model and no memory: recurring load patterns trigger the
//! same linear search every time — exactly the weakness Figure 6/Table 2
//! exposes ("Dhalion always takes 40 minutes to do so").

use dragster_core::num::{argmax, argmin};
use dragster_sim::{Autoscaler, Deployment, SimError, SlotMetrics};

/// Tunables of the rule pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DhalionConfig {
    /// Tasks added to a backpressured operator per adjustment (the paper's
    /// "linearly increases" — 1).
    pub scale_step: usize,
    /// CPU utilization below which a task is considered removable.
    pub idle_threshold: f64,
    /// Per-operator task ceiling.
    pub max_tasks: usize,
    /// Pod budget, if the experiment imposes one.
    pub budget_pods: Option<usize>,
}

impl Default for DhalionConfig {
    fn default() -> Self {
        DhalionConfig {
            scale_step: 1,
            idle_threshold: 0.5,
            max_tasks: 10,
            budget_pods: None,
        }
    }
}

/// The Dhalion policy state.
pub struct Dhalion {
    cfg: DhalionConfig,
}

impl Dhalion {
    pub fn new(cfg: DhalionConfig) -> Dhalion {
        Dhalion { cfg }
    }
}

impl Default for Dhalion {
    fn default() -> Self {
        Dhalion::new(DhalionConfig::default())
    }
}

impl Autoscaler for Dhalion {
    fn name(&self) -> String {
        "Dhalion".into()
    }

    fn decide(
        &mut self,
        _t: usize,
        metrics: &SlotMetrics,
        current: &Deployment,
    ) -> Result<Deployment, SimError> {
        let mut next = current.clone();

        // Symptom detection: the most backpressured operator (largest
        // buffer; ties break toward the lowest operator index).
        let bp_candidates: Vec<usize> = (0..metrics.operators.len())
            .filter(|&i| metrics.operators[i].backpressure)
            .collect();
        let bp_buffers: Vec<f64> = bp_candidates
            .iter()
            .map(|&i| metrics.operators[i].buffer_tuples)
            .collect();

        if let Some(k) = argmax(&bp_buffers) {
            let i = bp_candidates[k];
            // Resolution: linear scale-up of the diagnosed operator.
            let headroom_ok = self
                .cfg
                .budget_pods
                .is_none_or(|b| next.total_pods() + self.cfg.scale_step <= b);
            if next.tasks[i] < self.cfg.max_tasks && headroom_ok {
                next.tasks[i] = (next.tasks[i] + self.cfg.scale_step).min(self.cfg.max_tasks);
                return Ok(next);
            }
            // At the ceiling/budget: Dhalion has no further rule — it keeps
            // the configuration (the Fig. 4d stuck-at-non-optimal case).
            return Ok(next);
        }

        // No backpressure anywhere: scale-down rule. Remove one task from
        // the most idle operator below the threshold.
        let idle_candidates: Vec<usize> = (0..metrics.operators.len())
            .filter(|&i| {
                metrics.operators[i].cpu_util < self.cfg.idle_threshold && next.tasks[i] > 1
            })
            .collect();
        let idle_utils: Vec<f64> = idle_candidates
            .iter()
            .map(|&i| metrics.operators[i].cpu_util)
            .collect();
        if let Some(k) = argmin(&idle_utils) {
            next.tasks[idle_candidates[k]] -= 1;
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_sim::OperatorMetrics;

    fn op(name: &str, bp: bool, util: f64, buffer: f64) -> OperatorMetrics {
        OperatorMetrics {
            name: name.into(),
            tasks: 2,
            input_rate: 100.0,
            input_rates: vec![100.0],
            output_rate: 90.0,
            offered_load: 100.0,
            cpu_util: util,
            capacity_sample: 120.0,
            buffer_tuples: buffer,
            latency_estimate_secs: buffer / 90.0,
            backpressure: bp,
            degraded: false,
        }
    }

    fn slot(ops: Vec<OperatorMetrics>) -> SlotMetrics {
        SlotMetrics {
            t: 0,
            sim_time_secs: 600.0,
            throughput: 90.0,
            processed_tuples: 54000.0,
            dropped_tuples: 0.0,
            cost_dollars: 0.1,
            pods: ops.iter().map(|o| o.tasks).sum(),
            source_rates: vec![100.0],
            reconfigured: false,
            pause_secs: 0.0,
            operators: ops,
        }
    }

    #[test]
    fn scales_up_most_backpressured() {
        let mut d = Dhalion::default();
        let m = slot(vec![op("a", true, 1.0, 500.0), op("b", true, 1.0, 9000.0)]);
        let next = d.decide(0, &m, &Deployment { tasks: vec![2, 2] }).unwrap();
        assert_eq!(next.tasks, vec![2, 3]);
    }

    #[test]
    fn adjusts_one_operator_per_slot() {
        let mut d = Dhalion::default();
        let m = slot(vec![op("a", true, 1.0, 500.0), op("b", true, 1.0, 400.0)]);
        let next = d.decide(0, &m, &Deployment { tasks: vec![2, 2] }).unwrap();
        let moved: usize = next
            .tasks
            .iter()
            .zip([2usize, 2])
            .map(|(a, b)| a.abs_diff(b))
            .sum();
        assert_eq!(moved, 1);
    }

    #[test]
    fn scales_down_idle_operator() {
        let mut d = Dhalion::default();
        let m = slot(vec![op("a", false, 0.2, 0.0), op("b", false, 0.8, 0.0)]);
        let next = d.decide(0, &m, &Deployment { tasks: vec![3, 3] }).unwrap();
        assert_eq!(next.tasks, vec![2, 3]);
    }

    #[test]
    fn keeps_configuration_when_stable() {
        let mut d = Dhalion::default();
        let m = slot(vec![op("a", false, 0.7, 0.0), op("b", false, 0.8, 0.0)]);
        let next = d.decide(0, &m, &Deployment { tasks: vec![3, 3] }).unwrap();
        assert_eq!(next.tasks, vec![3, 3]);
    }

    #[test]
    fn never_drops_below_one_task() {
        let mut d = Dhalion::default();
        let m = slot(vec![op("a", false, 0.01, 0.0)]);
        let next = d.decide(0, &m, &Deployment { tasks: vec![1] }).unwrap();
        assert_eq!(next.tasks, vec![1]);
    }

    #[test]
    fn respects_budget_and_gets_stuck() {
        let mut d = Dhalion::new(DhalionConfig {
            budget_pods: Some(4),
            ..Default::default()
        });
        let m = slot(vec![op("a", false, 0.9, 0.0), op("b", true, 1.0, 9000.0)]);
        // already at budget: cannot add the needed task — stays put
        let next = d.decide(0, &m, &Deployment { tasks: vec![2, 2] }).unwrap();
        assert_eq!(next.tasks, vec![2, 2]);
    }

    #[test]
    fn respects_task_ceiling() {
        let mut d = Dhalion::new(DhalionConfig {
            max_tasks: 3,
            ..Default::default()
        });
        let m = slot(vec![op("a", true, 1.0, 9000.0)]);
        let next = d.decide(0, &m, &Deployment { tasks: vec![3] }).unwrap();
        assert_eq!(next.tasks, vec![3]);
    }
}
