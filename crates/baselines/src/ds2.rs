//! DS2 — the linear rate-based scaling controller of Kalavri et al.
//! (OSDI'18), discussed in the paper's Related Work: *"a dynamic scaling
//! controller which linearly increases/decreases the number of executors in
//! each operator based on the processing rate of upstreams."*
//!
//! DS2's model: measure each operator's *true* per-instance processing
//! rate (the rate one task sustains when busy) and the rate it *must*
//! sustain (its offered load), then jump directly to
//! `parallelism = ⌈ offered / per-instance-rate ⌉` for every operator at
//! once. With accurate rates this converges in one step ("three steps is
//! all you need" in practice, due to measurement error); its weakness —
//! which motivates Dragster — is the assumed *linear* capacity model: with
//! contention or saturation the linear extrapolation systematically
//! overshoots or undershoots.

use dragster_sim::{Autoscaler, Deployment, SimError, SlotMetrics};

/// DS2 tunables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ds2Config {
    /// Per-operator task ceiling.
    pub max_tasks: usize,
    /// Pod budget, if any (DS2 itself is budget-unaware; we clamp).
    pub budget_pods: Option<usize>,
    /// Safety factor on the computed parallelism (DS2 deployments
    /// typically over-provision slightly, e.g. 1.1).
    pub headroom: f64,
}

impl Default for Ds2Config {
    fn default() -> Self {
        Ds2Config {
            max_tasks: 10,
            budget_pods: None,
            headroom: 1.1,
        }
    }
}

/// The DS2 policy.
pub struct Ds2 {
    cfg: Ds2Config,
}

impl Ds2 {
    pub fn new(cfg: Ds2Config) -> Ds2 {
        Ds2 { cfg }
    }
}

impl Default for Ds2 {
    fn default() -> Self {
        Ds2::new(Ds2Config::default())
    }
}

impl Autoscaler for Ds2 {
    fn name(&self) -> String {
        "DS2".into()
    }

    fn decide(
        &mut self,
        _t: usize,
        metrics: &SlotMetrics,
        current: &Deployment,
    ) -> Result<Deployment, SimError> {
        let mut tasks = Vec::with_capacity(current.len());
        for (i, om) in metrics.operators.iter().enumerate() {
            let cur_tasks = current.tasks.get(i).copied().unwrap_or(1);
            // True per-instance rate: the observed capacity sample divided
            // by the current task count (DS2 derives this from useful-time
            // metrics; Eq. 8's sample is the same quantity here).
            let per_instance = if om.capacity_sample > 1e-9 {
                om.capacity_sample / cur_tasks as f64
            } else {
                0.0
            };
            let want = if per_instance > 1e-9 {
                (om.offered_load * self.cfg.headroom / per_instance).ceil() as usize
            } else {
                cur_tasks
            };
            tasks.push(want.clamp(1, self.cfg.max_tasks));
        }
        let d = Deployment { tasks };
        Ok(dragster_sim::harness::project_to_budget(
            d,
            self.cfg.budget_pods,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_sim::OperatorMetrics;

    fn op(offered: f64, cap_sample: f64) -> OperatorMetrics {
        OperatorMetrics {
            name: "op".into(),
            tasks: 2,
            input_rate: offered,
            input_rates: vec![offered],
            output_rate: cap_sample.min(offered),
            offered_load: offered,
            cpu_util: 0.9,
            capacity_sample: cap_sample,
            buffer_tuples: 0.0,
            latency_estimate_secs: 0.0,
            backpressure: offered > cap_sample,
            degraded: false,
        }
    }

    fn slot(ops: Vec<OperatorMetrics>) -> SlotMetrics {
        SlotMetrics {
            t: 0,
            sim_time_secs: 600.0,
            throughput: 100.0,
            processed_tuples: 6e4,
            dropped_tuples: 0.0,
            cost_dollars: 0.1,
            pods: 4,
            source_rates: vec![100.0],
            reconfigured: false,
            pause_secs: 0.0,
            operators: ops,
        }
    }

    #[test]
    fn jumps_to_required_parallelism() {
        let mut ds2 = Ds2::new(Ds2Config {
            headroom: 1.0,
            ..Default::default()
        });
        // 2 tasks sustain 200 ⇒ 100/instance; offered 450 ⇒ need 5.
        let m = slot(vec![op(450.0, 200.0)]);
        let next = ds2.decide(0, &m, &Deployment { tasks: vec![2] }).unwrap();
        assert_eq!(next.tasks, vec![5]);
    }

    #[test]
    fn scales_down_in_one_step() {
        let mut ds2 = Ds2::new(Ds2Config {
            headroom: 1.0,
            ..Default::default()
        });
        // 8 tasks sustain 800 ⇒ offered 90 needs 1.
        let m = slot(vec![op(90.0, 800.0)]);
        let next = ds2.decide(0, &m, &Deployment { tasks: vec![8] }).unwrap();
        assert_eq!(next.tasks, vec![1]);
    }

    #[test]
    fn headroom_rounds_up() {
        let mut ds2 = Ds2::default(); // headroom 1.1
                                      // need exactly 4 instances; headroom pushes to 5
        let m = slot(vec![op(400.0, 200.0)]);
        let next = ds2.decide(0, &m, &Deployment { tasks: vec![2] }).unwrap();
        assert_eq!(next.tasks, vec![5]);
    }

    #[test]
    fn clamps_to_ceiling_and_budget() {
        let mut ds2 = Ds2::new(Ds2Config {
            max_tasks: 10,
            budget_pods: Some(7),
            headroom: 1.0,
        });
        let m = slot(vec![op(5000.0, 100.0), op(5000.0, 100.0)]);
        let next = ds2
            .decide(0, &m, &Deployment { tasks: vec![2, 2] })
            .unwrap();
        assert!(next.total_pods() <= 7);
        assert!(next.tasks.iter().all(|&t| t >= 1));
    }

    #[test]
    fn keeps_tasks_when_no_signal() {
        let mut ds2 = Ds2::default();
        let m = slot(vec![op(100.0, 0.0)]); // no capacity sample
        let next = ds2.decide(0, &m, &Deployment { tasks: vec![3] }).unwrap();
        assert_eq!(next.tasks, vec![3]);
    }
}
