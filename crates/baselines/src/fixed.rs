//! Trivial policies: static (never reconfigure) and uniform-random.
//! They anchor the regret experiments — random incurs linear regret,
//! static incurs linear regret whenever the load moves.

use dragster_sim::json::{self, Json};
use dragster_sim::{Autoscaler, Deployment, Rng, SimError, SlotMetrics};

/// Never changes the deployment.
pub struct StaticScaler;

impl Autoscaler for StaticScaler {
    fn name(&self) -> String {
        "Static".into()
    }

    fn decide(
        &mut self,
        _t: usize,
        _m: &SlotMetrics,
        current: &Deployment,
    ) -> Result<Deployment, SimError> {
        Ok(current.clone())
    }
}

/// Picks a uniformly random feasible deployment every slot.
pub struct RandomScaler {
    rng: Rng,
    pub max_tasks: usize,
    pub budget_pods: Option<usize>,
}

impl RandomScaler {
    pub fn new(seed: u64, max_tasks: usize, budget_pods: Option<usize>) -> RandomScaler {
        RandomScaler {
            rng: Rng::new(seed),
            max_tasks,
            budget_pods,
        }
    }
}

impl Autoscaler for RandomScaler {
    fn name(&self) -> String {
        "Random".into()
    }

    fn decide(
        &mut self,
        _t: usize,
        _m: &SlotMetrics,
        current: &Deployment,
    ) -> Result<Deployment, SimError> {
        let tasks: Vec<usize> = (0..current.len())
            .map(|_| 1 + self.rng.below(self.max_tasks))
            .collect();
        Ok(dragster_sim::harness::project_to_budget(
            Deployment { tasks },
            self.budget_pods,
        ))
    }

    /// The random policy's entire state is its RNG position; checkpoint
    /// it so a restored run continues the identical decision stream.
    fn export_state(&self) -> Option<Json> {
        let (s, spare) = self.rng.save_state();
        Some(Json::Obj(vec![
            (
                "s".to_string(),
                Json::Arr(s.iter().map(|&w| Json::Str(json::u64_to_hex(w))).collect()),
            ),
            ("spare".to_string(), spare.map_or(Json::Null, json::bits)),
        ]))
    }

    fn import_state(&mut self, state: &Json) -> Result<(), SimError> {
        let fail = || SimError::Policy {
            scheme: self.name(),
            reason: "checkpoint state: missing/invalid RNG words".to_string(),
        };
        let words = state.get("s").and_then(Json::as_arr).ok_or_else(fail)?;
        if words.len() != 4 {
            return Err(fail());
        }
        let mut s = [0u64; 4];
        for (slot, w) in s.iter_mut().zip(words.iter()) {
            *slot = w.as_str().and_then(json::u64_from_hex).ok_or_else(fail)?;
        }
        let spare = match state.get("spare") {
            None | Some(Json::Null) => None,
            Some(v) => Some(Json::as_f64_bits(v).ok_or_else(fail)?),
        };
        self.rng = Rng::restore_state(s, spare);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_metrics() -> SlotMetrics {
        SlotMetrics {
            t: 0,
            sim_time_secs: 0.0,
            throughput: 0.0,
            processed_tuples: 0.0,
            dropped_tuples: 0.0,
            cost_dollars: 0.0,
            pods: 0,
            source_rates: vec![],
            reconfigured: false,
            pause_secs: 0.0,
            operators: vec![],
        }
    }

    #[test]
    fn static_never_moves() {
        let mut s = StaticScaler;
        let d = Deployment { tasks: vec![3, 7] };
        assert_eq!(s.decide(0, &dummy_metrics(), &d).unwrap(), d);
        assert_eq!(s.name(), "Static");
    }

    #[test]
    fn random_is_feasible_and_varies() {
        let mut r = RandomScaler::new(1, 10, Some(12));
        let d = Deployment {
            tasks: vec![1, 1, 1],
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let next = r.decide(0, &dummy_metrics(), &d).unwrap();
            assert!(next.total_pods() <= 12);
            assert!(next.tasks.iter().all(|&t| (1..=10).contains(&t)));
            seen.insert(next.tasks.clone());
        }
        assert!(seen.len() > 5, "random policy not varying: {}", seen.len());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let d = Deployment { tasks: vec![1, 1] };
        let mut a = RandomScaler::new(9, 10, None);
        let mut b = RandomScaler::new(9, 10, None);
        for _ in 0..10 {
            assert_eq!(
                a.decide(0, &dummy_metrics(), &d).unwrap(),
                b.decide(0, &dummy_metrics(), &d).unwrap()
            );
        }
    }
}
