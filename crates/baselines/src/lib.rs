//! Baseline autoscalers Dragster is evaluated against.
//!
//! * [`dhalion`] — the paper's comparator (Section 6.1): the rule-based
//!   self-regulation policy of Twitter Heron's Dhalion [Floratou et al.,
//!   VLDB'17], reimplemented from the rules the paper states: linearly add
//!   a task to a backpressured operator; remove an idle task when CPU
//!   utilization falls below a threshold.
//! * [`ds2`] — the DS2 linear scaling controller [Kalavri et al., OSDI'18]
//!   discussed in Related Work: sets each operator's parallelism from its
//!   observed per-instance true processing rate in one step.
//! * [`fixed`] — static and uniformly-random policies, used as sanity
//!   anchors in regret experiments.

pub mod dhalion;
pub mod ds2;
pub mod fixed;

pub use dhalion::{Dhalion, DhalionConfig};
pub use ds2::{Ds2, Ds2Config};
pub use fixed::{RandomScaler, StaticScaler};
