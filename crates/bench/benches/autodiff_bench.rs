//! Criterion micro-benchmarks for the autodiff tape: the gradient of the
//! Yahoo DAG's throughput function (the bottleneck-identification
//! primitive) and raw tape throughput on deep chains.

use criterion::{criterion_group, criterion_main, Criterion};
use dragster_autodiff::Tape;
use dragster_dag::throughput_grad;
use dragster_workloads::yahoo_benchmark;
use std::hint::black_box;

fn bench_dag_gradient(c: &mut Criterion) {
    let y = yahoo_benchmark().expect("workload builds");
    let caps = vec![1.0e5; 6];
    c.bench_function("throughput_grad_yahoo", |b| {
        b.iter(|| {
            black_box(throughput_grad(
                black_box(&y.app.topology),
                black_box(&y.high_rate),
                black_box(&caps),
            ))
        });
    });
}

fn bench_tape_chain(c: &mut Criterion) {
    c.bench_function("tape_chain_1000_ops", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let x = tape.var(0.5);
            let mut v = x;
            for i in 0..1000 {
                v = (v * 1.0001 + 0.001).min(tape.constant(2.0 + i as f64));
            }
            let g = v.backward();
            black_box(g.wrt(x))
        });
    });
}

fn bench_tape_reuse(c: &mut Criterion) {
    // clearing and reusing one tape vs allocating fresh — validates the
    // reuse advice in the tape docs
    c.bench_function("tape_cleared_reuse_100_ops", |b| {
        let tape = Tape::with_capacity(256);
        b.iter(|| {
            tape.clear();
            let x = tape.var(1.2);
            let mut v = x;
            for _ in 0..100 {
                v = v.tanh() + 0.1;
            }
            black_box(v.backward().wrt(x))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dag_gradient, bench_tape_chain, bench_tape_reuse
}
criterion_main!(benches);
