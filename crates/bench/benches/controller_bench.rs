//! Criterion micro-benchmarks for the controller path: the full per-slot
//! decision (observe → dual/primal → GP update → UCB + projection) and its
//! pieces — the saddle-point inner solve and the exact budget projection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragster_core::{project_acquisition, Dragster, DragsterConfig, TargetSolver};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{Autoscaler, ClusterConfig, Deployment, FluidSim, NoiseConfig};
use dragster_workloads::{word_count, yahoo_benchmark, Workload};
use std::hint::black_box;

fn warmed_controller(
    w: &Workload,
    slots: usize,
) -> (Dragster, dragster_sim::SlotMetrics, Deployment) {
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        42,
        Deployment::uniform(w.n_operators(), 1),
    )
    .expect("simulator accepts the application");
    let mut d = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
    let mut last = None;
    for t in 0..slots {
        let m = sim.run_slot(&w.high_rate);
        let next = d.decide(t, &m, sim.deployment()).expect("policy decides");
        last = Some((m, sim.deployment().clone()));
        sim.reconfigure(next).expect("feasible");
    }
    let (m, cur) = last.expect("ran at least one slot");
    (d, m, cur)
}

fn bench_decide(c: &mut Criterion) {
    let mut g = c.benchmark_group("dragster_decide_slot");
    for w in [
        word_count().expect("workload builds"),
        yahoo_benchmark().expect("workload builds"),
    ] {
        let (mut d, m, cur) = warmed_controller(&w, 10);
        g.bench_with_input(BenchmarkId::from_parameter(&w.name), &w.name, |b, _| {
            b.iter(|| black_box(d.decide(black_box(11), black_box(&m), black_box(&cur))));
        });
    }
    g.finish();
}

fn bench_saddle_solve(c: &mut Criterion) {
    let y = yahoo_benchmark().expect("workload builds");
    let solver = TargetSolver::default();
    let lambda = vec![0.3; 6];
    let offered = vec![1.0e5; 6];
    let start = vec![5.0e4; 6];
    c.bench_function("saddle_solve_yahoo", |b| {
        b.iter(|| {
            black_box(solver.solve(
                black_box(&y.app.topology),
                black_box(&y.high_rate),
                &offered,
                &lambda,
                &start,
                4.0e5,
            ))
        });
    });
}

fn bench_projection(c: &mut Criterion) {
    let tables: Vec<Vec<f64>> = (0..6)
        .map(|i| {
            (0..10)
                .map(|x| ((i * 7 + x * 3) % 13) as f64 / 13.0)
                .collect()
        })
        .collect();
    c.bench_function("budget_projection_dp_6x10", |b| {
        b.iter(|| black_box(project_acquisition(black_box(&tables), black_box(30))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decide, bench_saddle_solve, bench_projection
}
criterion_main!(benches);
