//! Criterion micro-benchmarks for the GP stack: incremental posterior
//! updates (the per-slot controller cost) and batch posterior queries over
//! the 10-point configuration grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragster_gp::{information_gain, GpRegressor, SquaredExp};
use std::hint::black_box;

fn observe_n(n: usize) -> GpRegressor<SquaredExp> {
    let mut gp = GpRegressor::new(SquaredExp::new(3.0), 0.01);
    for t in 0..n {
        let x = (t % 10 + 1) as f64;
        gp.observe(&[x], x * 0.08 + (t as f64 * 0.37).sin() * 0.01)
            .expect("bench setup observation is well-formed");
    }
    gp
}

fn bench_incremental_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_observe_incremental");
    for &n in &[10usize, 50, 200, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // The rebuild cost is excluded by iter_batched.
            b.iter_batched(
                || observe_n(n),
                |mut gp| {
                    gp.observe(black_box(&[5.0]), black_box(0.42))
                        .expect("bench observation is well-formed");
                    gp
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_posterior_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_posterior_grid10");
    for &n in &[10usize, 100, 500] {
        let gp = observe_n(n);
        let grid: Vec<Vec<f64>> = (1..=10).map(|x| vec![x as f64]).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(gp.posterior_batch(black_box(&grid))));
        });
    }
    g.finish();
}

fn bench_information_gain(c: &mut Criterion) {
    let k = SquaredExp::new(3.0);
    let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10 + 1) as f64]).collect();
    c.bench_function("information_gain_100pts", |b| {
        b.iter(|| black_box(information_gain(&k, black_box(&xs), 0.01)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_incremental_observe, bench_posterior_grid, bench_information_gain
}
criterion_main!(benches);
