//! Criterion micro-benchmarks for the simulators: fluid decision slots
//! per workload and DES event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{ClusterConfig, Deployment, DesSim, FluidSim, NoiseConfig};
use dragster_workloads::{word_count, yahoo_benchmark, Workload};
use std::hint::black_box;

fn fresh_sim(w: &Workload) -> FluidSim {
    FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        42,
        Deployment::uniform(w.n_operators(), 5),
    )
    .expect("simulator accepts the application")
}

fn bench_fluid_slot(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_run_slot");
    for w in [
        word_count().expect("workload builds"),
        yahoo_benchmark().expect("workload builds"),
    ] {
        let mut sim = fresh_sim(&w);
        let rate = w.high_rate.clone();
        g.bench_with_input(BenchmarkId::from_parameter(&w.name), &w.name, |b, _| {
            b.iter(|| black_box(sim.run_slot(black_box(&rate))));
        });
    }
    g.finish();
}

fn bench_des_run(c: &mut Criterion) {
    let w = word_count().expect("workload builds");
    c.bench_function("des_wordcount_600s", |b| {
        b.iter(|| {
            let des =
                DesSim::new(w.app.clone(), Deployment::uniform(2, 5), 1.0).expect("DES builds");
            black_box(des.run(black_box(&w.high_rate), 600.0, 60.0))
        });
    });
}

fn bench_oracle(c: &mut Criterion) {
    let y = yahoo_benchmark().expect("workload builds");
    c.bench_function("oracle_greedy_yahoo", |b| {
        b.iter(|| {
            black_box(dragster_core::greedy_optimal(
                black_box(&y.app),
                black_box(&y.high_rate),
                10,
                Some(30),
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fluid_slot, bench_des_run, bench_oracle
}
criterion_main!(benches);
