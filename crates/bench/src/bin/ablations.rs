//! Ablations over the design choices DESIGN.md calls out: the UCB
//! exploration weight β, the GP kernel, the dual step γ₀, the observation
//! noise level, and the deficit weight of the tracking acquisition. Each
//! sweep runs WordCount-high and reports convergence time plus processed
//! tuples.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin ablations
//! ```

use dragster_bench::report::Table;
use dragster_bench::runner::write_json;
use dragster_core::{greedy_optimal, AcquisitionKind, Dragster, DragsterConfig, UcbConfig};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{
    run_experiment, ClusterConfig, ConstantArrival, Deployment, FluidSim, NoiseConfig,
};
use dragster_workloads::word_count;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Clone, Serialize)]
struct AblationRow {
    sweep: String,
    setting: String,
    convergence_minutes: Option<f64>,
    total_tuples_e9: f64,
    reconfigurations: usize,
}

fn run_with(cfg: DragsterConfig, noise: NoiseConfig, seeds: &[u64]) -> (Option<f64>, f64, usize) {
    let w = word_count().expect("workload builds");
    let slots = 40;
    let (_, f_opt) = greedy_optimal(&w.app, &w.high_rate, 10, None).expect("oracle runs");
    let opt = vec![f_opt; slots];
    // medians over seeds
    let mut convs = Vec::new();
    let mut tuples = Vec::new();
    let mut reconfs = Vec::new();
    for &seed in seeds {
        let mut sim = FluidSim::new(
            w.app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            noise,
            seed,
            Deployment::uniform(2, 1),
        )
        .expect("simulator accepts the application");
        let mut scaler = Dragster::new(w.app.topology.clone(), cfg);
        let mut arr = ConstantArrival(w.high_rate.clone());
        let trace =
            run_experiment(&mut sim, &mut scaler, &mut arr, slots).expect("experiment runs");
        convs.push(
            trace
                .convergence_minutes(&opt, 0.1, 0..slots, 600.0)
                .unwrap_or(slots as f64 * 10.0),
        );
        tuples.push(trace.total_processed());
        reconfs.push(trace.slots.iter().filter(|s| s.reconfigured).count());
    }
    convs.sort_by(f64::total_cmp);
    tuples.sort_by(f64::total_cmp);
    reconfs.sort_unstable();
    let conv = convs[convs.len() / 2];
    (
        if conv >= 400.0 { None } else { Some(conv) },
        tuples[tuples.len() / 2],
        reconfs[reconfs.len() / 2],
    )
}

fn main() {
    let seeds = [11u64, 42, 77];
    let base = DragsterConfig::saddle_point();
    let mut jobs: Vec<(String, String, DragsterConfig, NoiseConfig)> = Vec::new();

    // β scale (exploration weight)
    for bs in [0.0, 0.01, 0.05, 0.2, 1.0] {
        jobs.push((
            "beta_scale".into(),
            format!("{bs}"),
            DragsterConfig {
                ucb: UcbConfig {
                    beta_scale: bs,
                    ..base.ucb
                },
                ..base
            },
            NoiseConfig::default(),
        ));
    }
    // kernel length scale
    for l in [0.5, 1.5, 3.0, 6.0] {
        jobs.push((
            "length_scale".into(),
            format!("{l}"),
            DragsterConfig {
                ucb: UcbConfig {
                    length_scale: l,
                    ..base.ucb
                },
                ..base
            },
            NoiseConfig::default(),
        ));
    }
    // dual step γ₀
    for g in [0.1, 1.0, 5.0] {
        jobs.push((
            "gamma0".into(),
            format!("{g}"),
            DragsterConfig { gamma0: g, ..base },
            NoiseConfig::default(),
        ));
    }
    // deficit weight (1.0 = the paper's symmetric acquisition)
    for dw in [1.0, 2.0, 3.0, 6.0] {
        jobs.push((
            "deficit_weight".into(),
            format!("{dw}"),
            DragsterConfig {
                ucb: UcbConfig {
                    deficit_weight: dw,
                    ..base.ucb
                },
                ..base
            },
            NoiseConfig::default(),
        ));
    }
    // sequential-bottleneck restriction (paper narrative) vs joint argmax
    for (label, k) in [("joint (all ops)", None), ("top-1 bottleneck", Some(1))] {
        jobs.push((
            "adjust_scope".into(),
            label.into(),
            DragsterConfig {
                max_adjust_per_slot: k,
                ..base
            },
            NoiseConfig::default(),
        ));
    }
    // acquisition family (extended UCB = paper; Thompson = BO alternative)
    for (label, kind) in [
        ("extended-ucb", AcquisitionKind::ExtendedUcb),
        ("thompson", AcquisitionKind::Thompson),
    ] {
        jobs.push((
            "acquisition".into(),
            label.into(),
            DragsterConfig {
                ucb: UcbConfig {
                    acquisition: kind,
                    ..base.ucb
                },
                ..base
            },
            NoiseConfig::default(),
        ));
    }
    // cloud-noise level
    for (label, cj, co) in [
        ("none", 0.0, 0.0),
        ("default", 0.03, 0.05),
        ("heavy", 0.10, 0.15),
    ] {
        jobs.push((
            "cloud_noise".into(),
            label.into(),
            base,
            NoiseConfig {
                capacity_jitter_std: cj,
                cpu_observation_std: co,
                ..NoiseConfig::none()
            },
        ));
    }

    let rows: Vec<AblationRow> = jobs
        .par_iter()
        .map(|(sweep, setting, cfg, noise)| {
            let (conv, tuples, reconfs) = run_with(*cfg, *noise, &seeds);
            AblationRow {
                sweep: sweep.clone(),
                setting: setting.clone(),
                convergence_minutes: conv,
                total_tuples_e9: tuples / 1e9,
                reconfigurations: reconfs,
            }
        })
        .collect();

    println!(
        "=== Ablations (WordCount-high, median of {} seeds) ===\n",
        seeds.len()
    );
    let mut table = Table::new(&[
        "sweep",
        "setting",
        "convergence (min)",
        "tuples (1e9)",
        "reconfigs",
    ]);
    for r in &rows {
        table.row(vec![
            r.sweep.clone(),
            r.setting.clone(),
            r.convergence_minutes
                .map_or("—".into(), |m| format!("{m:.0}")),
            format!("{:.2}", r.total_tuples_e9),
            r.reconfigurations.to_string(),
        ]);
    }
    println!("{}", table.render());

    write_json(
        "ablations",
        "Hyper-parameter sweeps on WordCount-high",
        &rows,
    );
}
