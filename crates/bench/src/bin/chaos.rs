//! Chaos recovery experiment: inject one scripted fault per run — pod
//! crash, straggler, reconfiguration-failure burst, metric dropout, silent
//! metric corruption — and measure how deep each scheme dips and how many
//! slots it needs to recover (plus the regret the disturbance caused).
//!
//! Before any faulted run, the zero-fault identity check asserts that a
//! harness carrying an *inert* fault plan reproduces the unfaulted
//! baseline trace bit-identically (same seed ⇒ same trace) for every
//! scheme — the chaos layer must cost nothing when unused.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin chaos [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the horizon for CI while still exercising every fault
//! class and the identity check. Results land in `results/chaos.json`.

use dragster_bench::chaos::{
    controller_crash_rows, fault_classes, run_chaos_case, verify_zero_fault_identity,
    ControllerCrashRow, RecoveryMetrics,
};
use dragster_bench::runner::{write_json, Scheme, ALL_SCHEMES};
use dragster_bench::Table;
use dragster_workloads::word_count;
use rayon::prelude::*;
use serde::Serialize;
use std::process::ExitCode;

/// Combined payload for `results/chaos.json`: the per-fault-class recovery
/// table plus the controller-crash regret-overhead sweep.
#[derive(Serialize)]
struct ChaosData<'a> {
    fault_recovery: &'a [RecoveryMetrics],
    controller_crash: &'a [ControllerCrashRow],
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (slots, fault_slot) = if smoke { (14, 6) } else { (40, 15) };
    let seed = 42;

    let w = match word_count() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: workload failed to build: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Gate: zero-fault identity for every scheme.
    for scheme in ALL_SCHEMES {
        if let Err(e) = verify_zero_fault_identity(scheme, &w.app, &w.high_rate, 6, seed) {
            eprintln!("error: zero-fault identity violated: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("zero-fault identity: ok (inert plan reproduces baseline trace exactly)\n");

    let cases: Vec<(Scheme, dragster_bench::chaos::FaultClass)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| {
            fault_classes(fault_slot, 0)
                .into_iter()
                .map(move |f| (s, f))
        })
        .collect();

    let results: Result<Vec<_>, _> = cases
        .par_iter()
        .map(|(scheme, fc)| {
            run_chaos_case(
                *scheme,
                &w.app,
                &w.high_rate,
                fc.plan.clone(),
                fc.label,
                slots,
                fault_slot,
                seed,
            )
        })
        .collect();
    let rows = match results {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: chaos case failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut table = Table::new(&[
        "scheme",
        "fault class",
        "pre-fault f",
        "dip depth",
        "recover (slots)",
        "regret",
        "reconfig fails",
        "held",
    ]);
    for m in &rows {
        table.row(vec![
            m.scheme.clone(),
            m.fault_class.clone(),
            format!("{:.0}", m.pre_fault_mean),
            format!("{:.1}%", 100.0 * m.dip_depth),
            m.slots_to_recover
                .map_or_else(|| "never".into(), |s| s.to_string()),
            format!("{:.0}", m.regret),
            m.reconfig_failures.to_string(),
            m.held_slots.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Controller-crash sweep: periodic crashes through the crash-safe
    // runtime, regret overhead measured against a clean recoverable run.
    let periods: &[Option<usize>] = if smoke {
        &[None, Some(7), Some(4)]
    } else {
        &[None, Some(20), Some(10), Some(5)]
    };
    let crash_results: Result<Vec<_>, _> = ALL_SCHEMES
        .par_iter()
        .map(|&scheme| controller_crash_rows(scheme, &w.app, &w.high_rate, periods, slots, seed))
        .collect();
    let crash_rows: Vec<ControllerCrashRow> = match crash_results {
        Ok(r) => r.into_iter().flatten().collect(),
        Err(e) => {
            eprintln!("error: controller-crash case failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut crash_table = Table::new(&[
        "scheme",
        "crash period",
        "crashes",
        "restores",
        "degraded",
        "fallback slots",
        "regret",
        "overhead vs clean",
    ]);
    for r in &crash_rows {
        crash_table.row(vec![
            r.scheme.clone(),
            r.crash_period
                .map_or_else(|| "none".into(), |p| p.to_string()),
            r.crashes.to_string(),
            r.restores.to_string(),
            r.degraded.to_string(),
            r.fallback_slots.to_string(),
            format!("{:.0}", r.regret),
            format!("{:+.0}", r.regret_overhead_vs_clean),
        ]);
    }
    println!("\ncontroller-crash recovery (checkpoint restore + journal replay):");
    println!("{}", crash_table.render());

    write_json(
        "chaos",
        "Recovery under scripted faults (dip depth, slots to recover, regret) \
         per scheme and fault class, plus controller-crash regret overhead at \
         varying crash frequency; zero-fault identity verified first",
        &ChaosData {
            fault_recovery: &rows,
            controller_crash: &crash_rows,
        },
    );
    println!(
        "\nwrote results/chaos.json ({} fault rows, {} crash rows)",
        rows.len(),
        crash_rows.len()
    );
    ExitCode::SUCCESS
}
