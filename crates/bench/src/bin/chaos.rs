//! Chaos recovery experiment: inject one scripted fault per run — pod
//! crash, straggler, reconfiguration-failure burst, metric dropout, silent
//! metric corruption — and measure how deep each scheme dips and how many
//! slots it needs to recover (plus the regret the disturbance caused).
//!
//! Before any faulted run, the zero-fault identity check asserts that a
//! harness carrying an *inert* fault plan reproduces the unfaulted
//! baseline trace bit-identically (same seed ⇒ same trace) for every
//! scheme — the chaos layer must cost nothing when unused.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin chaos [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the horizon for CI while still exercising every fault
//! class and the identity check. Results land in `results/chaos.json`.

use dragster_bench::chaos::{fault_classes, run_chaos_case, verify_zero_fault_identity};
use dragster_bench::runner::{write_json, Scheme, ALL_SCHEMES};
use dragster_bench::Table;
use dragster_workloads::word_count;
use rayon::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (slots, fault_slot) = if smoke { (14, 6) } else { (40, 15) };
    let seed = 42;

    let w = match word_count() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: workload failed to build: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Gate: zero-fault identity for every scheme.
    for scheme in ALL_SCHEMES {
        if let Err(e) = verify_zero_fault_identity(scheme, &w.app, &w.high_rate, 6, seed) {
            eprintln!("error: zero-fault identity violated: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("zero-fault identity: ok (inert plan reproduces baseline trace exactly)\n");

    let cases: Vec<(Scheme, dragster_bench::chaos::FaultClass)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| {
            fault_classes(fault_slot, 0)
                .into_iter()
                .map(move |f| (s, f))
        })
        .collect();

    let results: Result<Vec<_>, _> = cases
        .par_iter()
        .map(|(scheme, fc)| {
            run_chaos_case(
                *scheme,
                &w.app,
                &w.high_rate,
                fc.plan.clone(),
                fc.label,
                slots,
                fault_slot,
                seed,
            )
        })
        .collect();
    let rows = match results {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: chaos case failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut table = Table::new(&[
        "scheme",
        "fault class",
        "pre-fault f",
        "dip depth",
        "recover (slots)",
        "regret",
        "reconfig fails",
        "held",
    ]);
    for m in &rows {
        table.row(vec![
            m.scheme.clone(),
            m.fault_class.clone(),
            format!("{:.0}", m.pre_fault_mean),
            format!("{:.1}%", 100.0 * m.dip_depth),
            m.slots_to_recover
                .map_or_else(|| "never".into(), |s| s.to_string()),
            format!("{:.0}", m.regret),
            m.reconfig_failures.to_string(),
            m.held_slots.to_string(),
        ]);
    }
    println!("{}", table.render());

    write_json(
        "chaos",
        "Recovery under scripted faults (dip depth, slots to recover, regret) \
         per scheme and fault class; zero-fault identity verified first",
        &rows,
    );
    println!("\nwrote results/chaos.json ({} rows)", rows.len());
    ExitCode::SUCCESS
}
