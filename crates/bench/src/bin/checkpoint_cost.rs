//! Section 3.1 / 6.4's side claim: the checkpoint stop-adjust-resume
//! mechanism "may sacrifice 5 % processing time, \[but\] can achieve 5X–6X
//! improvement in application throughput".
//!
//! We run WordCount under the Figure-6 load pattern three ways:
//! * Dragster with the normal 30 s pause per reconfiguration;
//! * Dragster with free (0 s) reconfiguration — the upper bound;
//! * a static never-reconfigure baseline (what you get if you refuse to
//!   pay the checkpoint cost at all, provisioned for the low phase).
//!
//! ```text
//! cargo run --release -p dragster-bench --bin checkpoint_cost
//! ```

use dragster_bench::runner::{make_scaler, write_json, Scheme};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{run_experiment, ClusterConfig, Deployment, FluidSim, NoiseConfig};
use dragster_workloads::{word_count, SquareWave};
use serde::Serialize;

#[derive(Serialize)]
struct CheckpointRow {
    setup: String,
    total_tuples: f64,
    pause_fraction_pct: f64,
}

fn main() {
    let w = word_count().expect("workload builds");
    let slots = 100;
    let mk_arrival = || SquareWave {
        high: w.high_rate.clone(),
        low: w.low_rate.clone(),
        half_period_slots: 20,
    };

    let mut rows = Vec::new();
    for (setup, pause, scheme, initial_tasks) in [
        ("Dragster + 30s checkpoint", 30.0, Scheme::DragsterSaddle, 1),
        ("Dragster + free reconfig", 0.0, Scheme::DragsterSaddle, 1),
        // static sized for the low phase — the no-elasticity strawman the
        // 5X-6X claim compares against
        ("static (low-phase sizing)", 30.0, Scheme::Static, 1),
        // reconfigures nearly every slot: the worst-case ~5 % pause tax
        ("random (reconfig every slot)", 30.0, Scheme::Random, 1),
    ] {
        let cluster = ClusterConfig {
            reconfig_pause_secs: pause,
            ..Default::default()
        };
        let mut sim = FluidSim::new(
            w.app.clone(),
            cluster,
            SimConfig::default(),
            NoiseConfig::default(),
            42,
            Deployment::uniform(w.n_operators(), initial_tasks),
        )
        .expect("simulator accepts the application");
        let mut scaler = make_scaler(scheme, &w.app, None, 42);
        let mut arrival = mk_arrival();
        let trace = run_experiment(&mut sim, scaler.as_mut(), &mut arrival, slots)
            .expect("experiment runs");
        let paused: f64 = trace.slots.iter().map(|s| s.pause_secs).sum();
        let total_secs = slots as f64 * SimConfig::default().slot_secs;
        rows.push(CheckpointRow {
            setup: setup.into(),
            total_tuples: trace.total_processed(),
            pause_fraction_pct: paused / total_secs * 100.0,
        });
    }

    println!("=== Checkpoint-cost experiment (Sections 3.1 / 6.4) ===\n");
    for r in &rows {
        println!(
            "{:<28} {:>7.2}e9 tuples, {:>4.1} % of time paused",
            r.setup,
            r.total_tuples / 1e9,
            r.pause_fraction_pct
        );
    }
    let with = rows[0].total_tuples;
    let free = rows[1].total_tuples;
    let stat = rows[2].total_tuples;
    println!(
        "\nDragster's pauses sacrifice {:.1} % of tuples vs free reconfig; \
         reconfiguring every slot would pause {:.1} % of time (paper's ~5 % worst case)",
        (1.0 - with / free) * 100.0,
        rows[3].pause_fraction_pct
    );
    println!(
        "elasticity buys {:.1}x the throughput of the static low-sized deployment (paper: 5X–6X)",
        with / stat
    );

    write_json(
        "checkpoint_cost",
        "Cost and benefit of checkpoint-based reconfiguration",
        &rows,
    );
}
