//! Extension beyond the paper's three compared schemes: DS2 (the OSDI'18
//! linear scaling controller the Related Work discusses), plus Static and
//! Random anchors, across the 11-workload suite extended with two further
//! applications (CategoryAvg, FraudDetect). DS2 is strong on linear
//! operators and weak on saturating ones (AsyncIO, Yahoo's RedisJoin) —
//! the gap the GP capacity model closes.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin extended_baselines
//! ```

use dragster_bench::report::Table;
use dragster_bench::runner::{run_scheme, write_json, Scheme};
use dragster_sim::{ArrivalProcess, ConstantArrival, Deployment, NoiseConfig};
use dragster_workloads::extended_suite;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct ExtRow {
    workload: String,
    scheme: String,
    convergence_minutes: Option<f64>,
    mean_fraction_of_optimal: f64,
    cost_per_billion: f64,
}

const SCHEMES: [Scheme; 5] = [
    Scheme::Dhalion,
    Scheme::Ds2,
    Scheme::DragsterSaddle,
    Scheme::DragsterOgd,
    Scheme::Static,
];

fn main() {
    let suite = extended_suite().expect("workload builds");
    let slots = 40;

    let jobs: Vec<(usize, Scheme)> = (0..suite.len())
        .flat_map(|wi| SCHEMES.iter().map(move |&s| (wi, s)))
        .collect();
    let mut rows: Vec<ExtRow> = jobs
        .par_iter()
        .map(|&(wi, scheme)| {
            let (w, rate, label) = &suite[wi];
            let mut factory = {
                let rate = rate.clone();
                move || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>
            };
            let run = run_scheme(
                scheme,
                &w.app,
                &mut factory,
                slots,
                None,
                NoiseConfig::default(),
                42,
                Deployment::uniform(w.n_operators(), 1),
            )
            .expect("scheme runs");
            let frac: f64 = run
                .ideal_throughput
                .iter()
                .zip(run.optimal_throughput.iter())
                .map(|(i, o)| i / o.max(1e-9))
                .sum::<f64>()
                / slots as f64;
            ExtRow {
                workload: label.clone(),
                scheme: run.scheme,
                convergence_minutes: run.convergence_minutes,
                mean_fraction_of_optimal: frac,
                cost_per_billion: run.cost_per_billion,
            }
        })
        .collect();
    rows.sort_by(|a, b| (&a.workload, &a.scheme).cmp(&(&b.workload, &b.scheme)));

    println!("=== Extended baseline comparison (mean fraction of optimal throughput) ===\n");
    let mut table = Table::new(&[
        "workload",
        "Dhalion",
        "DS2",
        "saddle",
        "online gd",
        "Static",
    ]);
    let mut labels: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    labels.dedup();
    let by = |wl: &str, s: &str| {
        rows.iter()
            .find(|r| r.workload == wl && r.scheme == s)
            .map(|r| format!("{:.2}", r.mean_fraction_of_optimal))
            .unwrap_or_default()
    };
    for wl in &labels {
        table.row(vec![
            wl.clone(),
            by(wl, "Dhalion"),
            by(wl, "DS2"),
            by(wl, "Dragster saddle point"),
            by(wl, "Dragster online gradient"),
            by(wl, "Static"),
        ]);
    }
    println!("{}", table.render());

    // Where DS2's linear assumption bites: saturating-capacity workloads.
    let ds2_asy = rows
        .iter()
        .find(|r| r.workload.starts_with("AsyncIO-high") && r.scheme == "DS2")
        .expect("present");
    let saddle_asy = rows
        .iter()
        .find(|r| r.workload.starts_with("AsyncIO-high") && r.scheme == "Dragster saddle point")
        .expect("present");
    println!(
        "AsyncIO-high (saturating capacity): DS2 reaches {:.0} % of optimal, Dragster {:.0} %",
        ds2_asy.mean_fraction_of_optimal * 100.0,
        saddle_asy.mean_fraction_of_optimal * 100.0
    );

    write_json(
        "extended_baselines",
        "Five schemes across the 11-workload suite",
        &rows,
    );
}
