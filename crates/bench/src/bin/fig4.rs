//! Figure 4: how each scheme walks the 10×10 WordCount configuration grid
//! (Shuffle tasks × Map tasks), (a–c) without and (d–f) with a tight
//! $1.6/hour budget.
//!
//! Prints, per scheme: the visited-configuration sequence overlaid on the
//! true-throughput heatmap, the convergence slot, and — for the budgeted
//! case — the stuck-vs-optimal throughput comparison the paper quantifies
//! as "64.7 % higher throughput compared to Dhalion".
//!
//! ```text
//! cargo run --release -p dragster-bench --bin fig4
//! ```

use dragster_bench::report::ascii_heatmap;
use dragster_bench::runner::{run_scheme, write_json, SchemeRun, ALL_SCHEMES};
use dragster_core::greedy_optimal;
use dragster_sim::{ArrivalProcess, ClusterConfig, ConstantArrival, Deployment, NoiseConfig};
use dragster_workloads::word_count;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Data {
    grids: Vec<Vec<Vec<f64>>>,
    panels: Vec<Panel>,
}

#[derive(Serialize)]
struct Panel {
    label: String,
    scheme: String,
    budget_pods: Option<usize>,
    /// (shuffle_tasks, map_tasks) per slot.
    path: Vec<(usize, usize)>,
    convergence_slot: Option<usize>,
    final_throughput: f64,
    optimal_throughput: f64,
}

fn main() {
    let w = word_count().expect("workload builds");
    let slots = 20;

    let budget_cases = [
        // Panels a–c: the regular high rate, no budget.
        (
            None,
            w.high_rate.clone(),
            "no budget constraint (panels a–c)",
        ),
        // Panels d–f: the paper's tight budget ($1.6/hour at $0.16/pod·h ⇒
        // 10 pods) under an offered load the budget cannot fully serve —
        // the paper's budgeted Shuffle "still suffers from heavy
        // backpressure" at convergence, so the load must exceed the
        // budget-feasible capacity.
        (
            Some(ClusterConfig::default().pods_for_hourly_budget(1.6)),
            vec![1.8e5],
            "tight budget $1.6/hour (panels d–f)",
        ),
    ];

    let mut grids = Vec::new();
    let mut panels = Vec::new();
    for (budget, rate, case_name) in budget_cases {
        println!("=== Figure 4 — {case_name} ===\n");

        // The true throughput landscape over the 10×10 grid (collected the
        // way the paper did: run every candidate configuration).
        let grid: Vec<Vec<f64>> = (1..=10)
            .map(|shuffle| {
                (1..=10)
                    .map(|map| {
                        w.app
                            .ideal_throughput(&rate, &[map, shuffle])
                            .expect("grid point evaluates")
                    })
                    .collect()
            })
            .collect();
        let (d_opt, f_opt) = greedy_optimal(&w.app, &rate, 10, budget).expect("oracle runs");
        println!("oracle optimum: deployment {d_opt}, throughput {f_opt:.0} tuples/s\n");

        let mut finals: Vec<(String, f64)> = Vec::new();
        for (k, &scheme) in ALL_SCHEMES.iter().enumerate() {
            let mut factory = {
                let rate = rate.clone();
                move || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>
            };
            let run: SchemeRun = run_scheme(
                scheme,
                &w.app,
                &mut factory,
                slots,
                budget,
                NoiseConfig::default(),
                42,
                Deployment::uniform(2, 1),
            )
            .expect("scheme runs");
            // path in (shuffle, map) coordinates like the paper's axes
            let path: Vec<(usize, usize)> = run.deployments.iter().map(|t| (t[1], t[0])).collect();
            let final_f = *run.ideal_throughput.last().expect("non-empty run");
            let label = format!(
                "({})",
                (b'a' + (k + if budget.is_some() { 3 } else { 0 }) as u8) as char
            );
            println!(
                "--- {label} {} — convergence slot {:?}, final config {:?} ({:.0} tuples/s) ---",
                run.scheme,
                run.convergence_slot,
                run.deployments.last().expect("non-empty"),
                final_f,
            );
            println!("{}", ascii_heatmap(&grid, &path));
            finals.push((run.scheme.clone(), final_f));
            panels.push(Panel {
                label,
                scheme: run.scheme.clone(),
                budget_pods: budget,
                path,
                convergence_slot: run.convergence_slot,
                final_throughput: final_f,
                optimal_throughput: f_opt,
            });
        }
        if budget.is_some() {
            let dhalion = finals
                .iter()
                .find(|(s, _)| s == "Dhalion")
                .expect("Dhalion present")
                .1;
            for (s, f) in &finals {
                if s != "Dhalion" {
                    println!(
                        "{s}: {:.1} % higher final throughput than Dhalion (paper: 64.7 %)",
                        (f / dhalion - 1.0) * 100.0
                    );
                }
            }
            println!();
        }
        grids.push(grid);
    }

    write_json(
        "fig4",
        "Search trajectories on the WordCount 10x10 grid, without and with the $1.6/h budget",
        &Fig4Data { grids, panels },
    );
}
