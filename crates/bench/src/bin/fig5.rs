//! Figure 5: convergence time (minutes) of the three schemes across the
//! 11-workload suite (5 Nexmark applications × 2 rates + Yahoo), sorted by
//! operator count. Also reports the per-group speedups the paper quotes
//! (Section 6.3): saddle point ≈ 1.64× (one operator) / 2.67× (two) /
//! 2.2× (Yahoo); online gradient ≈ 1.38× / 1.81× / 1.6×.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin fig5
//! ```

use dragster_bench::report::Table;
use dragster_bench::runner::{run_scheme, write_json, Scheme, ALL_SCHEMES};
use dragster_sim::{ArrivalProcess, ConstantArrival, Deployment, NoiseConfig};
use dragster_workloads::figure5_suite;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Row {
    workload: String,
    operators: usize,
    scheme: String,
    convergence_minutes: Option<f64>,
    convergence_slot: Option<usize>,
}

fn main() {
    let suite = figure5_suite().expect("workload builds");
    let slots = 40;

    // (workload, scheme, seed) grid, embarrassingly parallel over rayon;
    // we report the median over seeds (the cloud noise makes individual
    // runs vary by a slot or two).
    const SEEDS: [u64; 5] = [11, 23, 42, 77, 1234];
    let jobs: Vec<(usize, Scheme, u64)> = (0..suite.len())
        .flat_map(|wi| {
            ALL_SCHEMES
                .iter()
                .flat_map(move |&s| SEEDS.iter().map(move |&seed| (wi, s, seed)))
        })
        .collect();
    let raw: Vec<Fig5Row> = jobs
        .par_iter()
        .map(|&(wi, scheme, seed)| {
            let (w, rate, label) = &suite[wi];
            let mut factory = {
                let rate = rate.clone();
                move || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>
            };
            let run = run_scheme(
                scheme,
                &w.app,
                &mut factory,
                slots,
                None,
                NoiseConfig::default(),
                seed,
                Deployment::uniform(w.n_operators(), 1),
            )
            .expect("scheme runs");
            Fig5Row {
                workload: label.clone(),
                operators: w.n_operators(),
                scheme: run.scheme,
                convergence_minutes: run.convergence_minutes,
                convergence_slot: run.convergence_slot,
            }
        })
        .collect();
    // median over seeds per (workload, scheme); a run that never converged
    // counts as the full horizon.
    let mut rows: Vec<Fig5Row> = Vec::new();
    for (w, _, label) in &suite {
        for scheme in ALL_SCHEMES {
            let mut vals: Vec<f64> = raw
                .iter()
                .filter(|r| &r.workload == label && r.scheme == scheme.label())
                .map(|r| r.convergence_minutes.unwrap_or(slots as f64 * 10.0))
                .collect();
            vals.sort_by(f64::total_cmp);
            let med = vals[vals.len() / 2];
            rows.push(Fig5Row {
                workload: label.clone(),
                operators: w.n_operators(),
                scheme: scheme.label().into(),
                convergence_minutes: Some(med),
                convergence_slot: Some((med / 10.0) as usize),
            });
        }
    }
    rows.sort_by(|a, b| {
        (a.operators, &a.workload, &a.scheme).cmp(&(b.operators, &b.workload, &b.scheme))
    });

    println!("=== Figure 5 — convergence time under the 11-workload suite ===\n");
    let mut table = Table::new(&[
        "workload",
        "ops",
        "Dhalion (min)",
        "saddle pt (min)",
        "online gd (min)",
    ]);
    let fmt = |m: &Option<f64>| m.map_or("—".to_string(), |v| format!("{v:.0}"));
    let by = |rows: &[Fig5Row], wl: &str, s: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.workload == wl && r.scheme == s)
            .and_then(|r| r.convergence_minutes)
    };
    let mut labels: Vec<(String, usize)> = rows
        .iter()
        .map(|r| (r.workload.clone(), r.operators))
        .collect();
    labels.dedup();
    for (wl, ops) in &labels {
        table.row(vec![
            wl.clone(),
            ops.to_string(),
            fmt(&by(&rows, wl, "Dhalion")),
            fmt(&by(&rows, wl, "Dragster saddle point")),
            fmt(&by(&rows, wl, "Dragster online gradient")),
        ]);
    }
    println!("{}", table.render());

    // Speedup aggregation by operator-count group, like Section 6.3.
    println!("--- speedups vs Dhalion (geometric mean per group; paper values in comments) ---");
    for (group, ops_filter) in [
        ("1-operator", 1usize),
        ("2-operator", 2),
        ("Yahoo (6 ops)", 6),
    ] {
        for scheme in ["Dragster saddle point", "Dragster online gradient"] {
            let ratios: Vec<f64> = labels
                .iter()
                .filter(|(_, o)| *o == ops_filter)
                .filter_map(|(wl, _)| {
                    let d = by(&rows, wl, "Dhalion")?;
                    let s = by(&rows, wl, scheme)?;
                    Some(d / s)
                })
                .collect();
            if ratios.is_empty() {
                continue;
            }
            let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            println!("{group:>14} {scheme}: {gm:.2}x speedup");
        }
    }
    println!(
        "\n(paper: saddle 1.64x/2.67x/2.2x and gradient 1.38x/1.81x/1.6x for 1-op/2-op/Yahoo)"
    );

    write_json(
        "fig5",
        "Convergence time for 11 workloads x 3 schemes",
        &rows,
    );
}
