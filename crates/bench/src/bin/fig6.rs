//! Figure 6: streaming throughput of WordCount over 1000 minutes while the
//! offered load flips between high and low every 200 minutes, for the
//! three schemes. The printed series shows the checkpoint dips ("every 10
//! minutes, throughput curves temporarily decrease") and how quickly each
//! scheme re-converges after each flip.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin fig6
//! ```

use dragster_bench::experiments::workload_change_experiment;
use dragster_bench::report::ascii_series;
use dragster_bench::runner::write_json;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Series {
    scheme: String,
    throughput: Vec<f64>,
    optimal: Vec<f64>,
    pods: Vec<usize>,
}

fn main() {
    let exp = workload_change_experiment(42).expect("experiment runs");
    println!(
        "=== Figure 6 — WordCount throughput under load flips every {} min ({} min total) ===\n",
        exp.phase_slots * 10,
        exp.slots * 10
    );
    let mut series = Vec::new();
    for run in &exp.runs {
        print!("{}", ascii_series(&run.scheme, &run.throughput, 100));
        series.push(Fig6Series {
            scheme: run.scheme.clone(),
            throughput: run.throughput.clone(),
            optimal: run.optimal_throughput.clone(),
            pods: run.trace.slots.iter().map(|s| s.pods).collect(),
        });
    }
    print!(
        "{}",
        ascii_series("(oracle optimal)", &exp.runs[0].optimal_throughput, 100)
    );
    println!("\npods allocated over time:");
    for run in &exp.runs {
        let pods: Vec<f64> = run.trace.slots.iter().map(|s| s.pods as f64).collect();
        print!("{}", ascii_series(&run.scheme, &pods, 100));
    }
    println!(
        "\ntotals over {} minutes: {}",
        exp.slots * 10,
        exp.runs
            .iter()
            .map(|r| format!(
                "{}: {:.2}e9 tuples / ${:.1}",
                r.scheme,
                r.total_tuples / 1e9,
                r.total_cost
            ))
            .collect::<Vec<_>>()
            .join(" | ")
    );

    write_json(
        "fig6",
        "WordCount throughput timeline under 200-minute load flips, 3 schemes",
        &series,
    );
}
