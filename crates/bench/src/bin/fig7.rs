//! Figure 7: streaming throughput of the Yahoo streaming benchmark (six
//! operators, 10⁶ joint configurations) over 600 minutes, with the input
//! rate scaled up at 300 minutes without notifying the system.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin fig7
//! ```

use dragster_bench::experiments::yahoo_experiment;
use dragster_bench::report::ascii_series;
use dragster_bench::runner::write_json;
use dragster_sim::fluid::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Series {
    scheme: String,
    throughput: Vec<f64>,
    optimal: Vec<f64>,
    pods: Vec<usize>,
    convergence_minutes_initial: Option<f64>,
    convergence_minutes_after_step: Option<f64>,
}

fn main() {
    let exp = yahoo_experiment(42).expect("experiment runs");
    println!(
        "=== Figure 7 — Yahoo benchmark throughput; input rate steps up at {} min ===\n",
        exp.step_slot * 10
    );
    let slot_secs = SimConfig::default().slot_secs;
    let mut series = Vec::new();
    for run in &exp.runs {
        print!("{}", ascii_series(&run.scheme, &run.throughput, 100));
        let initial = run.trace.convergence_minutes(
            &run.optimal_throughput,
            0.1,
            0..exp.step_slot,
            slot_secs,
        );
        let after = run.trace.convergence_minutes(
            &run.optimal_throughput,
            0.1,
            exp.step_slot..exp.slots,
            slot_secs,
        );
        series.push(Fig7Series {
            scheme: run.scheme.clone(),
            throughput: run.throughput.clone(),
            optimal: run.optimal_throughput.clone(),
            pods: run.trace.slots.iter().map(|s| s.pods).collect(),
            convergence_minutes_initial: initial,
            convergence_minutes_after_step: after,
        });
    }
    print!(
        "{}",
        ascii_series("(oracle optimal)", &exp.runs[0].optimal_throughput, 100)
    );

    println!("\nconvergence (paper: Dhalion 240 min initial / 90 after the step; Dragster saddle 110 / 30):");
    for s in &series {
        println!(
            "{:<28} initial {:>4} min, after step {:>4} min",
            s.scheme,
            s.convergence_minutes_initial
                .map_or("—".into(), |m| format!("{m:.0}")),
            s.convergence_minutes_after_step
                .map_or("—".into(), |m| format!("{m:.0}")),
        );
    }

    write_json(
        "fig7",
        "Yahoo benchmark throughput timeline with an input step at 300 min",
        &series,
    );
}
