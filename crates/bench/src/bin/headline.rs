//! The paper's abstract claims, regenerated in one run:
//!
//! * 1.8×–2.2× speed-up in converging to the optimal configuration;
//! * 20.0 %–25.8 % gain in tuple-processing goodput;
//! * 14.6 %–15.6 % cost-savings for processing the same number of tuples.
//!
//! Speedups aggregate Figure-5-style convergence across the suite; goodput
//! and cost come from the Figure-6 workload-change run (Table 2) — the
//! same provenance as the paper's abstract.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin headline
//! ```

use dragster_bench::experiments::workload_change_experiment;
use dragster_bench::runner::{run_scheme, write_json, Scheme, ALL_SCHEMES};
use dragster_sim::{ArrivalProcess, ConstantArrival, Deployment, NoiseConfig};
use dragster_workloads::figure5_suite;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Headline {
    speedup_saddle: f64,
    speedup_gradient: f64,
    goodput_gain_saddle_pct: f64,
    goodput_gain_gradient_pct: f64,
    cost_savings_saddle_pct: f64,
    cost_savings_gradient_pct: f64,
}

fn main() {
    // --- convergence speedups over the suite (median of seeds) ---
    const SEEDS: [u64; 3] = [11, 42, 1234];
    let suite = figure5_suite().expect("workload builds");
    let jobs: Vec<(usize, Scheme, u64)> = (0..suite.len())
        .flat_map(|wi| {
            ALL_SCHEMES
                .iter()
                .flat_map(move |&s| SEEDS.iter().map(move |&seed| (wi, s, seed)))
        })
        .collect();
    let conv: Vec<(usize, Scheme, f64)> = jobs
        .par_iter()
        .map(|&(wi, scheme, seed)| {
            let (w, rate, _) = &suite[wi];
            let mut factory = {
                let rate = rate.clone();
                move || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>
            };
            let run = run_scheme(
                scheme,
                &w.app,
                &mut factory,
                40,
                None,
                NoiseConfig::default(),
                seed,
                Deployment::uniform(w.n_operators(), 1),
            )
            .expect("scheme runs");
            (wi, scheme, run.convergence_minutes.unwrap_or(400.0))
        })
        .collect();
    let median = |wi: usize, s: Scheme| -> f64 {
        let mut v: Vec<f64> = conv
            .iter()
            .filter(|(i, sc, _)| *i == wi && *sc == s)
            .map(|(_, _, m)| *m)
            .collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let speedup = |s: Scheme| -> f64 {
        let ratios: Vec<f64> = (0..suite.len())
            .map(|wi| median(wi, Scheme::Dhalion) / median(wi, s))
            .collect();
        (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
    };
    let sp_saddle = speedup(Scheme::DragsterSaddle);
    let sp_grad = speedup(Scheme::DragsterOgd);

    // --- goodput & cost from the workload-change run ---
    let exp = workload_change_experiment(42).expect("experiment runs");
    let dh = &exp.runs[0];
    let saddle = &exp.runs[1];
    let grad = &exp.runs[2];
    let goodput =
        |r: &dragster_bench::runner::SchemeRun| (r.total_tuples / dh.total_tuples - 1.0) * 100.0;
    let savings = |r: &dragster_bench::runner::SchemeRun| {
        (1.0 - r.cost_per_billion / dh.cost_per_billion) * 100.0
    };

    println!("=== Headline claims (paper abstract) ===\n");
    println!(
        "convergence speedup vs Dhalion : saddle {sp_saddle:.2}x, gradient {sp_grad:.2}x  (paper: 1.8x–2.2x)"
    );
    println!(
        "goodput gain vs Dhalion        : saddle {:+.1} %, gradient {:+.1} %  (paper: +20.0 %–25.8 %)",
        goodput(saddle),
        goodput(grad)
    );
    println!(
        "cost savings vs Dhalion        : saddle {:+.1} %, gradient {:+.1} %  (paper: 14.6 %–15.6 %)",
        savings(saddle),
        savings(grad)
    );

    write_json(
        "headline",
        "Abstract-level aggregate claims",
        &Headline {
            speedup_saddle: sp_saddle,
            speedup_gradient: sp_grad,
            goodput_gain_saddle_pct: goodput(saddle),
            goodput_gain_gradient_pct: goodput(grad),
            cost_savings_saddle_pct: savings(saddle),
            cost_savings_gradient_pct: savings(grad),
        },
    );
}
