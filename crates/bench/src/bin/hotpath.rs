//! Per-slot controller hot-path microbenchmark.
//!
//! Times the control-plane work of one decision slot — sanitize, decide
//! (incl. clamping and budget projection), and journal append — with the
//! simulator's own `run_slot` timed separately so engine cost never
//! pollutes the controller numbers. This is the measurement behind
//! DESIGN.md §11: Theorem 1's regret bound assumes the controller's
//! decision latency is negligible against the slot length, and the L16
//! cost ratchet exists to keep it that way.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin hotpath -- <label>
//! ```
//!
//! Results merge into `results/hotpath.json` under `<label>` (default
//! `current`), so a `before` run followed by an `after` run yields one
//! file with both sides of a perf change.

use std::time::Instant;

use dragster_bench::runner::make_scaler;
use dragster_bench::runner::Scheme;
use dragster_sim::fluid::SimConfig;
use dragster_sim::harness::project_to_budget;
use dragster_sim::json::{self, Json};
use dragster_sim::{
    ArrivalProcess, ClusterConfig, ConstantArrival, DecisionJournal, Deployment, FluidSim,
    JournalRecord, MetricSanitizer, NoiseConfig, ReconfigOutcome, SanitizeConfig,
};
use dragster_workloads::word_count;

const SLOTS: usize = 60;
const SEEDS: [u64; 3] = [11, 23, 47];

/// Nanosecond samples for one timed section.
#[derive(Default)]
struct Section {
    samples: Vec<u128>,
}

impl Section {
    fn push(&mut self, ns: u128) {
        self.samples.push(ns);
    }

    fn mean_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.iter().sum::<u128>() / self.samples.len() as u128
    }

    fn p95_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 95 / 100]
    }
}

fn ns(v: u128) -> Json {
    json::num(usize::try_from(v).unwrap_or(usize::MAX))
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    let w = word_count().expect("workload builds");

    let mut sim_s = Section::default();
    let mut sanitize_s = Section::default();
    let mut decide_s = Section::default();
    let mut journal_s = Section::default();
    let mut controller_s = Section::default();

    for &seed in &SEEDS {
        let mut sim = FluidSim::new(
            w.app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            seed,
            Deployment::uniform(2, 1),
        )
        .expect("simulator accepts the application");
        let mut scaler = make_scaler(Scheme::DragsterSaddle, &w.app, Some(200), seed);
        let mut arr = ConstantArrival(w.high_rate.clone());
        let mut sanitizer = MetricSanitizer::new(SanitizeConfig::default());
        let mut journal = DecisionJournal::new();
        let max_tasks = sim.cluster().max_tasks_per_operator;
        let budget = sim.cluster().budget_pods;

        for t in 0..SLOTS {
            let rates = arr.rates(t);
            let deployment_before = sim.deployment().tasks.clone();

            let t0 = Instant::now();
            let raw = sim.run_slot(&rates);
            sim_s.push(t0.elapsed().as_nanos());

            // Controller section mirrors `run_experiment_recoverable`'s
            // data plane: the raw clone is journal prep, charged there.
            let t1 = Instant::now();
            let for_journal = raw.clone();
            let metrics = sanitizer.sanitize(raw);
            let sanitize_ns = t1.elapsed().as_nanos();

            let t2 = Instant::now();
            let proposal = scaler
                .decide(t, &metrics, sim.deployment())
                .expect("decide succeeds");
            let feasible = project_to_budget(proposal.clamped(max_tasks), budget);
            let decide_ns = t2.elapsed().as_nanos();

            let t3 = Instant::now();
            journal.append(&JournalRecord {
                t,
                raw: for_journal,
                deployment_before,
                decided: feasible.tasks.clone(),
                outcome: ReconfigOutcome::Applied,
            });
            let journal_ns = t3.elapsed().as_nanos();

            sanitize_s.push(sanitize_ns);
            decide_s.push(decide_ns);
            journal_s.push(journal_ns);
            controller_s.push(sanitize_ns + decide_ns + journal_ns);

            sim.reconfigure(feasible).expect("reconfigure succeeds");
        }
    }

    let stats = Json::Obj(vec![
        ("slots".to_string(), json::num(SLOTS)),
        ("seeds".to_string(), json::num(SEEDS.len())),
        (
            "controller_mean_ns_per_slot".to_string(),
            ns(controller_s.mean_ns()),
        ),
        (
            "controller_p95_ns_per_slot".to_string(),
            ns(controller_s.p95_ns()),
        ),
        ("sanitize_mean_ns".to_string(), ns(sanitize_s.mean_ns())),
        ("decide_mean_ns".to_string(), ns(decide_s.mean_ns())),
        ("journal_mean_ns".to_string(), ns(journal_s.mean_ns())),
        ("sim_mean_ns_per_slot".to_string(), ns(sim_s.mean_ns())),
    ]);

    // Merge under `label`, preserving other labels already in the file.
    let path = std::path::Path::new("results/hotpath.json");
    let mut pairs: Vec<(String, Json)> = match std::fs::read_to_string(path) {
        Ok(text) => match json::parse_json(&text) {
            Ok(Json::Obj(pairs)) => pairs,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == label) {
        slot.1 = stats;
    } else {
        pairs.push((label.clone(), stats));
    }
    std::fs::create_dir_all("results").expect("results dir");
    let mut out = Json::Obj(pairs).render();
    out.push('\n');
    std::fs::write(path, out).expect("write results/hotpath.json");

    println!(
        "hotpath[{label}]: controller mean {} us, p95 {} us (sanitize {} us, decide {} us, \
         journal {} us); sim {} us per slot",
        controller_s.mean_ns() / 1_000,
        controller_s.p95_ns() / 1_000,
        sanitize_s.mean_ns() / 1_000,
        decide_s.mean_ns() / 1_000,
        journal_s.mean_ns() / 1_000,
        sim_s.mean_ns() / 1_000,
    );
}
