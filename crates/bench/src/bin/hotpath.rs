//! Per-slot controller hot-path microbenchmark.
//!
//! Times the control-plane work of one decision slot — sanitize, decide
//! (incl. clamping and budget projection), and journal append — with the
//! simulator's own `run_slot` timed separately so engine cost never
//! pollutes the controller numbers. This is the measurement behind
//! DESIGN.md §11/§12: Theorem 1's regret bound assumes the controller's
//! decision latency is negligible against the slot length, and the L16
//! cost ratchet exists to keep it that way.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin hotpath -- <label>
//! cargo run --release -p dragster-bench --bin hotpath -- --check
//! ```
//!
//! The labeled mode additionally runs a horizon-scaling sweep
//! (60/240/960 slots) with the GP grid cache on and off, asserting the
//! two modes decide **bit-identically** every slot and recording the
//! per-slot decide growth between horizons — the cached controller grows
//! ~linearly in history length, the naive one quadratically (DESIGN §12).
//! Results merge into `results/hotpath.json` under `<label>` (default
//! `current`) plus a shared `horizon_sweep` section, so a `before` run
//! followed by an `after` run yields one file with both sides of a perf
//! change.
//!
//! `--check` is the CI smoke mode: cached vs naive decide cost at one
//! mid-size horizon, measured in the same process so machine speed
//! cancels out. It exits non-zero unless the cache beats the naive path
//! by >25% (a bypassed cache measures ~1.0×) and re-asserts slot-by-slot
//! decision bit-identity. It reads and writes no files — `results/*.json`
//! is gitignored, so an absolute ns baseline would neither exist on a
//! fresh checkout nor transfer across machines.

use std::time::Instant;

use dragster_bench::runner::make_scaler;
use dragster_bench::runner::Scheme;
use dragster_core::{Dragster, DragsterConfig, UcbConfig};
use dragster_sim::fluid::SimConfig;
use dragster_sim::harness::project_to_budget;
use dragster_sim::json::{self, Json};
use dragster_sim::{
    ArrivalProcess, Autoscaler, ClusterConfig, ConstantArrival, DecisionJournal, Deployment,
    FluidSim, JournalRecord, MetricSanitizer, NoiseConfig, ReconfigOutcome, SanitizeConfig,
};
use dragster_workloads::{word_count, Workload};

const SLOTS: usize = 60;
const SEEDS: [u64; 3] = [11, 23, 47];
const SWEEP_HORIZONS: [usize; 3] = [60, 240, 960];
const SWEEP_SEED: u64 = 11;
const CHECK_SLOTS: usize = 240;
const CHECK_MIN_SPEEDUP_FRAC: f64 = 0.25;

/// Nanosecond samples for one timed section.
#[derive(Default)]
struct Section {
    samples: Vec<u128>,
}

impl Section {
    fn push(&mut self, ns: u128) {
        self.samples.push(ns);
    }

    fn mean_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.iter().sum::<u128>() / self.samples.len() as u128
    }

    fn p95_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 95 / 100]
    }
}

/// All timed sections of one measurement run.
#[derive(Default)]
struct Timings {
    sim: Section,
    sanitize: Section,
    decide: Section,
    journal: Section,
    controller: Section,
}

/// The saddle-point Dragster with the grid cache switched off — the naive
/// O(t²)-per-query baseline, otherwise identical to what `make_scaler`
/// builds for `Scheme::DragsterSaddle`.
fn make_naive_scaler(w: &Workload, budget_pods: Option<usize>) -> Box<dyn Autoscaler> {
    let saddle = DragsterConfig::saddle_point();
    Box::new(Dragster::new(
        w.app.topology.clone(),
        DragsterConfig {
            budget_pods,
            ucb: UcbConfig {
                grid_cache: false,
                ..saddle.ucb
            },
            ..saddle
        },
    ))
}

/// Run `slots` decision slots with the given scaler, timing each section
/// and collecting the per-slot feasible decisions for identity checks.
fn run_slots(
    w: &Workload,
    mut scaler: Box<dyn Autoscaler>,
    slots: usize,
    seed: u64,
    timings: &mut Timings,
) -> Vec<Vec<usize>> {
    let mut sim = FluidSim::new(
        w.app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(2, 1),
    )
    .expect("simulator accepts the application");
    let mut arr = ConstantArrival(w.high_rate.clone());
    let mut sanitizer = MetricSanitizer::new(SanitizeConfig::default());
    let mut journal = DecisionJournal::new();
    let max_tasks = sim.cluster().max_tasks_per_operator;
    let budget = sim.cluster().budget_pods;
    let mut decisions = Vec::with_capacity(slots);

    for t in 0..slots {
        let rates = arr.rates(t);
        let deployment_before = sim.deployment().tasks.clone();

        let t0 = Instant::now();
        let raw = sim.run_slot(&rates);
        timings.sim.push(t0.elapsed().as_nanos());

        // Controller section mirrors `run_experiment_recoverable`'s
        // data plane: the raw clone is journal prep, charged there.
        let t1 = Instant::now();
        let for_journal = raw.clone();
        let metrics = sanitizer.sanitize(raw);
        let sanitize_ns = t1.elapsed().as_nanos();

        let t2 = Instant::now();
        let proposal = scaler
            .decide(t, &metrics, sim.deployment())
            .expect("decide succeeds");
        let feasible = project_to_budget(proposal.clamped(max_tasks), budget);
        let decide_ns = t2.elapsed().as_nanos();

        let t3 = Instant::now();
        journal.append(&JournalRecord {
            t,
            raw: for_journal,
            deployment_before,
            decided: feasible.tasks.clone(),
            outcome: ReconfigOutcome::Applied,
        });
        let journal_ns = t3.elapsed().as_nanos();

        timings.sanitize.push(sanitize_ns);
        timings.decide.push(decide_ns);
        timings.journal.push(journal_ns);
        timings
            .controller
            .push(sanitize_ns + decide_ns + journal_ns);

        decisions.push(feasible.tasks.clone());
        sim.reconfigure(feasible).expect("reconfigure succeeds");
    }
    decisions
}

fn ns(v: u128) -> Json {
    json::num(usize::try_from(v).unwrap_or(usize::MAX))
}

/// One cached-vs-naive horizon measurement for the scaling sweep.
fn sweep_point(w: &Workload, slots: usize) -> (u128, u128) {
    let mut cached_t = Timings::default();
    let cached_decisions = run_slots(
        w,
        make_scaler(Scheme::DragsterSaddle, &w.app, Some(200), SWEEP_SEED),
        slots,
        SWEEP_SEED,
        &mut cached_t,
    );
    let mut naive_t = Timings::default();
    let naive_decisions = run_slots(
        w,
        make_naive_scaler(w, Some(200)),
        slots,
        SWEEP_SEED,
        &mut naive_t,
    );
    assert_eq!(
        cached_decisions, naive_decisions,
        "grid cache changed a decision at horizon {slots} — the cache must be bit-identical"
    );
    (cached_t.decide.mean_ns(), naive_t.decide.mean_ns())
}

fn growth_ratio(later: u128, earlier: u128) -> f64 {
    if earlier == 0 {
        return 0.0;
    }
    later as f64 / earlier as f64
}

fn json_f64(v: f64) -> Json {
    // The repo's minimal JSON writer only has integer numbers; fixed-point
    // ×100 keeps two decimals without a float rendering path.
    json::num((v * 100.0).round().max(0.0) as usize)
}

/// CI smoke: cached vs naive decide cost at one mid-size horizon,
/// measured back-to-back in the same process so machine speed cancels
/// out of the ratio. `sweep_point` also re-asserts the two modes decide
/// bit-identically every slot. Reads and writes nothing.
fn check_mode() -> ! {
    let w = word_count().expect("workload builds");
    let (cached_ns, naive_ns) = sweep_point(&w, CHECK_SLOTS);
    let ratio = growth_ratio(naive_ns, cached_ns);
    let floor = 1.0 + CHECK_MIN_SPEEDUP_FRAC;
    println!(
        "hotpath --check: {CHECK_SLOTS} slots, cached decide {cached_ns} ns/slot vs naive \
         {naive_ns} ns/slot = {ratio:.2}x (floor {floor:.2}x)"
    );
    if ratio < floor {
        eprintln!(
            "hotpath regression: at {CHECK_SLOTS} slots the grid cache only makes decide \
             {ratio:.2}x faster than the naive O(t\u{b2}) path (floor {floor:.2}x; a bypassed \
             cache measures ~1.0x).\n\
             Triage: (1) profile with `cargo run --release -p dragster-bench --bin hotpath` \
             and compare the horizon_sweep rows in results/hotpath.json — cached growth per \
             4x horizon should stay ~1x while naive grows quadratically; (2) check whether a \
             new GP query surface bypasses the GridCache (DESIGN \u{a7}12, CONTRIBUTING) — \
             posterior calls in the decide path must be O(t), not O(t\u{b2}); (3) run \
             `cargo run -p dragster-lint -- --cost-ratchet` for new hot-path allocations."
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        check_mode();
    }
    // `--naive` runs the labeled section with the grid cache off, so a
    // same-commit `before` (naive) / `after` (cached) pair is one
    // invocation each.
    let naive = args.iter().any(|a| a == "--naive");
    let label = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "current".into());
    let w = word_count().expect("workload builds");

    let mut t = Timings::default();
    for &seed in &SEEDS {
        let scaler = if naive {
            make_naive_scaler(&w, Some(200))
        } else {
            make_scaler(Scheme::DragsterSaddle, &w.app, Some(200), seed)
        };
        run_slots(&w, scaler, SLOTS, seed, &mut t);
    }

    let stats = Json::Obj(vec![
        ("slots".to_string(), json::num(SLOTS)),
        ("seeds".to_string(), json::num(SEEDS.len())),
        (
            "controller_mean_ns_per_slot".to_string(),
            ns(t.controller.mean_ns()),
        ),
        (
            "controller_p95_ns_per_slot".to_string(),
            ns(t.controller.p95_ns()),
        ),
        ("sanitize_mean_ns".to_string(), ns(t.sanitize.mean_ns())),
        ("decide_mean_ns".to_string(), ns(t.decide.mean_ns())),
        ("journal_mean_ns".to_string(), ns(t.journal.mean_ns())),
        ("sim_mean_ns_per_slot".to_string(), ns(t.sim.mean_ns())),
    ]);

    // Horizon sweep: cached vs naive decide cost as history grows. The
    // growth ratios are ×100 fixed point (e.g. 412 ≈ 4.12× per 4× more
    // slots — linear; a quadratic path shows ~16×). Skipped for `--naive`
    // labels: the sweep itself already measures both modes.
    let mut sweep_rows = Vec::new();
    let mut prev: Option<(u128, u128)> = None;
    for &slots in &SWEEP_HORIZONS {
        if naive {
            break;
        }
        let (cached_ns, naive_ns) = sweep_point(&w, slots);
        let mut row = vec![
            ("slots".to_string(), json::num(slots)),
            ("cached_decide_mean_ns".to_string(), ns(cached_ns)),
            ("naive_decide_mean_ns".to_string(), ns(naive_ns)),
            (
                "naive_over_cached_x100".to_string(),
                json_f64(growth_ratio(naive_ns, cached_ns)),
            ),
        ];
        if let Some((pc, pn)) = prev {
            row.push((
                "cached_growth_x100".to_string(),
                json_f64(growth_ratio(cached_ns, pc)),
            ));
            row.push((
                "naive_growth_x100".to_string(),
                json_f64(growth_ratio(naive_ns, pn)),
            ));
        }
        println!(
            "horizon {slots}: cached decide {} us, naive {} us ({:.2}x)",
            cached_ns / 1_000,
            naive_ns / 1_000,
            growth_ratio(naive_ns, cached_ns),
        );
        sweep_rows.push(Json::Obj(row));
        prev = Some((cached_ns, naive_ns));
    }
    let sweep = Json::Arr(sweep_rows);

    // Merge under `label`, preserving other labels already in the file.
    let path = std::path::Path::new("results/hotpath.json");
    let mut pairs: Vec<(String, Json)> = match std::fs::read_to_string(path) {
        Ok(text) => match json::parse_json(&text) {
            Ok(Json::Obj(pairs)) => pairs,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let mut updates = vec![(label.clone(), stats)];
    if !naive {
        updates.push(("horizon_sweep".to_string(), sweep));
    }
    for (key, value) in updates {
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            pairs.push((key, value));
        }
    }
    std::fs::create_dir_all("results").expect("results dir");
    let mut out = Json::Obj(pairs).render();
    out.push('\n');
    std::fs::write(path, out).expect("write results/hotpath.json");

    println!(
        "hotpath[{label}]: controller mean {} us, p95 {} us (sanitize {} us, decide {} us, \
         journal {} us); sim {} us per slot",
        t.controller.mean_ns() / 1_000,
        t.controller.p95_ns() / 1_000,
        t.sanitize.mean_ns() / 1_000,
        t.decide.mean_ns() / 1_000,
        t.journal.mean_ns() / 1_000,
        t.sim.mean_ns() / 1_000,
    );
}
