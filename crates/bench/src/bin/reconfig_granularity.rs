//! Section 3.1's Cameo remark, quantified: "Dragster can also take
//! advantage of a faster, more dynamic reconfiguration mechanism, such as
//! Cameo, to perform at shorter time intervals." We sweep the actuation
//! mechanism (Flink checkpoint ≈ 30 s pause / Storm rebalance ≈ 10 s /
//! Cameo ≈ 2 s) × decision-slot length (10 / 5 / 2 min) on the Figure-6
//! square-wave workload and report processed tuples + time lost to pauses.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin reconfig_granularity
//! ```

use dragster_bench::report::Table;
use dragster_bench::runner::write_json;
use dragster_core::{Dragster, DragsterConfig};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{run_experiment, ClusterConfig, Deployment, FluidSim, NoiseConfig};
use dragster_workloads::{word_count, SquareWave};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct GranRow {
    mechanism: String,
    pause_secs: f64,
    slot_minutes: f64,
    total_tuples_e9: f64,
    pause_pct: f64,
    mean_fraction_of_optimal: f64,
}

fn main() {
    let total_minutes = 1000.0;
    let mechanisms = [
        ("Flink checkpoint", ClusterConfig::flink_on_k8s()),
        ("Storm rebalance", ClusterConfig::storm_rebalance()),
        ("Cameo", ClusterConfig::cameo()),
    ];
    let slot_minutes = [10.0, 5.0, 2.0];

    let jobs: Vec<(usize, f64)> = (0..mechanisms.len())
        .flat_map(|m| slot_minutes.iter().map(move |&s| (m, s)))
        .collect();
    let rows: Vec<GranRow> = jobs
        .par_iter()
        .map(|&(mi, slot_min)| {
            let w = word_count().expect("workload builds");
            let (name, cluster) = (mechanisms[mi].0, mechanisms[mi].1);
            let slots = (total_minutes / slot_min) as usize;
            let phase_slots = (200.0 / slot_min) as usize;
            let sim_cfg = SimConfig {
                slot_secs: slot_min * 60.0,
                tick_secs: (slot_min * 60.0 / 60.0).max(2.0),
                ..Default::default()
            };
            let mut sim = FluidSim::new(
                w.app.clone(),
                cluster,
                sim_cfg,
                NoiseConfig::default(),
                42,
                Deployment::uniform(2, 1),
            )
            .expect("simulator accepts the application");
            let mut scaler = Dragster::new(w.app.topology.clone(), DragsterConfig::saddle_point());
            let mut arrival = SquareWave {
                high: w.high_rate.clone(),
                low: w.low_rate.clone(),
                half_period_slots: phase_slots,
            };
            let trace = run_experiment(&mut sim, &mut scaler, &mut arrival, slots)
                .expect("experiment runs");
            let paused: f64 = trace.slots.iter().map(|s| s.pause_secs).sum();
            // mean fraction of the oracle optimum, per slot
            let mut arrival2 = SquareWave {
                high: w.high_rate.clone(),
                low: w.low_rate.clone(),
                half_period_slots: phase_slots,
            };
            let frac: f64 = (0..slots)
                .map(|t| {
                    let r = dragster_sim::ArrivalProcess::rates(&mut arrival2, t);
                    let (_, opt) =
                        dragster_core::greedy_optimal(&w.app, &r, 10, None).expect("oracle runs");
                    trace.ideal_throughput[t] / opt.max(1e-9)
                })
                .sum::<f64>()
                / slots as f64;
            GranRow {
                mechanism: name.into(),
                pause_secs: cluster.reconfig_pause_secs,
                slot_minutes: slot_min,
                total_tuples_e9: trace.total_processed() / 1e9,
                pause_pct: paused / (total_minutes * 60.0) * 100.0,
                mean_fraction_of_optimal: frac,
            }
        })
        .collect();

    println!("=== Reconfiguration granularity (Cameo remark, §3.1) — WordCount square wave, 1000 min ===\n");
    let mut table = Table::new(&[
        "mechanism",
        "pause (s)",
        "slot (min)",
        "tuples (1e9)",
        "pause time (%)",
        "mean frac. optimal",
    ]);
    for r in &rows {
        table.row(vec![
            r.mechanism.clone(),
            format!("{:.0}", r.pause_secs),
            format!("{:.0}", r.slot_minutes),
            format!("{:.2}", r.total_tuples_e9),
            format!("{:.2}", r.pause_pct),
            format!("{:.3}", r.mean_fraction_of_optimal),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shorter decision intervals track the moving optimum more tightly (mean fraction\n\
         of optimal rises), and a cheaper actuation mechanism shrinks the pause tax —\n\
         quantifying §3.1's remark that Dragster benefits from Cameo-style reconfiguration."
    );

    write_json(
        "reconfig_granularity",
        "Actuation mechanism x decision interval sweep",
        &rows,
    );
}
