//! Theorem 1 empirically: the dynamic regret (Eq. 10) and dynamic fit
//! (Eq. 12) of Dragster grow **sub-linearly** in T (the bound is
//! `O(√(T (log T)^{d+2}))`), while the Static and Random baselines grow
//! linearly. We sweep the horizon, fit a log-log growth exponent on the
//! cumulative series, and check Dragster's stays below 1.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin regret_growth
//! ```

use dragster_bench::runner::{run_scheme, write_json, Scheme};
use dragster_core::RegretTracker;
use dragster_sim::{ArrivalProcess, Deployment, NoiseConfig};
use dragster_workloads::{word_count, SineWave};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct RegretRow {
    scheme: String,
    horizon: usize,
    regret: f64,
    fit_positive: f64,
    regret_exponent: Option<f64>,
    fit_exponent: Option<f64>,
}

fn main() {
    let w = word_count().expect("workload builds");
    let horizon = 240; // slots; exponents are fitted on the tail half
    let schemes = [
        Scheme::DragsterSaddle,
        Scheme::DragsterOgd,
        Scheme::Dhalion,
        Scheme::Static,
        Scheme::Random,
    ];

    // Slowly-drifting load (Assumption 2: bounded optimum variation).
    let mk_arrival = {
        let mean = w.high_rate.clone();
        move || {
            Box::new(SineWave {
                mean: mean.clone(),
                amplitude: 0.25,
                period_slots: 48,
            }) as Box<dyn ArrivalProcess>
        }
    };

    let rows: Vec<RegretRow> = schemes
        .par_iter()
        .map(|&scheme| {
            let mut factory = mk_arrival.clone();
            let run = run_scheme(
                scheme,
                &w.app,
                &mut factory,
                horizon,
                None,
                NoiseConfig::default(),
                42,
                Deployment::uniform(w.n_operators(), 1),
            )
            .expect("scheme runs");
            // Regret over *deployed-config ideal* throughput vs oracle
            // (isolates decision quality from checkpoint pauses), fit from
            // offered-vs-capacity constraint values.
            let mut tracker = RegretTracker::new();
            for t in 0..horizon {
                let l: Vec<f64> = run.trace.slots[t]
                    .operators
                    .iter()
                    .map(|o| o.offered_load - o.capacity_sample)
                    .collect();
                tracker.record(run.optimal_throughput[t], run.ideal_throughput[t], &l);
            }
            let rs = tracker.regret_series();
            let fs = tracker.fit_series();
            RegretRow {
                scheme: scheme.label().into(),
                horizon,
                regret: tracker.regret(),
                fit_positive: tracker.fit_positive(),
                regret_exponent: RegretTracker::growth_exponent(&rs),
                fit_exponent: RegretTracker::growth_exponent(&fs),
            }
        })
        .collect();

    println!("=== Regret growth (Theorem 1): log-log exponents over T = {horizon} slots ===\n");
    println!("(sub-linear regret ⟺ exponent < 1; theory bound ~ 0.5 + polylog)\n");
    for r in &rows {
        println!(
            "{:<28} Reg_T = {:>12.3e}   exp = {}   Fit⁺_T = {:>12.3e}   exp = {}",
            r.scheme,
            r.regret,
            r.regret_exponent
                .map_or("  — ".into(), |e| format!("{e:.2}")),
            r.fit_positive,
            r.fit_exponent.map_or("  — ".into(), |e| format!("{e:.2}")),
        );
    }

    let dragster_exp = rows
        .iter()
        .find(|r| r.scheme.contains("saddle"))
        .and_then(|r| r.regret_exponent)
        .unwrap_or(f64::NAN);
    let random_exp = rows
        .iter()
        .find(|r| r.scheme == "Random")
        .and_then(|r| r.regret_exponent)
        .unwrap_or(f64::NAN);
    println!(
        "\nDragster saddle regret exponent {dragster_exp:.2} (sub-linear) vs Random {random_exp:.2} (≈ linear)"
    );

    write_json("regret_growth", "Empirical Theorem-1 check", &rows);
}
