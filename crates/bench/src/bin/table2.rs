//! Table 2: per-200-minute-phase convergence time, processed tuples, and
//! cost per billion tuples for the Figure-6 run (WordCount under load
//! flips). The paper's headline cost claim comes from the low phases:
//! Dragster scales deeper than Dhalion's idle-CPU rule, yielding
//! "14.6 %–15.6 % cost-savings".
//!
//! ```text
//! cargo run --release -p dragster-bench --bin table2
//! ```

use dragster_bench::experiments::{phase_metrics, workload_change_experiment};
use dragster_bench::report::Table;
use dragster_bench::runner::write_json;

fn main() {
    let exp = workload_change_experiment(42).expect("experiment runs");
    let phases: Vec<_> = exp
        .runs
        .iter()
        .map(|r| phase_metrics(r, exp.phase_slots))
        .collect();
    let n_phases = phases[0].len();

    println!("=== Table 2 — WordCount under workload changes (phases of 200 min) ===\n");
    let mut header = vec!["metric / scheme".to_string()];
    for (p, ph) in phases[0].iter().enumerate().take(n_phases) {
        header.push(format!(
            "{}-{} min ({})",
            p * 200,
            (p + 1) * 200,
            ph.offered
        ));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&hdr);

    for (metric, fmt) in [
        ("Convergence time (min)", 0usize),
        ("# processed tuples (1e9)", 1),
        ("Cost per 1e9 tuples ($)", 2),
    ] {
        for (run, ph) in exp.runs.iter().zip(phases.iter()) {
            let mut cells = vec![format!("{metric}: {}", run.scheme)];
            for p in ph {
                cells.push(match fmt {
                    0 => p
                        .convergence_minutes
                        .map_or("—".into(), |m| format!("{m:.0}")),
                    1 => format!("{:.2}", p.processed_tuples / 1e9),
                    _ => format!("{:.1}", p.cost_per_billion),
                });
            }
            table.row(cells);
        }
    }
    println!("{}", table.render());

    // Aggregates the paper quotes from this experiment.
    let dhalion = &exp.runs[0];
    assert_eq!(dhalion.scheme, "Dhalion");
    for run in &exp.runs[1..] {
        let goodput_gain = (run.total_tuples / dhalion.total_tuples - 1.0) * 100.0;
        let cost_savings = (1.0 - run.cost_per_billion / dhalion.cost_per_billion) * 100.0;
        println!(
            "{}: {goodput_gain:+.1} % tuples processed vs Dhalion (paper: +20.0–25.8 %), \
             {cost_savings:+.1} % cost-per-tuple savings (paper: 14.6–15.6 %)",
            run.scheme
        );
    }
    // Low-phase cost comparison (where the savings come from).
    let low_cost = |ph: &[dragster_bench::experiments::PhaseMetrics]| {
        let xs: Vec<f64> = ph
            .iter()
            .filter(|p| p.offered == "low")
            .map(|p| p.cost_per_billion)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    println!();
    for (run, ph) in exp.runs.iter().zip(phases.iter()) {
        println!(
            "{}: mean low-phase cost {:.1} $/1e9 tuples",
            run.scheme,
            low_cost(ph)
        );
    }

    write_json("table2", "Per-phase metrics for the Fig.6 run", &phases);
}
