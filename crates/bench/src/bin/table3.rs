//! Table 3: Yahoo streaming benchmark over the first 300 minutes —
//! convergence time, processing rate before convergence, and cost per
//! billion tuples, for the three schemes.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin table3
//! ```

use dragster_bench::experiments::yahoo_experiment;
use dragster_bench::report::Table;
use dragster_bench::runner::write_json;
use dragster_sim::fluid::SimConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    scheme: String,
    convergence_minutes: Option<f64>,
    proc_rate_before_convergence: f64,
    cost_per_billion: f64,
}

fn main() {
    let exp = yahoo_experiment(42).expect("experiment runs");
    let slot_secs = SimConfig::default().slot_secs;
    let window = 0..exp.step_slot; // the paper's Table 3 covers 300 minutes

    println!("=== Table 3 — Yahoo benchmark, first 300 minutes ===\n");
    let mut rows = Vec::new();
    for run in &exp.runs {
        let conv_slot = run
            .trace
            .convergence_slot(&run.optimal_throughput, 0.1, window.clone());
        let conv_min =
            run.trace
                .convergence_minutes(&run.optimal_throughput, 0.1, window.clone(), slot_secs);
        // Mean processing rate over the fixed 300-minute window — the
        // paper's prose metric ("processes 11.2 %–14.9 % more tuples …
        // within 300 minutes"); a per-scheme before-convergence window
        // would make the fastest scheme look worst (its only
        // pre-convergence slot is the cold start).
        let _ = conv_slot;
        let rate_before =
            run.throughput[..exp.step_slot].iter().sum::<f64>() / exp.step_slot as f64;
        // cost per billion over the 300-minute window
        let tuples: f64 = run.trace.slots[window.clone()]
            .iter()
            .map(|s| s.processed_tuples)
            .sum();
        let cost: f64 = run.trace.slots[window.clone()]
            .iter()
            .map(|s| s.cost_dollars)
            .sum();
        rows.push(Table3Row {
            scheme: run.scheme.clone(),
            convergence_minutes: conv_min,
            proc_rate_before_convergence: rate_before,
            cost_per_billion: cost / (tuples / 1e9),
        });
    }

    let mut table = Table::new(&[
        "scheme",
        "Convergence time (min)",
        "Proc. rate b4 conv. (1e5/s)",
        "Cost per 1e9 tuples ($)",
    ]);
    for r in &rows {
        table.row(vec![
            r.scheme.clone(),
            r.convergence_minutes
                .map_or("—".into(), |m| format!("{m:.0}")),
            format!("{:.2}", r.proc_rate_before_convergence / 1e5),
            format!("{:.1}", r.cost_per_billion),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(paper: Dhalion 240 min / 1.93e5 / $120.4; saddle 110 / 2.15 / 115.8; gradient 150 / 2.22 / 115.8)"
    );

    let dh = &rows[0];
    for r in &rows[1..] {
        println!(
            "{}: {:+.1} % proc-rate before convergence vs Dhalion (paper: 11.2–14.9 %), {:+.1} % cost savings (paper: ~4.2 %)",
            r.scheme,
            (r.proc_rate_before_convergence / dh.proc_rate_before_convergence - 1.0) * 100.0,
            (1.0 - r.cost_per_billion / dh.cost_per_billion) * 100.0,
        );
    }

    write_json("table3", "Yahoo benchmark 300-minute metrics", &rows);
}
