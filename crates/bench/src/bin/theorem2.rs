//! Theorem 2 empirically: Dragster running with *learned* throughput
//! functions (online RLS over the per-operator selectivities, starting
//! from the all-pass-through guess) versus the exact-h Theorem-1 mode, on
//! the Yahoo benchmark whose selectivities (⅓ filter, ½ window) are far
//! from the initial guess. Theorem 2 predicts the same regret order once
//! the estimation error decays like `o(1/√T)`.
//!
//! ```text
//! cargo run --release -p dragster-bench --bin theorem2
//! ```

use dragster_bench::report::ascii_series;
use dragster_bench::runner::write_json;
use dragster_core::{greedy_optimal, Dragster, DragsterConfig, RegretTracker};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{
    run_experiment, ClusterConfig, ConstantArrival, Deployment, FluidSim, NoiseConfig,
};
use dragster_workloads::yahoo_benchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Theorem2Row {
    mode: String,
    regret: f64,
    regret_exponent: Option<f64>,
    convergence_slot: Option<usize>,
    final_h_error: Option<f64>,
}

fn main() {
    let w = yahoo_benchmark().expect("workload builds");
    let slots = 120;
    let rate = w.high_rate.clone();
    let (_, opt) = greedy_optimal(&w.app, &rate, 10, None).expect("oracle runs");

    println!("=== Theorem 2 — exact vs learned throughput functions (Yahoo) ===\n");
    let mut rows = Vec::new();
    for (mode, learn) in [
        ("exact h (Theorem 1)", false),
        ("learned h (Theorem 2)", true),
    ] {
        let mut sim = FluidSim::new(
            w.app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            42,
            Deployment::uniform(6, 1),
        )
        .expect("simulator accepts the application");
        let cfg = DragsterConfig {
            learn_h: learn,
            ..DragsterConfig::saddle_point()
        };
        let mut scaler = Dragster::new(w.app.topology.clone(), cfg);
        let mut arrival = ConstantArrival(rate.clone());
        let trace =
            run_experiment(&mut sim, &mut scaler, &mut arrival, slots).expect("experiment runs");

        let mut tracker = RegretTracker::new();
        for t in 0..slots {
            tracker.record(opt, trace.ideal_throughput[t], &[]);
        }
        let series = tracker.regret_series();
        print!("{}", ascii_series(mode, &series, 100));
        let conv = trace.convergence_slot(&vec![opt; slots], 0.1, 0..slots);
        let h_err = scaler
            .estimator()
            .map(|est| est.max_relative_error(&w.app.topology));
        rows.push(Theorem2Row {
            mode: mode.into(),
            regret: tracker.regret(),
            regret_exponent: RegretTracker::growth_exponent(&series),
            convergence_slot: conv,
            final_h_error: h_err,
        });
    }

    println!();
    for r in &rows {
        println!(
            "{:<24} Reg_T = {:>10.3e}  growth exp = {}  convergence slot = {:?}{}",
            r.mode,
            r.regret,
            r.regret_exponent
                .map_or(" — ".into(), |e| format!("{e:.2}")),
            r.convergence_slot,
            r.final_h_error.map_or(String::new(), |e| format!(
                "  (final h error {:.1} %)",
                e * 100.0
            )),
        );
    }
    println!(
        "\nTheorem 2 check: learned-h regret within {:.1}x of exact-h (same growth order)",
        rows[1].regret / rows[0].regret.max(1e-9)
    );

    write_json("theorem2", "Exact vs learned throughput functions", &rows);
}
