//! Chaos recovery experiment: how deep does each scheme dip when a fault
//! lands, and how many slots does it need to climb back?
//!
//! One scripted fault per run (so dips line up with their cause), five
//! fault classes (pod crash, straggler, reconfiguration-failure burst,
//! metric dropout window, silent metric corruption), every scheme on the
//! same seed and arrival process. Reported per `(scheme, fault class)`:
//!
//! * **pre-fault mean** — throughput over the settled window before the
//!   fault (tuples/s);
//! * **dip depth** — `1 − min(post-fault throughput) / pre-fault mean`;
//! * **slots to recover** — slots from the fault until throughput first
//!   returns to ≥ 90 % of the pre-fault mean (`None` = never recovered);
//! * **regret** — `Σ_t max(0, optimal − ideal_t)` over the whole run, the
//!   deployed-configuration shortfall the fault (and the scheme's reaction
//!   to it) caused;
//! * **reconfig failures / held slots** — how hard the retry-with-backoff
//!   path was exercised.
//!
//! The module also provides the zero-fault identity check the `chaos`
//! binary runs first: a harness with an inert [`FaultPlan`] must reproduce
//! the unfaulted baseline trace *bit-identically* (same seed ⇒ same
//! [`Trace`]), proving the chaos layer is pay-for-what-you-use.

use crate::runner::{make_scaler, Scheme};
use dragster_core::greedy_optimal;
use dragster_sim::faults::{FaultKind, FaultPlan, FaultRates, ScriptedFault};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{
    run_experiment_recoverable, run_experiment_with, Application, ClusterConfig, ConstantArrival,
    Deployment, ExperimentOptions, FluidSim, NoiseConfig, RecoveryAction, RecoveryOptions,
    SimError, Trace,
};
use serde::Serialize;

/// One named fault scenario.
#[derive(Clone, Debug)]
pub struct FaultClass {
    pub label: &'static str,
    pub plan: FaultPlan,
}

/// The five scripted fault classes, each landing at `fault_slot` on
/// `operator` (where the class is operator-scoped).
pub fn fault_classes(fault_slot: usize, operator: usize) -> Vec<FaultClass> {
    vec![
        FaultClass {
            label: "pod-crash",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::PodCrash,
                operator: Some(operator),
                severity: 1.0,
                duration_slots: 3,
            }),
        },
        FaultClass {
            label: "straggler",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::Straggler,
                operator: Some(operator),
                severity: 0.5,
                duration_slots: 4,
            }),
        },
        FaultClass {
            label: "reconfig-fail-burst",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::ReconfigFail,
                operator: None,
                severity: 1.0,
                duration_slots: 3,
            }),
        },
        FaultClass {
            label: "metric-dropout",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::MetricDropout,
                operator: Some(operator),
                severity: 1.0,
                duration_slots: 4,
            }),
        },
        FaultClass {
            label: "metric-corrupt",
            plan: FaultPlan {
                scripted: vec![ScriptedFault {
                    slot: fault_slot,
                    kind: FaultKind::MetricCorrupt,
                    operator: Some(operator),
                    severity: 1.0,
                    duration_slots: 4,
                }],
                rates: FaultRates {
                    // 40× spikes: finite, silent, sanitizer-clamped
                    metric_corrupt_factor: 40.0,
                    ..Default::default()
                },
            },
        },
    ]
}

/// Recovery metrics for one `(scheme, fault class)` run.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryMetrics {
    pub scheme: String,
    pub fault_class: String,
    pub pre_fault_mean: f64,
    pub dip_depth: f64,
    pub slots_to_recover: Option<usize>,
    pub regret: f64,
    pub reconfig_failures: usize,
    pub held_slots: usize,
    pub fault_events: usize,
    pub degraded_readings: usize,
}

/// Run one scheme against one fault plan and compute recovery metrics.
///
/// # Errors
/// Any non-fault [`SimError`] from the simulator or the scheme's policy
/// (injected faults themselves never abort the run).
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_case(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    plan: FaultPlan,
    label: &str,
    slots: usize,
    fault_slot: usize,
    seed: u64,
) -> Result<RecoveryMetrics, SimError> {
    let trace = run_faulted(scheme, app, rates, plan, slots, seed)?;
    let (_, opt) = greedy_optimal(app, rates, 10, None).map_err(SimError::from)?;

    // Settled window: skip the cold-start ramp, stop at the fault.
    let warm = (fault_slot / 2).min(fault_slot.saturating_sub(1));
    let pre: Vec<f64> = trace
        .slots
        .get(warm..fault_slot)
        .unwrap_or_default()
        .iter()
        .map(|s| s.throughput)
        .collect();
    let pre_fault_mean = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<f64>() / pre.len() as f64
    };

    let post: Vec<f64> = trace
        .slots
        .get(fault_slot..)
        .unwrap_or_default()
        .iter()
        .map(|s| s.throughput)
        .collect();
    let min_post = post.iter().copied().fold(f64::INFINITY, f64::min);
    let dip_depth = if pre_fault_mean > 0.0 && min_post.is_finite() {
        (1.0 - min_post / pre_fault_mean).max(0.0)
    } else {
        0.0
    };
    let slots_to_recover = post
        .iter()
        .position(|&f| f >= 0.9 * pre_fault_mean)
        .filter(|_| pre_fault_mean > 0.0);

    let regret: f64 = trace
        .ideal_throughput
        .iter()
        .map(|&i| (opt - i).max(0.0))
        .sum();
    let degraded_readings = trace
        .slots
        .iter()
        .flat_map(|s| &s.operators)
        .filter(|o| o.degraded)
        .count();

    Ok(RecoveryMetrics {
        scheme: scheme.label().into(),
        fault_class: label.into(),
        pre_fault_mean,
        dip_depth,
        slots_to_recover,
        regret,
        reconfig_failures: trace.reconfig_failures,
        held_slots: trace.held_slots,
        fault_events: trace.fault_events.len(),
        degraded_readings,
    })
}

/// Run one scheme under a fault plan and return the full trace.
///
/// # Errors
/// Any non-fault [`SimError`] from the simulator or the policy.
pub fn run_faulted(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    plan: FaultPlan,
    slots: usize,
    seed: u64,
) -> Result<Trace, SimError> {
    let mut sim = FluidSim::new(
        app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(app.n_operators(), 1),
    )?
    .with_faults(plan);
    let mut scaler = make_scaler(scheme, app, None, seed);
    let mut arrival = ConstantArrival(rates.to_vec());
    run_experiment_with(
        &mut sim,
        scaler.as_mut(),
        &mut arrival,
        slots,
        ExperimentOptions::default(),
    )
}

/// The zero-fault identity check: attaching an inert [`FaultPlan`] must
/// leave the trace bit-identical to the plain baseline run.
///
/// # Errors
/// [`SimError`] if either run fails, or [`SimError::Policy`] if the traces
/// diverge (which would mean the chaos layer perturbs unfaulted runs).
pub fn verify_zero_fault_identity(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    slots: usize,
    seed: u64,
) -> Result<(), SimError> {
    let baseline = {
        let mut sim = FluidSim::new(
            app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            seed,
            Deployment::uniform(app.n_operators(), 1),
        )?;
        let mut scaler = make_scaler(scheme, app, None, seed);
        let mut arrival = ConstantArrival(rates.to_vec());
        run_experiment_with(
            &mut sim,
            scaler.as_mut(),
            &mut arrival,
            slots,
            ExperimentOptions::default(),
        )?
    };
    let inert = run_faulted(scheme, app, rates, FaultPlan::none(), slots, seed)?;
    if baseline == inert {
        Ok(())
    } else {
        Err(SimError::Policy {
            scheme: scheme.label().into(),
            reason: "zero-fault chaos trace diverged from the unfaulted baseline".into(),
        })
    }
}

/// Regret accounting for one `(scheme, crash period)` controller-crash run.
#[derive(Clone, Debug, Serialize)]
pub struct ControllerCrashRow {
    pub scheme: String,
    /// Crash period in slots; `None` is the clean recoverable baseline.
    pub crash_period: Option<usize>,
    pub crashes: usize,
    /// Crashes recovered by checkpoint restore + journal replay.
    pub restores: usize,
    /// Crashes that fell back to degraded hold-last-deployment mode.
    pub degraded: usize,
    pub fallback_slots: usize,
    pub regret: f64,
    /// `regret − regret(clean run)` — the regret the crashes alone cost.
    pub regret_overhead_vs_clean: f64,
}

/// A fault plan that crashes the controller every `period` slots.
pub fn periodic_crash_plan(period: usize, slots: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let mut t = period;
    while t < slots {
        plan = plan.with(ScriptedFault {
            slot: t,
            kind: FaultKind::ControllerCrash,
            operator: None,
            severity: 1.0,
            duration_slots: 1,
        });
        t += period;
    }
    plan
}

/// Run one scheme through the crash-safe runtime under a fault plan.
///
/// # Errors
/// Any non-fault [`SimError`] from the simulator or the scheme's policy.
pub fn run_recoverable(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    plan: FaultPlan,
    slots: usize,
    seed: u64,
    rec: RecoveryOptions,
) -> Result<Trace, SimError> {
    let mut sim = FluidSim::new(
        app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(app.n_operators(), 1),
    )?
    .with_faults(plan);
    let mut scaler = make_scaler(scheme, app, None, seed);
    let mut arrival = ConstantArrival(rates.to_vec());
    run_experiment_recoverable(
        &mut sim,
        scaler.as_mut(),
        &mut arrival,
        slots,
        ExperimentOptions::default(),
        rec,
    )
}

/// Sweep crash periods for one scheme: the first entry of `periods` should
/// be `None` (the clean recoverable baseline every other row's overhead is
/// measured against).
///
/// # Errors
/// Any non-fault [`SimError`] from the simulator, the policy, or the
/// oracle.
pub fn controller_crash_rows(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    periods: &[Option<usize>],
    slots: usize,
    seed: u64,
) -> Result<Vec<ControllerCrashRow>, SimError> {
    let (_, opt) = greedy_optimal(app, rates, 10, None).map_err(SimError::from)?;
    let rec = RecoveryOptions::default();
    let mut rows: Vec<ControllerCrashRow> = Vec::with_capacity(periods.len());
    let mut clean_regret = 0.0;
    for &period in periods {
        let plan = period.map_or_else(FaultPlan::none, |p| periodic_crash_plan(p, slots));
        let trace = run_recoverable(scheme, app, rates, plan, slots, seed, rec)?;
        let regret: f64 = trace
            .ideal_throughput
            .iter()
            .map(|&i| (opt - i).max(0.0))
            .sum();
        let restores = trace
            .recovery_events
            .iter()
            .filter(|e| matches!(e.action, RecoveryAction::Restored { .. }))
            .count();
        let degraded = trace
            .recovery_events
            .iter()
            .filter(|e| matches!(e.action, RecoveryAction::Degraded { .. }))
            .count();
        if period.is_none() {
            clean_regret = regret;
        }
        rows.push(ControllerCrashRow {
            scheme: scheme.label().into(),
            crash_period: period,
            crashes: trace.controller_crashes,
            restores,
            degraded,
            fallback_slots: trace.fallback_slots,
            regret,
            regret_overhead_vs_clean: if period.is_none() {
                0.0
            } else {
                regret - clean_regret
            },
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_workloads::word_count;

    #[test]
    fn zero_fault_identity_holds_for_all_paper_schemes() {
        let w = word_count().unwrap();
        for s in crate::runner::ALL_SCHEMES {
            verify_zero_fault_identity(s, &w.app, &w.high_rate, 6, 11).unwrap();
        }
    }

    #[test]
    fn chaos_case_produces_finite_metrics() {
        let w = word_count().unwrap();
        for fc in fault_classes(5, 0) {
            let m = run_chaos_case(
                Scheme::DragsterSaddle,
                &w.app,
                &w.high_rate,
                fc.plan,
                fc.label,
                12,
                5,
                3,
            )
            .unwrap();
            assert!(m.pre_fault_mean.is_finite() && m.pre_fault_mean > 0.0);
            assert!((0.0..=1.0).contains(&m.dip_depth), "{}", m.dip_depth);
            assert!(m.regret.is_finite() && m.regret >= 0.0);
        }
    }

    #[test]
    fn controller_crash_rows_count_crashes_and_baseline_has_none() {
        let w = word_count().unwrap();
        let rows = controller_crash_rows(
            Scheme::DragsterSaddle,
            &w.app,
            &w.high_rate,
            &[None, Some(5)],
            12,
            42,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].crash_period, None);
        assert_eq!(rows[0].crashes, 0);
        assert_eq!(rows[0].regret_overhead_vs_clean, 0.0);
        // period 5 over 12 slots ⇒ crashes at slots 5 and 10
        assert_eq!(rows[1].crashes, 2);
        assert_eq!(rows[1].restores, 2, "per-slot checkpoints always restore");
        assert_eq!(rows[1].degraded, 0);
        assert!(rows[1].regret.is_finite() && rows[1].regret >= 0.0);
        // restore + replay is bit-identical ⇒ crash recovery is regret-free
        assert_eq!(rows[1].regret_overhead_vs_clean, 0.0);
    }

    #[test]
    fn crash_class_actually_dips() {
        let w = word_count().unwrap();
        let fc = &fault_classes(6, 0)[0]; // pod-crash
        let m = run_chaos_case(
            Scheme::DragsterSaddle,
            &w.app,
            &w.high_rate,
            fc.plan.clone(),
            fc.label,
            16,
            6,
            3,
        )
        .unwrap();
        assert!(m.dip_depth > 0.1, "crash should dent throughput: {m:?}");
        assert!(m.fault_events >= 1);
    }
}
