//! Chaos recovery experiment: how deep does each scheme dip when a fault
//! lands, and how many slots does it need to climb back?
//!
//! One scripted fault per run (so dips line up with their cause), five
//! fault classes (pod crash, straggler, reconfiguration-failure burst,
//! metric dropout window, silent metric corruption), every scheme on the
//! same seed and arrival process. Reported per `(scheme, fault class)`:
//!
//! * **pre-fault mean** — throughput over the settled window before the
//!   fault (tuples/s);
//! * **dip depth** — `1 − min(post-fault throughput) / pre-fault mean`;
//! * **slots to recover** — slots from the fault until throughput first
//!   returns to ≥ 90 % of the pre-fault mean (`None` = never recovered);
//! * **regret** — `Σ_t max(0, optimal − ideal_t)` over the whole run, the
//!   deployed-configuration shortfall the fault (and the scheme's reaction
//!   to it) caused;
//! * **reconfig failures / held slots** — how hard the retry-with-backoff
//!   path was exercised.
//!
//! The module also provides the zero-fault identity check the `chaos`
//! binary runs first: a harness with an inert [`FaultPlan`] must reproduce
//! the unfaulted baseline trace *bit-identically* (same seed ⇒ same
//! [`Trace`]), proving the chaos layer is pay-for-what-you-use.

use crate::runner::{make_scaler, Scheme};
use dragster_core::greedy_optimal;
use dragster_sim::faults::{FaultKind, FaultPlan, FaultRates, ScriptedFault};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{
    run_experiment_with, Application, ClusterConfig, ConstantArrival, Deployment,
    ExperimentOptions, FluidSim, NoiseConfig, SimError, Trace,
};
use serde::Serialize;

/// One named fault scenario.
#[derive(Clone, Debug)]
pub struct FaultClass {
    pub label: &'static str,
    pub plan: FaultPlan,
}

/// The five scripted fault classes, each landing at `fault_slot` on
/// `operator` (where the class is operator-scoped).
pub fn fault_classes(fault_slot: usize, operator: usize) -> Vec<FaultClass> {
    vec![
        FaultClass {
            label: "pod-crash",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::PodCrash,
                operator: Some(operator),
                severity: 1.0,
                duration_slots: 3,
            }),
        },
        FaultClass {
            label: "straggler",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::Straggler,
                operator: Some(operator),
                severity: 0.5,
                duration_slots: 4,
            }),
        },
        FaultClass {
            label: "reconfig-fail-burst",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::ReconfigFail,
                operator: None,
                severity: 1.0,
                duration_slots: 3,
            }),
        },
        FaultClass {
            label: "metric-dropout",
            plan: FaultPlan::none().with(ScriptedFault {
                slot: fault_slot,
                kind: FaultKind::MetricDropout,
                operator: Some(operator),
                severity: 1.0,
                duration_slots: 4,
            }),
        },
        FaultClass {
            label: "metric-corrupt",
            plan: FaultPlan {
                scripted: vec![ScriptedFault {
                    slot: fault_slot,
                    kind: FaultKind::MetricCorrupt,
                    operator: Some(operator),
                    severity: 1.0,
                    duration_slots: 4,
                }],
                rates: FaultRates {
                    // 40× spikes: finite, silent, sanitizer-clamped
                    metric_corrupt_factor: 40.0,
                    ..Default::default()
                },
            },
        },
    ]
}

/// Recovery metrics for one `(scheme, fault class)` run.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryMetrics {
    pub scheme: String,
    pub fault_class: String,
    pub pre_fault_mean: f64,
    pub dip_depth: f64,
    pub slots_to_recover: Option<usize>,
    pub regret: f64,
    pub reconfig_failures: usize,
    pub held_slots: usize,
    pub fault_events: usize,
    pub degraded_readings: usize,
}

/// Run one scheme against one fault plan and compute recovery metrics.
///
/// # Errors
/// Any non-fault [`SimError`] from the simulator or the scheme's policy
/// (injected faults themselves never abort the run).
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_case(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    plan: FaultPlan,
    label: &str,
    slots: usize,
    fault_slot: usize,
    seed: u64,
) -> Result<RecoveryMetrics, SimError> {
    let trace = run_faulted(scheme, app, rates, plan, slots, seed)?;
    let (_, opt) = greedy_optimal(app, rates, 10, None).map_err(SimError::from)?;

    // Settled window: skip the cold-start ramp, stop at the fault.
    let warm = (fault_slot / 2).min(fault_slot.saturating_sub(1));
    let pre: Vec<f64> = trace
        .slots
        .get(warm..fault_slot)
        .unwrap_or_default()
        .iter()
        .map(|s| s.throughput)
        .collect();
    let pre_fault_mean = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<f64>() / pre.len() as f64
    };

    let post: Vec<f64> = trace
        .slots
        .get(fault_slot..)
        .unwrap_or_default()
        .iter()
        .map(|s| s.throughput)
        .collect();
    let min_post = post.iter().copied().fold(f64::INFINITY, f64::min);
    let dip_depth = if pre_fault_mean > 0.0 && min_post.is_finite() {
        (1.0 - min_post / pre_fault_mean).max(0.0)
    } else {
        0.0
    };
    let slots_to_recover = post
        .iter()
        .position(|&f| f >= 0.9 * pre_fault_mean)
        .filter(|_| pre_fault_mean > 0.0);

    let regret: f64 = trace
        .ideal_throughput
        .iter()
        .map(|&i| (opt - i).max(0.0))
        .sum();
    let degraded_readings = trace
        .slots
        .iter()
        .flat_map(|s| &s.operators)
        .filter(|o| o.degraded)
        .count();

    Ok(RecoveryMetrics {
        scheme: scheme.label().into(),
        fault_class: label.into(),
        pre_fault_mean,
        dip_depth,
        slots_to_recover,
        regret,
        reconfig_failures: trace.reconfig_failures,
        held_slots: trace.held_slots,
        fault_events: trace.fault_events.len(),
        degraded_readings,
    })
}

/// Run one scheme under a fault plan and return the full trace.
///
/// # Errors
/// Any non-fault [`SimError`] from the simulator or the policy.
pub fn run_faulted(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    plan: FaultPlan,
    slots: usize,
    seed: u64,
) -> Result<Trace, SimError> {
    let mut sim = FluidSim::new(
        app.clone(),
        ClusterConfig::default(),
        SimConfig::default(),
        NoiseConfig::default(),
        seed,
        Deployment::uniform(app.n_operators(), 1),
    )?
    .with_faults(plan);
    let mut scaler = make_scaler(scheme, app, None, seed);
    let mut arrival = ConstantArrival(rates.to_vec());
    run_experiment_with(
        &mut sim,
        scaler.as_mut(),
        &mut arrival,
        slots,
        ExperimentOptions::default(),
    )
}

/// The zero-fault identity check: attaching an inert [`FaultPlan`] must
/// leave the trace bit-identical to the plain baseline run.
///
/// # Errors
/// [`SimError`] if either run fails, or [`SimError::Policy`] if the traces
/// diverge (which would mean the chaos layer perturbs unfaulted runs).
pub fn verify_zero_fault_identity(
    scheme: Scheme,
    app: &Application,
    rates: &[f64],
    slots: usize,
    seed: u64,
) -> Result<(), SimError> {
    let baseline = {
        let mut sim = FluidSim::new(
            app.clone(),
            ClusterConfig::default(),
            SimConfig::default(),
            NoiseConfig::default(),
            seed,
            Deployment::uniform(app.n_operators(), 1),
        )?;
        let mut scaler = make_scaler(scheme, app, None, seed);
        let mut arrival = ConstantArrival(rates.to_vec());
        run_experiment_with(
            &mut sim,
            scaler.as_mut(),
            &mut arrival,
            slots,
            ExperimentOptions::default(),
        )?
    };
    let inert = run_faulted(scheme, app, rates, FaultPlan::none(), slots, seed)?;
    if baseline == inert {
        Ok(())
    } else {
        Err(SimError::Policy {
            scheme: scheme.label().into(),
            reason: "zero-fault chaos trace diverged from the unfaulted baseline".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_workloads::word_count;

    #[test]
    fn zero_fault_identity_holds_for_all_paper_schemes() {
        let w = word_count().unwrap();
        for s in crate::runner::ALL_SCHEMES {
            verify_zero_fault_identity(s, &w.app, &w.high_rate, 6, 11).unwrap();
        }
    }

    #[test]
    fn chaos_case_produces_finite_metrics() {
        let w = word_count().unwrap();
        for fc in fault_classes(5, 0) {
            let m = run_chaos_case(
                Scheme::DragsterSaddle,
                &w.app,
                &w.high_rate,
                fc.plan,
                fc.label,
                12,
                5,
                3,
            )
            .unwrap();
            assert!(m.pre_fault_mean.is_finite() && m.pre_fault_mean > 0.0);
            assert!((0.0..=1.0).contains(&m.dip_depth), "{}", m.dip_depth);
            assert!(m.regret.is_finite() && m.regret >= 0.0);
        }
    }

    #[test]
    fn crash_class_actually_dips() {
        let w = word_count().unwrap();
        let fc = &fault_classes(6, 0)[0]; // pod-crash
        let m = run_chaos_case(
            Scheme::DragsterSaddle,
            &w.app,
            &w.high_rate,
            fc.plan.clone(),
            fc.label,
            16,
            6,
            3,
        )
        .unwrap();
        assert!(m.dip_depth > 0.1, "crash should dent throughput: {m:?}");
        assert!(m.fault_events >= 1);
    }
}
