//! Full experiment definitions shared between binaries (Figure 6 and
//! Table 2 slice the same run; Figure 7 and Table 3 likewise).

use crate::runner::{run_scheme, Scheme, SchemeRun, ALL_SCHEMES};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{ArrivalProcess, Deployment, NoiseConfig, SimError};
use dragster_workloads::{word_count, yahoo_benchmark, SquareWave, StepAt, Workload};
use serde::Serialize;

/// Section 6.4: WordCount under a load flip every 200 minutes (20 slots),
/// 1000 minutes (100 slots) total.
pub struct WorkloadChangeRun {
    pub workload: Workload,
    pub slots: usize,
    pub phase_slots: usize,
    pub runs: Vec<SchemeRun>,
}

/// Run the Figure-6 / Table-2 experiment for all three schemes.
///
/// # Errors
/// [`SimError`] if any scheme's run fails.
pub fn workload_change_experiment(seed: u64) -> Result<WorkloadChangeRun, SimError> {
    let w = word_count()?;
    let slots = 100;
    let phase_slots = 20;
    let runs = ALL_SCHEMES
        .iter()
        .map(|&s| {
            let hi = w.high_rate.clone();
            let lo = w.low_rate.clone();
            let mut factory = move || {
                Box::new(SquareWave {
                    high: hi.clone(),
                    low: lo.clone(),
                    half_period_slots: phase_slots,
                }) as Box<dyn ArrivalProcess>
            };
            run_scheme(
                s,
                &w.app,
                &mut factory,
                slots,
                None,
                NoiseConfig::default(),
                seed,
                Deployment::uniform(w.n_operators(), 1),
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WorkloadChangeRun {
        workload: w,
        slots,
        phase_slots,
        runs,
    })
}

/// Per-phase metrics for Table 2.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseMetrics {
    pub scheme: String,
    pub phase: usize,
    pub offered: &'static str,
    /// Minutes from phase start until within 10 % of the phase optimum
    /// (stable for the phase remainder). `None` = never converged.
    pub convergence_minutes: Option<f64>,
    pub processed_tuples: f64,
    pub cost_dollars: f64,
    pub cost_per_billion: f64,
}

/// Slice one scheme's run into the five 200-minute phases of Table 2.
pub fn phase_metrics(run: &SchemeRun, phase_slots: usize) -> Vec<PhaseMetrics> {
    let slot_secs = SimConfig::default().slot_secs;
    let n_phases = run.throughput.len() / phase_slots;
    (0..n_phases)
        .map(|p| {
            let range = p * phase_slots..(p + 1) * phase_slots;
            let conv = run.trace.convergence_minutes(
                &run.optimal_throughput,
                0.1,
                range.clone(),
                slot_secs,
            );
            let tuples: f64 = run
                .trace
                .slots
                .get(range.clone())
                .unwrap_or_default()
                .iter()
                .map(|s| s.processed_tuples)
                .sum();
            let cost: f64 = run
                .trace
                .slots
                .get(range.clone())
                .unwrap_or_default()
                .iter()
                .map(|s| s.cost_dollars)
                .sum();
            PhaseMetrics {
                scheme: run.scheme.clone(),
                phase: p,
                offered: if p % 2 == 0 { "high" } else { "low" },
                convergence_minutes: conv,
                processed_tuples: tuples,
                cost_dollars: cost,
                cost_per_billion: if tuples > 0.0 {
                    cost / (tuples / 1e9)
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

/// Section 6.5: Yahoo benchmark, 600 minutes (60 slots), starting at 75 %
/// of the high rate and scaled up to the full high rate at 300 minutes
/// (slot 30) without notifying the system.
pub struct YahooRun {
    pub workload: Workload,
    pub slots: usize,
    pub step_slot: usize,
    pub runs: Vec<SchemeRun>,
}

/// Run the Figure-7 / Table-3 experiment for all three schemes.
///
/// # Errors
/// [`SimError`] if any scheme's run fails.
pub fn yahoo_experiment(seed: u64) -> Result<YahooRun, SimError> {
    let w = yahoo_benchmark()?;
    let slots = 60;
    let step_slot = 30;
    let runs = ALL_SCHEMES
        .iter()
        .map(|&s| {
            let before: Vec<f64> = w.high_rate.iter().map(|r| r * 0.75).collect();
            let hi = w.high_rate.clone();
            let mut factory = move || {
                Box::new(StepAt {
                    at: step_slot,
                    before: before.clone(),
                    after: hi.clone(),
                }) as Box<dyn ArrivalProcess>
            };
            run_scheme(
                s,
                &w.app,
                &mut factory,
                slots,
                None,
                NoiseConfig::default(),
                seed,
                Deployment::uniform(w.n_operators(), 1),
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(YahooRun {
        workload: w,
        slots,
        step_slot,
        runs,
    })
}

/// Find the Dhalion run among a scheme set (panics if missing — the
/// experiments always include it).
pub fn dhalion_run(runs: &[SchemeRun]) -> &SchemeRun {
    runs.iter()
        .find(|r| r.scheme == Scheme::Dhalion.label())
        .expect("Dhalion is part of every comparison")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_sim::ConstantArrival;

    #[test]
    fn phase_metrics_slice_correctly() {
        // tiny synthetic run: 4 slots, phases of 2
        let w = word_count().unwrap();
        let rate = w.high_rate.clone();
        let mut factory = || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>;
        let run = run_scheme(
            Scheme::Static,
            &w.app,
            &mut factory,
            4,
            None,
            NoiseConfig::none(),
            1,
            Deployment::uniform(2, 5),
        )
        .unwrap();
        let phases = phase_metrics(&run, 2);
        assert_eq!(phases.len(), 2);
        let total: f64 = phases.iter().map(|p| p.processed_tuples).sum();
        assert!((total - run.total_tuples).abs() < 1.0);
        assert_eq!(phases[0].offered, "high");
        assert_eq!(phases[1].offered, "low");
    }
}
