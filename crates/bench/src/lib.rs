//! Shared machinery for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (Section 6).
//!
//! Each binary in `src/bin/` prints the same rows/series the paper reports
//! and writes machine-readable JSON under `results/`. See DESIGN.md's
//! per-experiment index for the mapping.

pub mod chaos;
pub mod experiments;
pub mod report;
pub mod runner;

pub use report::{ascii_heatmap, ascii_series, Table};
pub use runner::{
    make_scaler, run_scheme, write_json, ExperimentOutput, Scheme, SchemeRun, ALL_SCHEMES,
};
