//! Plain-text reporting: ASCII tables, time series and heatmaps so each
//! experiment binary prints something directly comparable to the paper's
//! figures.

/// A simple left-aligned ASCII table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let sep: String = width
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<w$} ", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Render a numeric series as a compact ASCII sparkline block with axis
/// labels (one char per sample, 8 height levels).
pub fn ascii_series(name: &str, series: &[f64], width: usize) -> String {
    if series.is_empty() {
        return format!("{name}: (empty)\n");
    }
    let max = series.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    let min = series.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    let glyphs = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    // Downsample to at most `width` points by bucket-averaging.
    let n = series.len();
    let buckets = width.min(n).max(1);
    let mut line = String::new();
    for b in 0..buckets {
        let lo = b * n / buckets;
        let hi = ((b + 1) * n / buckets).max(lo + 1);
        let avg: f64 = series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let frac = ((avg - min) / (max - min).max(1e-12)).clamp(0.0, 1.0);
        let idx = ((frac * (glyphs.len() as f64 - 1.0)).round()) as usize;
        line.push(glyphs[idx]);
    }
    format!("{name:<28} |{line}|  max={max:.3e}\n")
}

/// Render a 2-D grid of values (e.g. the Figure-4 throughput landscape
/// over Shuffle × Map tasks) as an ASCII heatmap with a marked trajectory.
/// `grid[i][j]` is the value at x=i+1, y=j+1; `path` marks visited cells
/// with the visit order (mod 10).
pub fn ascii_heatmap(grid: &[Vec<f64>], path: &[(usize, usize)]) -> String {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = grid
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let nx = grid.len();
    let ny = grid.first().map_or(0, |r| r.len());
    let mut mark = std::collections::HashMap::new();
    for (k, &(x, y)) in path.iter().enumerate() {
        mark.entry((x, y)).or_insert(k);
    }
    let mut out = String::new();
    out.push_str("   y = Map tasks →  (digits: visit order mod 10, shading: throughput)\n");
    for j in (0..ny).rev() {
        out.push_str(&format!("{:>2} ", j + 1));
        for (i, _) in grid.iter().enumerate().take(nx) {
            if let Some(&k) = mark.get(&(i + 1, j + 1)) {
                out.push_str(&format!("{}", k % 10));
            } else {
                let frac = (grid[i][j] / max).clamp(0.0, 1.0);
                let idx = (frac * (shades.len() as f64 - 1.0)).round() as usize;
                out.push(shades[idx]);
            }
        }
        out.push('\n');
    }
    out.push_str("    ");
    for i in 0..nx {
        out.push_str(&format!("{}", (i + 1) % 10));
    }
    out.push_str("  x = Shuffle tasks →\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["scheme", "minutes"]);
        t.row(vec!["Dhalion".into(), "140".into()]);
        t.row(vec!["Dragster saddle point".into(), "70".into()]);
        let s = t.render();
        assert!(s.contains("Dhalion"));
        assert!(s.contains("Dragster saddle point"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows same width
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_checks_arity() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn series_renders_fixed_width() {
        let s = ascii_series(
            "throughput",
            &(0..100).map(|i| i as f64).collect::<Vec<_>>(),
            40,
        );
        assert!(s.contains("throughput"));
        assert!(s.contains("max="));
    }

    #[test]
    fn series_handles_empty_and_flat() {
        assert!(ascii_series("x", &[], 10).contains("empty"));
        let flat = ascii_series("x", &[5.0; 20], 10);
        assert!(!flat.is_empty());
    }

    #[test]
    fn heatmap_marks_path() {
        let grid = vec![vec![1.0; 10]; 10];
        let s = ascii_heatmap(&grid, &[(1, 1), (5, 5)]);
        assert!(s.contains('0'));
        assert!(s.contains('1'));
        assert!(s.contains("Shuffle"));
    }
}
