//! Scheme construction and experiment execution shared by all binaries.

use dragster_baselines::{Dhalion, DhalionConfig, Ds2, Ds2Config, RandomScaler, StaticScaler};
use dragster_core::{greedy_optimal, Dragster, DragsterConfig, InnerAlgo};
use dragster_sim::fluid::SimConfig;
use dragster_sim::{
    run_experiment, Application, ArrivalProcess, Autoscaler, ClusterConfig, Deployment, FluidSim,
    NoiseConfig, SimError, Trace,
};
use serde::Serialize;

/// The autoscaling schemes under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    Dhalion,
    DragsterSaddle,
    DragsterOgd,
    Ds2,
    Static,
    Random,
}

/// The paper's three compared schemes (Section 6.1), in its plotting order.
pub const ALL_SCHEMES: [Scheme; 3] = [Scheme::Dhalion, Scheme::DragsterSaddle, Scheme::DragsterOgd];

impl Scheme {
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Dhalion => "Dhalion",
            Scheme::DragsterSaddle => "Dragster saddle point",
            Scheme::DragsterOgd => "Dragster online gradient",
            Scheme::Ds2 => "DS2",
            Scheme::Static => "Static",
            Scheme::Random => "Random",
        }
    }
}

/// Instantiate an autoscaler for a topology under an optional pod budget.
pub fn make_scaler(
    scheme: Scheme,
    app: &Application,
    budget_pods: Option<usize>,
    seed: u64,
) -> Box<dyn Autoscaler> {
    match scheme {
        Scheme::Dhalion => Box::new(Dhalion::new(DhalionConfig {
            budget_pods,
            ..Default::default()
        })),
        Scheme::DragsterSaddle => Box::new(Dragster::new(
            app.topology.clone(),
            DragsterConfig {
                budget_pods,
                ..DragsterConfig::saddle_point()
            },
        )),
        Scheme::DragsterOgd => Box::new(Dragster::new(
            app.topology.clone(),
            DragsterConfig {
                budget_pods,
                inner: InnerAlgo::GradientDescent,
                ..DragsterConfig::gradient_descent()
            },
        )),
        Scheme::Ds2 => Box::new(Ds2::new(Ds2Config {
            budget_pods,
            ..Default::default()
        })),
        Scheme::Static => Box::new(StaticScaler),
        Scheme::Random => Box::new(RandomScaler::new(seed, 10, budget_pods)),
    }
}

/// The result of one scheme's run plus derived paper metrics.
#[derive(Clone, Debug, Serialize)]
pub struct SchemeRun {
    pub scheme: String,
    /// Per-slot measured throughput (tuples/s).
    pub throughput: Vec<f64>,
    /// Per-slot deployed-configuration oracle throughput.
    pub ideal_throughput: Vec<f64>,
    /// Per-slot oracle-optimal throughput (same arrival).
    pub optimal_throughput: Vec<f64>,
    /// Per-slot deployments (task vectors).
    pub deployments: Vec<Vec<usize>>,
    pub total_tuples: f64,
    pub total_cost: f64,
    pub cost_per_billion: f64,
    /// Convergence slot index (within-10 %-of-optimal, stable), if reached.
    pub convergence_slot: Option<usize>,
    /// Convergence time in minutes.
    pub convergence_minutes: Option<f64>,
    #[serde(skip)]
    pub trace: Trace,
}

/// Run one scheme for `slots` decision slots and compute the paper
/// metrics. The oracle series is computed per slot from the arrival
/// process (`arrival` is called twice — once for the oracle, once live —
/// so it must be deterministic in `t`).
///
/// # Errors
/// [`SimError`] if the simulator rejects the application, the scheme's
/// policy fails mid-run, or the oracle cannot evaluate a slot.
#[allow(clippy::too_many_arguments)]
pub fn run_scheme(
    scheme: Scheme,
    app: &Application,
    arrival_factory: &mut dyn FnMut() -> Box<dyn ArrivalProcess>,
    slots: usize,
    budget_pods: Option<usize>,
    noise: NoiseConfig,
    seed: u64,
    initial: Deployment,
) -> Result<SchemeRun, SimError> {
    let cluster = ClusterConfig {
        budget_pods,
        ..Default::default()
    };
    let mut sim = FluidSim::new(
        app.clone(),
        cluster,
        SimConfig::default(),
        noise,
        seed,
        initial,
    )?;
    let mut scaler = make_scaler(scheme, app, budget_pods, seed);
    let mut arrival = arrival_factory();
    let trace = run_experiment(&mut sim, scaler.as_mut(), &mut *arrival, slots)?;

    // Oracle series from a fresh copy of the arrival process.
    let mut arrival2 = arrival_factory();
    let rates: Vec<Vec<f64>> = (0..slots).map(|t| arrival2.rates(t)).collect();
    let mut optimal = Vec::with_capacity(rates.len());
    for r in &rates {
        optimal.push(
            greedy_optimal(app, r, 10, budget_pods)
                .map_err(SimError::from)?
                .1,
        );
    }

    let slot_secs = SimConfig::default().slot_secs;
    let convergence_slot = trace.convergence_slot(&optimal, 0.1, 0..slots);
    let convergence_minutes = trace.convergence_minutes(&optimal, 0.1, 0..slots, slot_secs);

    Ok(SchemeRun {
        scheme: scheme.label().into(),
        throughput: trace.slots.iter().map(|s| s.throughput).collect(),
        ideal_throughput: trace.ideal_throughput.clone(),
        optimal_throughput: optimal,
        deployments: trace.deployments.iter().map(|d| d.tasks.clone()).collect(),
        total_tuples: trace.total_processed(),
        total_cost: trace.total_cost(),
        cost_per_billion: trace.cost_per_billion_tuples(),
        convergence_slot,
        convergence_minutes,
        trace,
    })
}

/// Experiment output envelope written to `results/<name>.json`.
#[derive(Serialize)]
pub struct ExperimentOutput<T: Serialize> {
    pub experiment: String,
    pub description: String,
    pub data: T,
}

/// Write an experiment's JSON next to the repo (under `results/`).
pub fn write_json<T: Serialize>(name: &str, description: &str, data: &T) {
    let out = ExperimentOutput {
        experiment: name.to_string(),
        description: description.to_string(),
        data,
    };
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(&out) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_sim::ConstantArrival;
    use dragster_workloads::word_count;

    #[test]
    fn all_schemes_instantiate() {
        let w = word_count().unwrap();
        for s in [
            Scheme::Dhalion,
            Scheme::DragsterSaddle,
            Scheme::DragsterOgd,
            Scheme::Ds2,
            Scheme::Static,
            Scheme::Random,
        ] {
            let sc = make_scaler(s, &w.app, Some(12), 1);
            assert!(!sc.name().is_empty());
        }
    }

    #[test]
    fn run_scheme_produces_consistent_series() {
        let w = word_count().unwrap();
        let rate = w.high_rate.clone();
        let mut factory = || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>;
        let run = run_scheme(
            Scheme::DragsterSaddle,
            &w.app,
            &mut factory,
            8,
            None,
            NoiseConfig::none(),
            1,
            Deployment::uniform(2, 1),
        )
        .unwrap();
        assert_eq!(run.throughput.len(), 8);
        assert_eq!(run.optimal_throughput.len(), 8);
        assert_eq!(run.deployments.len(), 8);
        assert!(run.total_tuples > 0.0);
        assert!(run.total_cost > 0.0);
        assert!(run.cost_per_billion.is_finite());
        // optimal dominates ideal everywhere
        for (o, i) in run
            .optimal_throughput
            .iter()
            .zip(run.ideal_throughput.iter())
        {
            assert!(o + 1e-6 >= *i);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let w = word_count().unwrap();
        let rate = w.high_rate.clone();
        let mut factory = || Box::new(ConstantArrival(rate.clone())) as Box<dyn ArrivalProcess>;
        let a = run_scheme(
            Scheme::Dhalion,
            &w.app,
            &mut factory,
            5,
            None,
            NoiseConfig::default(),
            7,
            Deployment::uniform(2, 1),
        )
        .unwrap();
        let b = run_scheme(
            Scheme::Dhalion,
            &w.app,
            &mut factory,
            5,
            None,
            NoiseConfig::default(),
            7,
            Deployment::uniform(2, 1),
        )
        .unwrap();
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.deployments, b.deployments);
    }
}
