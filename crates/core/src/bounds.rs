//! Theorem-1 bound evaluation: plug a run's constants into the Eq. 19/20
//! expressions so experiments and tests can check the *measured* dynamic
//! fit and regret against the *theoretical* ceiling.
//!
//! ```text
//! Fit_T ≤ M^{2/3} H (1 + H/2ε) + H√T/ε + M √(8 T β_T Γ_T / log(1+σ⁻²))
//! Reg_T ≤ √T (G²/2 + V(y*)) + H (M + (2+MH)/2ε)·Fit_T
//!         + G M √(8 T β_T Γ_T / log(1+σ⁻²))
//! ```
//!
//! All quantities are in *H-normalized* units (capacities divided by the
//! throughput-function upper bound `H`), which is how the proof treats
//! them; callers normalize their measurements the same way.

use dragster_gp::{beta_t, se_gamma_bound};

/// The constants of Theorem 1 for one run.
#[derive(Clone, Copy, Debug)]
pub struct Theorem1Constants {
    /// Number of operators `M`.
    pub m: usize,
    /// Horizon `T` in slots.
    pub t: usize,
    /// Configuration dimension `d` (1 for the task-count-only setting).
    pub d: usize,
    /// Joint configuration-space size `|X|` (for `β_T`).
    pub n_configs: usize,
    /// Slater slack ε as a fraction of `H` (Assumption 1): how much spare
    /// capacity the richest configuration has beyond the peak load.
    pub epsilon: f64,
    /// GP observation-noise variance σ² in normalized units.
    pub sigma2: f64,
    /// Confidence parameter δ ∈ (1, ∞).
    pub delta: f64,
    /// Gradient bound `G` of `|∂f/∂y_i|` (≤ max selectivity product; 1 for
    /// non-amplifying pipelines).
    pub g: f64,
    /// Accumulated optimum variation `V(y*) = Σ‖y*_{t+1} − y*_t‖`
    /// (Assumption 2), in normalized units.
    pub v_star: f64,
}

impl Theorem1Constants {
    /// The GP-UCB term `M √(8 T β_T Γ_T / log(1+σ⁻²))` shared by both
    /// bounds.
    pub fn gp_term(&self) -> f64 {
        let beta = beta_t(self.n_configs.max(1), self.t.max(1), self.delta);
        let gamma = se_gamma_bound(self.t, self.d);
        self.m as f64 * (8.0 * self.t as f64 * beta * gamma / (1.0 + 1.0 / self.sigma2).ln()).sqrt()
    }

    /// The Eq. 19 dynamic-fit ceiling (H-normalized, i.e. with H = 1).
    pub fn fit_bound(&self) -> f64 {
        let m = self.m as f64;
        let t = self.t as f64;
        m.powf(2.0 / 3.0) * (1.0 + 1.0 / (2.0 * self.epsilon))
            + t.sqrt() / self.epsilon
            + self.gp_term()
    }

    /// The Eq. 20 dynamic-regret ceiling (H-normalized), given the
    /// realized fit (pass the `fit_bound()` for the a-priori version).
    pub fn regret_bound(&self, fit: f64) -> f64 {
        let m = self.m as f64;
        let t = self.t as f64;
        t.sqrt() * (self.g * self.g / 2.0 + self.v_star)
            + (m + (2.0 + m) / (2.0 * self.epsilon)) * fit
            + self.g * self.gp_term()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts(t: usize) -> Theorem1Constants {
        Theorem1Constants {
            m: 2,
            t,
            d: 1,
            n_configs: 100,
            epsilon: 0.1,
            sigma2: 0.01,
            delta: 2.0,
            g: 1.0,
            v_star: 1.0,
        }
    }

    #[test]
    fn bounds_are_positive_and_grow_with_t() {
        let b10 = consts(10).fit_bound();
        let b100 = consts(100).fit_bound();
        let b1000 = consts(1000).fit_bound();
        assert!(b10 > 0.0);
        assert!(b100 > b10 && b1000 > b100);
    }

    #[test]
    fn fit_bound_is_sublinear_in_t() {
        // bound/T must shrink as T grows (sub-linearity)
        let r100 = consts(100).fit_bound() / 100.0;
        let r10k = consts(10_000).fit_bound() / 10_000.0;
        assert!(r10k < r100, "{r10k} !< {r100}");
    }

    #[test]
    fn regret_bound_exceeds_gp_term() {
        let c = consts(200);
        let fit = c.fit_bound();
        assert!(c.regret_bound(fit) > c.gp_term());
    }

    #[test]
    fn tighter_slater_slack_raises_the_bound() {
        let loose = Theorem1Constants {
            epsilon: 0.5,
            ..consts(100)
        };
        let tight = Theorem1Constants {
            epsilon: 0.05,
            ..consts(100)
        };
        assert!(tight.fit_bound() > loose.fit_bound());
    }

    #[test]
    fn more_operators_raise_the_bound() {
        let small = consts(100);
        let big = Theorem1Constants {
            m: 6,
            n_configs: 1_000_000,
            ..consts(100)
        };
        assert!(big.fit_bound() > small.fit_bound());
    }

    #[test]
    fn higher_dimension_raises_gamma_term() {
        let d1 = consts(500);
        let d3 = Theorem1Constants {
            d: 3,
            ..consts(500)
        };
        assert!(d3.gp_term() > d1.gp_term());
    }
}
