//! The assembled Dragster controller (Algorithm 2).
//!
//! Per decision slot:
//!
//! 1. **Observe** (line 3): source rates, per-operator offered loads and
//!    the Eq.-8 capacity samples from [`SlotMetrics`].
//! 2. **Dual + primal** (line 4): update the multipliers λ (Eq. 15) with
//!    the observed constraint values, then compute the target capacity
//!    vector `y_t` — either the saddle-point full maximization (Eq. 14) or
//!    one OGD step (Eq. 16).
//! 3. **GP update** (line 5): feed each operator's capacity sample to its
//!    GP (Eq. 17 posterior refresh).
//! 4. **Select + deploy** (line 6): per-operator extended-UCB acquisition
//!    tables, exact budget projection `Π_X`, return the next deployment.

use crate::ogd::OgdState;
use crate::saddle::{SaddleState, TargetSolver};
use crate::ucb::{AcquisitionKind, OperatorGp, UcbConfig};
use crate::DragsterError;
use dragster_dag::learned::{EstimatorSnapshot, HObservation, SelectivityEstimator};
use dragster_dag::{analysis, Topology};
use dragster_sim::json::{self, Json};
use dragster_sim::{Autoscaler, Deployment, SimError, SlotMetrics};

/// Version tag of the exported learner-state layout (bump on change).
const STATE_VERSION: usize = 1;

/// Which level-1 algorithm computes the capacity targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerAlgo {
    /// Eq. 14: full maximization of the last slot's Lagrangian.
    SaddlePoint,
    /// Eq. 16: a single projected gradient step per slot.
    GradientDescent,
}

/// All Dragster hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct DragsterConfig {
    pub inner: InnerAlgo,
    pub ucb: UcbConfig,
    /// Dual step scale γ₀ (Theorem 1 uses γ_t = 1/√t ⇒ γ₀ = 1).
    pub gamma0: f64,
    /// OGD step size as a fraction of the capacity box.
    pub eta: f64,
    /// Multiplier on the capacity target handed to the UCB level —
    /// a little headroom absorbs cloud noise (e.g. 1.05).
    pub target_headroom: f64,
    /// Pod budget `B` of Eq. 9d, if any.
    pub budget_pods: Option<usize>,
    /// Inner-solver iterations (saddle point).
    pub solver_iters: usize,
    /// Theorem-2 mode: ignore the provided throughput-function parameters
    /// and learn the per-operator selectivities online from unsaturated
    /// observations ([`SelectivityEstimator`]). The DAG *structure* is
    /// still taken from the provided topology.
    pub learn_h: bool,
    /// Restrict each slot's reconfiguration to the `k` most-bottlenecked
    /// operators (largest |target − estimated capacity| gap) — the paper's
    /// sequential "identify the bottleneck operator and adjust its
    /// configuration" narrative (Section 3, Figure 1). `None` adjusts all
    /// operators jointly (Eq. 18's joint argmax); the `ablations` bench
    /// compares the two.
    pub max_adjust_per_slot: Option<usize>,
}

impl Default for DragsterConfig {
    fn default() -> Self {
        DragsterConfig {
            inner: InnerAlgo::SaddlePoint,
            ucb: UcbConfig::default(),
            gamma0: 1.0,
            eta: 0.15,
            target_headroom: 1.08,
            budget_pods: None,
            solver_iters: 300,
            learn_h: false,
            max_adjust_per_slot: None,
        }
    }
}

impl DragsterConfig {
    /// Saddle-point variant with defaults.
    pub fn saddle_point() -> DragsterConfig {
        DragsterConfig::default()
    }

    /// Online-gradient-descent variant with defaults.
    pub fn gradient_descent() -> DragsterConfig {
        DragsterConfig {
            inner: InnerAlgo::GradientDescent,
            ..Default::default()
        }
    }
}

/// The Dragster autoscaler. Construct with the application topology (the
/// paper provides the exact throughput function to the controller —
/// Section 6.1 "We provide the exact throughput function and capacity
/// splitting weight") and plug into
/// [`run_experiment`](dragster_sim::run_experiment).
pub struct Dragster {
    topo: Topology,
    /// Theorem-2 online estimator (Some iff `cfg.learn_h`).
    estimator: Option<SelectivityEstimator>,
    cfg: DragsterConfig,
    solver: TargetSolver,
    gps: Vec<OperatorGp>,
    saddle: SaddleState,
    ogd: Option<OgdState>,
    /// Last computed capacity targets (diagnostics).
    last_targets: Vec<f64>,
    /// Last usable constraint values `l_i` — held when an operator's
    /// reading is degraded (chaos-layer dropout/staleness) so one bad
    /// scrape cannot inject a bogus dual step.
    last_l: Vec<f64>,
    /// RNG for the Thompson acquisition (fixed seed: decisions are
    /// deterministic given the same observation stream).
    rng: dragster_sim::Rng,
    t: usize,
    /// Reusable per-decide scratch buffers. Derived state rebuilt from
    /// scratch every slot — deliberately absent from checkpoints (L18
    /// coverage applies to learner state, not working memory), and reused
    /// via `mem::take` so the decide hot path allocates nothing for them
    /// after the first slot (L16).
    scratch: DecideScratch,
}

/// Working memory for [`Dragster::decide`] (see the `scratch` field).
#[derive(Default)]
struct DecideScratch {
    /// Constraint values `l_i` for the dual step.
    l_values: Vec<f64>,
    /// Offered loads in capacity-index order.
    loads: Vec<f64>,
    /// Warm-start vector for the inner solver.
    warm: Vec<f64>,
    /// Per-operator acquisition tables; inner buffers are refilled in
    /// place each slot via `OperatorGp::acquisition_table_into`, so the
    /// extended-UCB path reuses both the outer and inner allocations.
    tables: Vec<Vec<f64>>,
    /// (operator, gap) ranking for sequential-bottleneck mode.
    gaps: Vec<(usize, f64)>,
    /// Dense adjustable-operator mask for sequential-bottleneck mode.
    adjustable: Vec<bool>,
}

impl Dragster {
    pub fn new(topo: Topology, cfg: DragsterConfig) -> Dragster {
        let m = topo.n_operators();
        let gps = (0..m).map(|_| OperatorGp::new(cfg.ucb)).collect();
        let estimator = if cfg.learn_h {
            Some(SelectivityEstimator::new(topo.clone(), 1.0))
        } else {
            None
        };
        Dragster {
            solver: TargetSolver {
                iters: cfg.solver_iters,
                ..Default::default()
            },
            saddle: SaddleState::new(m, cfg.gamma0),
            ogd: None,
            gps,
            last_targets: vec![0.0; m],
            last_l: vec![0.0; m],
            rng: dragster_sim::Rng::new(0x5EED),
            estimator,
            topo,
            cfg,
            t: 0,
            scratch: DecideScratch::default(),
        }
    }

    /// The throughput-function view the controller currently works with:
    /// the provided topology (Theorem 1) or the learned one (Theorem 2).
    ///
    /// # Errors
    /// [`DragsterError::Dag`] if the learned weights cannot be applied to
    /// the DAG structure.
    pub fn working_topology(&self) -> Result<Topology, DragsterError> {
        match &self.estimator {
            Some(est) => Ok(est.materialize()?),
            None => Ok(self.topo.clone()),
        }
    }

    /// Borrow the Theorem-2 estimator (None in exact-h mode).
    pub fn estimator(&self) -> Option<&SelectivityEstimator> {
        self.estimator.as_ref()
    }

    /// The most recent capacity targets `y_t` (diagnostics/reporting).
    pub fn last_targets(&self) -> &[f64] {
        &self.last_targets
    }

    /// Current dual variables λ.
    pub fn lambda(&self) -> &[f64] {
        &self.saddle.lambda
    }

    /// Borrow the per-operator GPs (e.g. to inspect posterior capacity
    /// estimates in reports).
    pub fn operator_gps(&self) -> &[OperatorGp] {
        &self.gps
    }

    /// Operators ranked by current throughput-gradient (the paper's
    /// bottleneck view): computed at the *estimated* achieved capacities.
    ///
    /// # Errors
    /// [`DragsterError::Dag`] if gradient evaluation rejects the inputs.
    pub fn bottleneck_ranking(
        &self,
        source_rates: &[f64],
        current: &Deployment,
    ) -> Result<Vec<(usize, f64)>, DragsterError> {
        let caps: Vec<f64> = self
            .gps
            .iter()
            .enumerate()
            .map(|(i, gp)| {
                let tasks_i = current.tasks.get(i).copied().unwrap_or(1);
                gp.capacity_estimate(tasks_i).max(1e-6)
            })
            .collect();
        Ok(analysis::rank_bottlenecks(&self.topo, source_rates, &caps)?)
    }

    /// The joint configuration-space size `|X| = K^M`, saturating.
    fn joint_space(&self) -> usize {
        let k = self.cfg.ucb.max_tasks;
        let m = crate::num::exponent_u32(self.topo.n_operators());
        k.checked_pow(m).unwrap_or(usize::MAX / 2)
    }

    /// The controller's current *belief* about the application: the known
    /// topology plus per-operator capacity tables from the GP posterior
    /// means (monotone-ized — capacity models are non-decreasing by
    /// assumption). Operators with no data yet fall back to a unit-linear
    /// placeholder, which yields balanced allocations until samples arrive.
    fn estimated_application(
        &self,
        structure: &Topology,
    ) -> Result<dragster_sim::Application, DragsterError> {
        let k = self.cfg.ucb.max_tasks;
        let models = self
            .gps
            .iter()
            .map(|gp| {
                if gp.is_empty() {
                    return dragster_sim::CapacityModel::Linear { per_task: 1.0 };
                }
                let mut levels: Vec<f64> = (1..=k).map(|x| gp.capacity_estimate(x)).collect();
                let mut run_max = 1e-6_f64;
                for l in levels.iter_mut() {
                    run_max = run_max.max(*l);
                    *l = run_max;
                }
                dragster_sim::CapacityModel::Table { levels }
            })
            .collect();
        Ok(dragster_sim::Application::new(structure.clone(), models)?)
    }

    /// Restrict targets to the capacity region achievable within the pod
    /// budget: Eq. 14's domain 𝒴 is the image of the feasible
    /// configuration set (Eq. 9d), which the controller evaluates through
    /// its GP capacity beliefs. Without this, overload targets are
    /// unreachable and the tracking acquisition cannot trade capacity
    /// between operators (the DAG-balancing behaviour of Fig. 4d–f).
    fn cap_targets_to_budget(
        &self,
        working: &Topology,
        targets: &mut [f64],
        rates: &[f64],
        budget: usize,
    ) -> Result<(), DragsterError> {
        let est = self.estimated_application(working)?;
        let (x_star, _) =
            crate::oracle::greedy_optimal(&est, rates, self.cfg.ucb.max_tasks, Some(budget))?;
        let feasible = est.true_capacities(&x_star.tasks);
        for (t, f) in targets.iter_mut().zip(feasible.iter()) {
            *t = t.min(*f);
        }
        Ok(())
    }
}

impl Autoscaler for Dragster {
    fn name(&self) -> String {
        match self.cfg.inner {
            InnerAlgo::SaddlePoint => "Dragster saddle point".into(),
            InnerAlgo::GradientDescent => "Dragster online gradient".into(),
        }
    }

    fn decide(
        &mut self,
        _t: usize,
        metrics: &SlotMetrics,
        current: &Deployment,
    ) -> Result<Deployment, SimError> {
        self.t += 1;
        let m = self.topo.n_operators();
        let rates = &metrics.source_rates;

        // ---- line 3: observe; line 5: GP posterior update (Eq. 17). ----
        let mut l_values = std::mem::take(&mut self.scratch.l_values);
        l_values.clear();
        l_values.resize(m, 0.0);
        for (i, om) in metrics.operators.iter().enumerate() {
            // A degraded reading (dropped/stale/imputed scrape) or a
            // non-finite field must never reach the GP posterior or the
            // selectivity estimator — one poisoned sample corrupts every
            // subsequent decision.
            let clean = !om.degraded
                && om.capacity_sample.is_finite()
                && om.cpu_util.is_finite()
                && om.offered_load.is_finite()
                && om.output_rate.is_finite();
            let tasks_i = current.tasks.get(i).copied().unwrap_or(1);
            if clean && om.output_rate > 1e-9 {
                if let Some(gp) = self.gps.get_mut(i) {
                    gp.observe(tasks_i, om.capacity_sample)?;
                }
            }
            // Constraint value l_i = offered − capacity (Eq. 11), using the
            // observed capacity sample as the capacity estimate. Degraded
            // slots hold the last usable value instead of a bogus dual step.
            let l = om.offered_load - om.capacity_sample;
            let lv = if clean && l.is_finite() {
                l
            } else {
                self.last_l.get(i).copied().unwrap_or(0.0)
            };
            if let Some(slot) = l_values.get_mut(i) {
                *slot = lv;
            }
            // Theorem-2 mode: refine the h estimates with clean
            // observations — skip slots where the operator was saturated
            // (output reflects y_i, not h, per Eq. 4) or draining backlog
            // (output exceeds h(input) while the buffer empties).
            if let Some(est) = self.estimator.as_mut() {
                let draining = om.buffer_tuples > om.input_rate * 10.0;
                if clean
                    && !om.backpressure
                    && om.cpu_util < 0.95
                    && om.output_rate > 1e-9
                    && !draining
                {
                    est.ingest(&HObservation {
                        operator: i,
                        inputs: &om.input_rates,
                        output: om.output_rate,
                    });
                }
            }
        }
        self.last_l.clone_from(&l_values);
        // Borrow the exact topology (Theorem-1 mode) instead of cloning it
        // every slot; only Theorem-2 mode materializes a fresh view.
        let materialized;
        let working: &Topology = match &self.estimator {
            Some(est) => {
                materialized = est.materialize().map_err(DragsterError::from)?;
                &materialized
            }
            None => &self.topo,
        };

        // ---- line 4: dual update (Eq. 15) + target capacities. ----
        self.saddle.dual_update(&l_values);
        self.scratch.l_values = l_values;
        let h_bound = analysis::throughput_upper_bound(working, rates)?;
        let y_max = (1.5 * h_bound).max(1e-6);
        // Warm-start vectors come straight from observations; scrub any
        // non-finite entries (unsanitized fault injection) so the solvers
        // never iterate from NaN.
        let finite_sample = |om: &dragster_sim::OperatorMetrics| {
            let c = om.capacity_sample;
            if c.is_finite() && c >= 0.0 {
                c
            } else {
                0.0
            }
        };
        let mut loads = std::mem::take(&mut self.scratch.loads);
        loads.clear();
        loads.extend(metrics.operators.iter().map(|o| o.offered_load));
        let mut targets = match self.cfg.inner {
            InnerAlgo::SaddlePoint => {
                let mut warm = std::mem::take(&mut self.scratch.warm);
                warm.clear();
                if self.last_targets.iter().all(|&y| y == 0.0) {
                    warm.extend(metrics.operators.iter().map(finite_sample));
                } else {
                    warm.extend_from_slice(&self.last_targets);
                }
                let solved =
                    self.solver
                        .solve(working, rates, &loads, &self.saddle.lambda, &warm, y_max);
                self.scratch.warm = warm;
                solved?
            }
            InnerAlgo::GradientDescent => {
                let eta = self.cfg.eta;
                let ogd = self.ogd.get_or_insert_with(|| {
                    // One-time cold start: the OGD iterate is owned learner
                    // state, so this collect happens once per run.
                    OgdState::new(metrics.operators.iter().map(finite_sample).collect(), eta)
                });
                ogd.step(
                    &self.solver,
                    working,
                    rates,
                    &loads,
                    &self.saddle.lambda,
                    y_max,
                )?
            }
        };
        self.scratch.loads = loads;
        if let Some(b) = self.cfg.budget_pods {
            self.cap_targets_to_budget(working, &mut targets, rates, b.max(m))?;
        }
        self.last_targets.clone_from(&targets);

        // ---- line 6: extended GP-UCB selection (Eq. 18) + projection. ----
        let beta = self.cfg.ucb.beta(self.joint_space(), self.t);
        let rng = &mut self.rng;
        let mut tables = std::mem::take(&mut self.scratch.tables);
        if tables.len() < m {
            tables.resize_with(m, Vec::new);
        }
        if tables.len() > m {
            tables.truncate(m);
        }
        for ((gp, raw_target), table) in self.gps.iter().zip(&targets).zip(tables.iter_mut()) {
            let target = raw_target * self.cfg.target_headroom;
            match self.cfg.ucb.acquisition {
                AcquisitionKind::ExtendedUcb => gp.acquisition_table_into(target, beta, table),
                AcquisitionKind::Thompson => {
                    *table = gp.thompson_table(target, || rng.gaussian())?
                }
            }
        }
        let budget = self
            .cfg
            .budget_pods
            .unwrap_or(m * self.cfg.ucb.max_tasks)
            .max(m);
        let mut tasks = crate::projection::project_acquisition(&tables, budget);
        self.scratch.tables = tables;
        // Sequential-bottleneck mode: freeze all but the k operators whose
        // capacity targets are furthest from their current estimates.
        if let Some(k) = self.cfg.max_adjust_per_slot {
            let mut gaps = std::mem::take(&mut self.scratch.gaps);
            gaps.clear();
            gaps.extend((0..m).map(|i| {
                let (cur, scale) = match self.gps.get(i) {
                    Some(gp) => {
                        let tasks_i = current.tasks.get(i).copied().unwrap_or(1);
                        (gp.capacity_estimate(tasks_i), gp.scale().max(1e-9))
                    }
                    None => (0.0, 1.0),
                };
                let target = targets.get(i).copied().unwrap_or(cur);
                (i, (target - cur).abs() / scale)
            }));
            gaps.sort_by(|a, b| b.1.total_cmp(&a.1));
            // boolean mask instead of a hash set: indices are dense in
            // 0..m, and iteration order stays deterministic
            let mut adjustable = std::mem::take(&mut self.scratch.adjustable);
            adjustable.clear();
            adjustable.resize(m, false);
            for &(i, _) in gaps.iter().take(k) {
                if let Some(a) = adjustable.get_mut(i) {
                    *a = true;
                }
            }
            for (i, t) in tasks.iter_mut().enumerate() {
                if !adjustable.get(i).copied().unwrap_or(false) {
                    *t = current.tasks.get(i).copied().unwrap_or(*t);
                }
            }
            self.scratch.gaps = gaps;
            self.scratch.adjustable = adjustable;
            // freezing can re-violate the budget; project the frozen plan
            let d = Deployment { tasks };
            return Ok(dragster_sim::harness::project_to_budget(
                d,
                self.cfg.budget_pods,
            ));
        }
        Ok(Deployment { tasks })
    }

    /// Checkpoint every piece of learner state: GP observation histories
    /// (posteriors are rebuilt by deterministic replay), dual variables,
    /// OGD iterate, Theorem-2 estimator, the Thompson RNG position, and
    /// the diagnostics the next decision reads (`last_targets`,
    /// `last_l`). Floats travel as bit-exact hex so a restored controller
    /// is *bit-identical*, not approximately equal.
    fn export_state(&self) -> Option<Json> {
        let (s, spare) = self.rng.save_state();
        let rng = Json::Obj(vec![
            (
                "s".to_string(),
                Json::Arr(s.iter().map(|&w| Json::Str(json::u64_to_hex(w))).collect()),
            ),
            ("spare".to_string(), spare.map_or(Json::Null, json::bits)),
        ]);
        let saddle = Json::Obj(vec![
            ("lambda".to_string(), json::bits_arr(&self.saddle.lambda)),
            ("gamma0".to_string(), json::bits(self.saddle.gamma0)),
            ("t".to_string(), json::num(self.saddle.t())),
        ]);
        let ogd = match &self.ogd {
            Some(o) => Json::Obj(vec![
                ("y".to_string(), json::bits_arr(&o.y)),
                ("eta".to_string(), json::bits(o.eta)),
                ("pull_rate".to_string(), json::bits(o.pull_rate)),
            ]),
            None => Json::Null,
        };
        let gps = Json::Arr(
            self.gps
                .iter()
                .map(|gp| {
                    Json::Arr(
                        gp.history()
                            .iter()
                            .map(|&(tasks, cap)| Json::Arr(vec![json::num(tasks), json::bits(cap)]))
                            .collect(),
                    )
                })
                .collect(),
        );
        let estimator = match &self.estimator {
            Some(est) => {
                let snap = est.snapshot();
                Json::Obj(vec![
                    (
                        "weights".to_string(),
                        Json::Arr(snap.weights.iter().map(|w| json::bits_arr(w)).collect()),
                    ),
                    (
                        "p_mats".to_string(),
                        Json::Arr(snap.p_mats.iter().map(|p| json::bits_arr(p)).collect()),
                    ),
                    (
                        "n_obs".to_string(),
                        Json::Arr(snap.n_obs.iter().map(|&n| json::num(n)).collect()),
                    ),
                ])
            }
            None => Json::Null,
        };
        Some(Json::Obj(vec![
            ("state_version".to_string(), json::num(STATE_VERSION)),
            ("t".to_string(), json::num(self.t)),
            (
                "last_targets".to_string(),
                json::bits_arr(&self.last_targets),
            ),
            ("last_l".to_string(), json::bits_arr(&self.last_l)),
            ("saddle".to_string(), saddle),
            ("ogd".to_string(), ogd),
            ("rng".to_string(), rng),
            ("gps".to_string(), gps),
            ("estimator".to_string(), estimator),
        ]))
    }

    /// Rebuild the full learner state from [`Dragster::export_state`]'s
    /// layout. Everything is validated and staged in locals before any
    /// field of `self` is touched, so a failed import leaves the
    /// controller unchanged (the recovery harness then degrades).
    fn import_state(&mut self, state: &Json) -> Result<(), SimError> {
        let scheme = self.name();
        let fail = |reason: String| SimError::Policy {
            scheme: scheme.clone(),
            reason,
        };
        let field = |k: &str| fail(format!("checkpoint state: missing/invalid `{k}`"));
        if state.get("state_version").and_then(Json::as_usize) != Some(STATE_VERSION) {
            return Err(fail("checkpoint state: unsupported version".to_string()));
        }
        let m = self.topo.n_operators();
        let t = state
            .get("t")
            .and_then(Json::as_usize)
            .ok_or_else(|| field("t"))?;
        let last_targets = state
            .get("last_targets")
            .and_then(json::bits_vec)
            .ok_or_else(|| field("last_targets"))?;
        let last_l = state
            .get("last_l")
            .and_then(json::bits_vec)
            .ok_or_else(|| field("last_l"))?;
        let saddle_j = state.get("saddle").ok_or_else(|| field("saddle"))?;
        let lambda = saddle_j
            .get("lambda")
            .and_then(json::bits_vec)
            .ok_or_else(|| field("saddle.lambda"))?;
        let gamma0 = saddle_j
            .get("gamma0")
            .and_then(Json::as_f64_bits)
            .ok_or_else(|| field("saddle.gamma0"))?;
        let saddle_t = saddle_j
            .get("t")
            .and_then(Json::as_usize)
            .ok_or_else(|| field("saddle.t"))?;
        if last_targets.len() != m || last_l.len() != m || lambda.len() != m {
            return Err(fail(format!(
                "checkpoint state: vector arity mismatch (topology has {m} operators)"
            )));
        }
        let ogd = match state.get("ogd") {
            None | Some(Json::Null) => None,
            Some(o) => Some(OgdState {
                y: o.get("y")
                    .and_then(json::bits_vec)
                    .ok_or_else(|| field("ogd.y"))?,
                eta: o
                    .get("eta")
                    .and_then(Json::as_f64_bits)
                    .ok_or_else(|| field("ogd.eta"))?,
                pull_rate: o
                    .get("pull_rate")
                    .and_then(Json::as_f64_bits)
                    .ok_or_else(|| field("ogd.pull_rate"))?,
            }),
        };
        let rng_j = state.get("rng").ok_or_else(|| field("rng"))?;
        let words = rng_j
            .get("s")
            .and_then(Json::as_arr)
            .ok_or_else(|| field("rng.s"))?;
        if words.len() != 4 {
            return Err(field("rng.s"));
        }
        let mut s = [0u64; 4];
        for (slot, w) in s.iter_mut().zip(words.iter()) {
            *slot = w
                .as_str()
                .and_then(json::u64_from_hex)
                .ok_or_else(|| field("rng.s"))?;
        }
        let spare = match rng_j.get("spare") {
            None | Some(Json::Null) => None,
            Some(v) => Some(Json::as_f64_bits(v).ok_or_else(|| field("rng.spare"))?),
        };
        let gps_j = state
            .get("gps")
            .and_then(Json::as_arr)
            .ok_or_else(|| field("gps"))?;
        if gps_j.len() != m {
            return Err(fail(format!(
                "checkpoint state: {} GP histories for {m} operators",
                gps_j.len()
            )));
        }
        let mut gps = Vec::with_capacity(m);
        for hist in gps_j {
            let mut gp = OperatorGp::new(self.cfg.ucb);
            let entries = Json::as_arr(hist).ok_or_else(|| field("gps[]"))?;
            for entry in entries {
                let pair = Json::as_arr(entry).ok_or_else(|| field("gps[][]"))?;
                let tasks = pair
                    .first()
                    .and_then(Json::as_usize)
                    .ok_or_else(|| field("gps[][].tasks"))?;
                let cap = pair
                    .get(1)
                    .and_then(Json::as_f64_bits)
                    .ok_or_else(|| field("gps[][].capacity"))?;
                gp.observe(tasks, cap)
                    .map_err(|e| fail(format!("GP history replay failed: {e}")))?;
            }
            gps.push(gp);
        }
        let estimator = match (self.cfg.learn_h, state.get("estimator")) {
            (false, None | Some(Json::Null)) => None,
            (true, Some(e @ Json::Obj(_))) => {
                let bits_mat = |k: &str| -> Result<Vec<Vec<f64>>, SimError> {
                    let label = format!("estimator.{k}");
                    e.get(k)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| field(&label))?
                        .iter()
                        .map(|row| json::bits_vec(row).ok_or_else(|| field(&label)))
                        .collect()
                };
                let snap = EstimatorSnapshot {
                    weights: bits_mat("weights")?,
                    p_mats: bits_mat("p_mats")?,
                    n_obs: e
                        .get("n_obs")
                        .and_then(json::usize_vec)
                        .ok_or_else(|| field("estimator.n_obs"))?,
                };
                let mut est = SelectivityEstimator::new(self.topo.clone(), 1.0);
                est.restore(snap)
                    .map_err(|err| fail(format!("estimator restore failed: {err}")))?;
                Some(est)
            }
            _ => {
                return Err(fail(
                    "checkpoint state: estimator presence disagrees with learn_h mode".to_string(),
                ))
            }
        };
        // Everything validated — commit atomically.
        self.t = t;
        self.last_targets = last_targets;
        self.last_l = last_l;
        self.saddle = SaddleState::restore(lambda, gamma0, saddle_t);
        self.ogd = ogd;
        self.rng = dragster_sim::Rng::restore_state(s, spare);
        self.gps = gps;
        self.estimator = estimator;
        Ok(())
    }

    /// Cold start: identical to a freshly constructed controller with the
    /// same topology and configuration (the degraded-fallback path).
    fn reset_state(&mut self) {
        *self = Dragster::new(self.topo.clone(), self.cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_sim::{
        run_experiment, Application, CapacityModel, ClusterConfig, ConstantArrival, FluidSim,
        NoiseConfig,
    };

    fn wordcount_app() -> Application {
        let topo = dragster_dag::TopologyBuilder::new()
            .source("src")
            .operator("map")
            .operator("shuffle")
            .sink("out")
            .edge("src", "map")
            .edge("map", "shuffle")
            .edge("shuffle", "out")
            .build()
            .unwrap();
        Application::new(
            topo,
            vec![
                CapacityModel::Contended {
                    per_task: 120.0,
                    contention: 0.04,
                },
                CapacityModel::Contended {
                    per_task: 80.0,
                    contention: 0.04,
                },
            ],
        )
        .unwrap()
    }

    fn make_sim(app: Application, budget: Option<usize>, seed: u64) -> FluidSim {
        FluidSim::new(
            app,
            ClusterConfig {
                budget_pods: budget,
                ..Default::default()
            },
            dragster_sim::fluid::SimConfig::default(),
            NoiseConfig::default(),
            seed,
            Deployment::uniform(2, 1),
        )
        .unwrap()
    }

    #[test]
    fn names_differ_by_variant() {
        let app = wordcount_app();
        let d1 = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let d2 = Dragster::new(app.topology.clone(), DragsterConfig::gradient_descent());
        assert_eq!(d1.name(), "Dragster saddle point");
        assert_eq!(d2.name(), "Dragster online gradient");
    }

    #[test]
    fn converges_near_optimal_without_budget() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 7);
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let mut arr = ConstantArrival(vec![400.0]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 25).unwrap();
        let (_, opt) = crate::oracle::greedy_optimal(&app, &[400.0], 10, None).unwrap();
        // the last slots must run within 10 % of optimal
        let tail = trace.ideal_throughput[20..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            tail >= 0.9 * opt,
            "failed to converge: tail ideal {tail} vs opt {opt}"
        );
    }

    #[test]
    fn converges_under_budget_and_respects_it() {
        let app = wordcount_app();
        let budget = 8;
        let mut sim = make_sim(app.clone(), Some(budget), 3);
        let cfg = DragsterConfig {
            budget_pods: Some(budget),
            ..DragsterConfig::saddle_point()
        };
        let mut scaler = Dragster::new(app.topology.clone(), cfg);
        let mut arr = ConstantArrival(vec![2000.0]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 25).unwrap();
        for d in &trace.deployments {
            assert!(d.total_pods() <= budget, "budget violated: {d}");
        }
        let (_, opt) = crate::oracle::greedy_optimal(&app, &[2000.0], 10, Some(budget)).unwrap();
        let tail = trace.ideal_throughput[20..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(tail >= 0.88 * opt, "tail {tail} vs budgeted opt {opt}");
    }

    #[test]
    fn scales_down_when_load_drops() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 11);
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let mut arr = |t: usize| vec![if t < 15 { 800.0 } else { 150.0 }];
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 30).unwrap();
        let pods_high = trace.deployments[14].total_pods();
        let pods_low = trace.deployments[29].total_pods();
        assert!(
            pods_low < pods_high,
            "no scale-down: {pods_high} → {pods_low}"
        );
    }

    #[test]
    fn gradient_descent_variant_also_converges() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 5);
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::gradient_descent());
        let mut arr = ConstantArrival(vec![400.0]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 35).unwrap();
        let (_, opt) = crate::oracle::greedy_optimal(&app, &[400.0], 10, None).unwrap();
        let tail = trace.ideal_throughput[30..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(tail >= 0.9 * opt, "OGD tail {tail} vs opt {opt}");
    }

    #[test]
    fn working_topology_is_identity_in_exact_mode() {
        let app = wordcount_app();
        let d = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let w = d.working_topology().unwrap();
        // same throughput function as the provided topology
        let f1 = dragster_dag::throughput(&app.topology, &[100.0], &[50.0, 50.0]).unwrap();
        let f2 = dragster_dag::throughput(&w, &[100.0], &[50.0, 50.0]).unwrap();
        assert_eq!(f1, f2);
        assert!(d.estimator().is_none());
    }

    #[test]
    fn learn_h_mode_starts_pessimistic_then_learns() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 13);
        let cfg = DragsterConfig {
            learn_h: true,
            ..DragsterConfig::saddle_point()
        };
        let mut scaler = Dragster::new(app.topology.clone(), cfg);
        let mut arr = ConstantArrival(vec![400.0]);
        run_experiment(&mut sim, &mut scaler, &mut arr, 25).unwrap();
        let est = scaler.estimator().expect("learn_h");
        // WordCount is pass-through (selectivity 1): learned ≈ 1
        let err = est.max_relative_error(&app.topology);
        assert!(err < 0.1, "h error {err}, weights {:?}", est.weights());
    }

    #[test]
    fn thompson_variant_still_respects_budget() {
        let app = wordcount_app();
        let budget = 8;
        let mut sim = make_sim(app.clone(), Some(budget), 17);
        let cfg = DragsterConfig {
            budget_pods: Some(budget),
            ucb: crate::ucb::UcbConfig {
                acquisition: crate::ucb::AcquisitionKind::Thompson,
                ..Default::default()
            },
            ..DragsterConfig::saddle_point()
        };
        let mut scaler = Dragster::new(app.topology.clone(), cfg);
        let mut arr = ConstantArrival(vec![2000.0]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 10).unwrap();
        for d in &trace.deployments {
            assert!(d.total_pods() <= budget);
        }
    }

    #[test]
    fn sequential_bottleneck_changes_at_most_k_operators() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 19);
        let cfg = DragsterConfig {
            max_adjust_per_slot: Some(1),
            ..DragsterConfig::saddle_point()
        };
        let mut scaler = Dragster::new(app.topology.clone(), cfg);
        let mut arr = ConstantArrival(vec![400.0]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 12).unwrap();
        for pair in trace.deployments.windows(2) {
            let changed = pair[0]
                .tasks
                .iter()
                .zip(pair[1].tasks.iter())
                .filter(|(a, b)| a != b)
                .count();
            assert!(changed <= 1, "{:?} -> {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn degraded_nan_metrics_do_not_poison_decisions() {
        use dragster_sim::{OperatorMetrics, SlotMetrics};
        let app = wordcount_app();
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let nan_op = |name: &str| OperatorMetrics {
            name: name.into(),
            tasks: 1,
            input_rate: f64::NAN,
            input_rates: vec![f64::NAN],
            output_rate: f64::NAN,
            offered_load: f64::NAN,
            cpu_util: f64::NAN,
            capacity_sample: f64::NAN,
            buffer_tuples: 0.0,
            latency_estimate_secs: 0.0,
            backpressure: false,
            degraded: true,
        };
        let metrics = SlotMetrics {
            t: 0,
            sim_time_secs: 600.0,
            throughput: 0.0,
            processed_tuples: 0.0,
            dropped_tuples: 0.0,
            cost_dollars: 0.05,
            pods: 2,
            source_rates: vec![400.0],
            reconfigured: false,
            pause_secs: 0.0,
            operators: vec![nan_op("map"), nan_op("shuffle")],
        };
        let cur = Deployment::uniform(2, 1);
        let d = scaler.decide(0, &metrics, &cur).unwrap();
        assert!(d.tasks.iter().all(|&t| t >= 1));
        // no NaN sample reached the GPs
        assert!(scaler.operator_gps().iter().all(|gp| gp.is_empty()));
        assert!(scaler.last_targets().iter().all(|y| y.is_finite()));
        assert!(scaler.lambda().iter().all(|l| l.is_finite()));
    }

    #[test]
    fn converges_despite_metric_dropouts() {
        use dragster_sim::faults::{FaultPlan, FaultRates};
        let app = wordcount_app();
        let plan = FaultPlan {
            scripted: vec![],
            rates: FaultRates {
                metric_dropout_prob: 0.2,
                metric_stale_prob: 0.1,
                ..Default::default()
            },
        };
        let mut sim = make_sim(app.clone(), None, 7).with_faults(plan);
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let mut arr = ConstantArrival(vec![400.0]);
        let trace = run_experiment(&mut sim, &mut scaler, &mut arr, 30).unwrap();
        let (_, opt) = crate::oracle::greedy_optimal(&app, &[400.0], 10, None).unwrap();
        let tail = trace.ideal_throughput[25..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            tail >= 0.85 * opt,
            "failed to converge under dropouts: tail {tail} vs opt {opt}"
        );
    }

    /// Export → import into a fresh controller must reproduce the exact
    /// decision stream: decisions depend on GP posteriors, duals, RNG
    /// position, and diagnostics, so this exercises every exported field.
    #[test]
    fn exported_state_restores_bit_identical_decisions() {
        for cfg in [
            DragsterConfig::saddle_point(),
            DragsterConfig::gradient_descent(),
            DragsterConfig {
                learn_h: true,
                ..DragsterConfig::saddle_point()
            },
            DragsterConfig {
                ucb: crate::ucb::UcbConfig {
                    acquisition: crate::ucb::AcquisitionKind::Thompson,
                    ..Default::default()
                },
                ..DragsterConfig::saddle_point()
            },
        ] {
            let app = wordcount_app();
            let mut sim = make_sim(app.clone(), None, 23);
            let mut original = Dragster::new(app.topology.clone(), cfg);
            let mut arr = ConstantArrival(vec![400.0]);
            run_experiment(&mut sim, &mut original, &mut arr, 8).unwrap();
            let state = original.export_state().expect("dragster exports state");

            let mut restored = Dragster::new(app.topology.clone(), cfg);
            restored.import_state(&state).expect("import succeeds");

            // Both controllers now see the same future metric stream.
            let metrics = sim.run_slot(&[400.0]);
            let cur = sim.deployment().clone();
            let a = original.decide(8, &metrics, &cur).unwrap();
            let b = restored.decide(8, &metrics, &cur).unwrap();
            assert_eq!(a, b, "restored decision diverged");
            assert_eq!(original.last_targets(), restored.last_targets());
            assert_eq!(original.lambda(), restored.lambda());
        }
    }

    #[test]
    fn import_rejects_mismatched_shapes() {
        let app = wordcount_app();
        let d = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let state = d.export_state().unwrap();
        // A 3-operator chain cannot import a 2-operator checkpoint.
        let wide = dragster_dag::TopologyBuilder::new()
            .source("s")
            .operator("a")
            .operator("b")
            .operator("c")
            .sink("k")
            .edge("s", "a")
            .edge("a", "b")
            .edge("b", "c")
            .edge("c", "k")
            .build()
            .unwrap();
        let mut other = Dragster::new(wide, DragsterConfig::saddle_point());
        assert!(other.import_state(&state).is_err());
        // learn_h mismatch is rejected too.
        let mut learner = Dragster::new(
            app.topology.clone(),
            DragsterConfig {
                learn_h: true,
                ..DragsterConfig::saddle_point()
            },
        );
        assert!(learner.import_state(&state).is_err());
    }

    #[test]
    fn reset_state_matches_fresh_controller() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 29);
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let mut arr = ConstantArrival(vec![400.0]);
        run_experiment(&mut sim, &mut scaler, &mut arr, 6).unwrap();
        assert!(!scaler.operator_gps()[0].is_empty());
        scaler.reset_state();
        assert!(scaler.operator_gps().iter().all(|gp| gp.is_empty()));
        assert!(scaler.lambda().iter().all(|&l| l == 0.0));
        let fresh = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        assert_eq!(
            scaler.export_state().unwrap().render(),
            fresh.export_state().unwrap().render()
        );
    }

    #[test]
    fn diagnostics_are_exposed() {
        let app = wordcount_app();
        let mut sim = make_sim(app.clone(), None, 2);
        let mut scaler = Dragster::new(app.topology.clone(), DragsterConfig::saddle_point());
        let mut arr = ConstantArrival(vec![400.0]);
        run_experiment(&mut sim, &mut scaler, &mut arr, 3).unwrap();
        assert_eq!(scaler.last_targets().len(), 2);
        assert!(scaler.last_targets().iter().all(|&y| y >= 0.0));
        assert_eq!(scaler.lambda().len(), 2);
        assert_eq!(scaler.operator_gps().len(), 2);
        assert!(!scaler.operator_gps()[0].is_empty());
        let ranking = scaler
            .bottleneck_ranking(&[400.0], sim.deployment())
            .unwrap();
        assert_eq!(ranking.len(), 2);
    }
}
