//! The controller-level error type.
//!
//! Every fallible step of a Dragster decision slot — flow propagation on
//! the working topology, GP posterior updates, oracle evaluation through
//! the simulator's application model — reports a structured
//! [`DragsterError`] instead of panicking. The experiment harness speaks
//! [`SimError`], so `DragsterError` converts into it (an autoscaler
//! failure is a policy failure from the harness's point of view).

use dragster_dag::DagError;
use dragster_gp::GpError;
use dragster_sim::SimError;
use std::fmt;

/// Errors produced by the Dragster controller and its oracle/solver
/// components.
#[derive(Clone, Debug, PartialEq)]
pub enum DragsterError {
    /// Flow propagation or topology analysis failed.
    Dag(DagError),
    /// A Gaussian-process update or posterior draw failed.
    Gp(GpError),
    /// Application construction or simulator evaluation failed.
    Sim(SimError),
}

impl fmt::Display for DragsterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DragsterError::Dag(e) => write!(f, "topology error: {e}"),
            DragsterError::Gp(e) => write!(f, "GP error: {e}"),
            DragsterError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for DragsterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DragsterError::Dag(e) => Some(e),
            DragsterError::Gp(e) => Some(e),
            DragsterError::Sim(e) => Some(e),
        }
    }
}

impl From<DagError> for DragsterError {
    fn from(e: DagError) -> DragsterError {
        DragsterError::Dag(e)
    }
}

impl From<GpError> for DragsterError {
    fn from(e: GpError) -> DragsterError {
        DragsterError::Gp(e)
    }
}

impl From<SimError> for DragsterError {
    fn from(e: SimError) -> DragsterError {
        DragsterError::Sim(e)
    }
}

/// The harness runs autoscalers through [`SimError`]; a controller error
/// surfaces there as a structural DAG error or a policy failure.
impl From<DragsterError> for SimError {
    fn from(e: DragsterError) -> SimError {
        match e {
            DragsterError::Dag(d) => SimError::Dag(d),
            DragsterError::Sim(s) => s,
            DragsterError::Gp(g) => SimError::Policy {
                scheme: "dragster".into(),
                reason: g.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_into_sim_error() {
        let e: DragsterError = DagError::UnreachableSink.into();
        assert!(e.to_string().contains("sink"));
        let s: SimError = e.into();
        assert_eq!(s, SimError::Dag(DagError::UnreachableSink));

        let e: DragsterError = SimError::DeploymentArity {
            expected: 2,
            got: 3,
        }
        .into();
        let s: SimError = e.into();
        assert!(matches!(s, SimError::DeploymentArity { .. }));
    }

    #[test]
    fn gp_errors_become_policy_failures() {
        let g = GpError::NotPositiveDefinite { pivot: 4 };
        let e: DragsterError = g.into();
        let s: SimError = e.into();
        match s {
            SimError::Policy { scheme, reason } => {
                assert_eq!(scheme, "dragster");
                assert!(reason.contains("pivot 4"), "{reason}");
            }
            other => panic!("expected Policy, got {other:?}"),
        }
    }
}
