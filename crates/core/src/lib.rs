//! The Dragster controller (Sections 4–5 of the paper).
//!
//! Dragster is a *two-level* online optimization scheme:
//!
//! 1. **Which capacities do we need?** An online optimization algorithm over
//!    the per-slot Lagrangian `L_t(y, λ) = f_t(y) − Σ_i λ_i l_i(y_i)`
//!    (Eq. 13) tracks the target service-capacity vector `y_t`:
//!      * [`saddle`] — the online saddle point algorithm (Eq. 14–15):
//!        `y_t = argmax_y L_{t−1}(y, λ_{t−1})`, dual ascent on `λ`;
//!      * [`ogd`] — the online gradient descent variant (Eq. 16): one
//!        gradient step per slot.
//!
//!    Operators whose targets move are the *bottleneck operators*
//!    (Section 4.2.1); gradients come from [`dragster_autodiff`] through
//!    [`dragster_dag::throughput_grad`].
//!
//! 2. **Which configuration achieves them?** Per-operator Gaussian-process
//!    models of the capacity function `y_i(x_i)` (Eq. 7), updated with the
//!    noisy Eq.-8 samples, drive the **extended GP-UCB** acquisition of
//!    Eq. 18 / Remark 1:
//!    `x_t = Π_X [argmax_x −|μ_{t−1}(x) − y_t| + β_{t−1} σ²_{t−1}(x)]`,
//!    tracking the target instead of blindly maximizing — "just enough
//!    capacity to handle the incoming tuples". [`ucb`] implements the
//!    acquisition, [`projection`] the budget projection `Π_X`.
//!
//! [`controller`] assembles both levels into an
//! [`Autoscaler`](dragster_sim::Autoscaler) (Algorithm 2). [`oracle`]
//! computes the clairvoyant optimum `y*_t` used by [`regret`] to measure
//! the dynamic regret (Eq. 10) and dynamic fit (Eq. 12) that Theorem 1
//! bounds.

pub mod bounds;
pub mod controller;
pub mod error;
pub mod num;
pub mod ogd;
pub mod oracle;
pub mod projection;
pub mod regret;
pub mod saddle;
pub mod ucb;

pub use bounds::Theorem1Constants;
pub use controller::{Dragster, DragsterConfig, InnerAlgo};
pub use error::DragsterError;
pub use num::{argmax, argmin};
pub use oracle::{exhaustive_optimal, greedy_optimal};
pub use projection::project_acquisition;
pub use regret::RegretTracker;
pub use saddle::{SaddleState, TargetSolver};
pub use ucb::{AcquisitionKind, OperatorGp, UcbConfig};
