//! NaN-safe numeric helpers shared by the controller, the projection, and
//! the baseline scalers.
//!
//! `f64` is not `Ord`, and the `partial_cmp(..).unwrap()` idiom panics the
//! moment a NaN sneaks into a metric stream. Every argmax/argmin over
//! floating-point scores in this workspace goes through [`argmax`] /
//! [`argmin`] instead: `f64::total_cmp` is a total order (NaN sorts above
//! +∞), so selection is deterministic for any input, and ties break toward
//! the lowest index.

use std::cmp::Ordering;

/// Index of the largest value under `f64::total_cmp`; ties (exact equality
/// under the total order) break toward the lowest index. `None` on an
/// empty slice.
pub fn argmax(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, b)) if v.total_cmp(&b) != Ordering::Greater => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the smallest value under `f64::total_cmp`; ties break toward
/// the lowest index. `None` on an empty slice.
pub fn argmin(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, b)) if v.total_cmp(&b) != Ordering::Less => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// A `usize` exponent clamped into `u32` for `checked_pow`. Saturates at
/// `u32::MAX`, where any base ≥ 2 overflows `checked_pow` anyway.
pub fn exponent_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest_lowest_index_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[-5.0]), Some(0));
    }

    #[test]
    fn argmin_picks_smallest_lowest_index_on_ties() {
        assert_eq!(argmin(&[4.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn nan_never_panics_and_sorts_above_infinity() {
        // total_cmp: NaN > +inf, so argmax lands on the NaN instead of
        // panicking — callers get a deterministic index for any input.
        let v = [1.0, f64::NAN, f64::INFINITY];
        assert_eq!(argmax(&v), Some(1));
        assert_eq!(argmin(&v), Some(0));
        // negative NaN sorts below -inf
        let w = [f64::NEG_INFINITY, -f64::NAN];
        assert_eq!(argmin(&w), Some(1));
    }

    #[test]
    fn signed_zeros_are_ordered_not_equal() {
        assert_eq!(argmax(&[-0.0, 0.0]), Some(1));
        assert_eq!(argmin(&[0.0, -0.0]), Some(1));
    }

    #[test]
    fn exponent_saturates() {
        assert_eq!(exponent_u32(7), 7);
        assert_eq!(exponent_u32(usize::MAX), u32::MAX);
    }
}
