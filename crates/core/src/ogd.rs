//! Level 1b — the online gradient descent variant (Eq. 16).
//!
//! Instead of fully maximizing the last slot's Lagrangian, OGD takes a
//! single (projected) gradient step from the previous target:
//!
//! ```text
//! y_i(t) = y_i(t−1) + η · ∂L_{t−1}(y_{t−1}, λ_{t−1}) / ∂y_i
//! ```
//!
//! which is why Figure 4(c) shows Dragster-OGD "smoothly adjusting" the
//! configuration while the saddle-point variant jumps straight to the
//! optimum of the learned model.
//!
//! Like the saddle variant, a pure gradient step cannot scale *down* on the
//! saturation plateau of `f_t` (the gradient there is zero). After the
//! Eq.-16 step we therefore blend a fraction `pull_rate` of the way toward
//! the minimal plateau point ([`TargetSolver::pull_back`]): scale-up is
//! gradient-driven and aggressive, scale-down is pull-driven and gradual —
//! matching the smooth trajectories of Figure 4(c) and the slower
//! convergence of OGD on load drops in Table 2.

use crate::saddle::TargetSolver;
use crate::DragsterError;
use dragster_dag::Topology;

/// One OGD step state: the previous target vector.
#[derive(Clone, Debug)]
pub struct OgdState {
    pub y: Vec<f64>,
    /// Step size η as a fraction of the capacity box.
    pub eta: f64,
    /// Fraction of the gap to the minimal plateau point closed per slot.
    pub pull_rate: f64,
}

impl OgdState {
    /// Start from an initial capacity guess.
    pub fn new(y0: Vec<f64>, eta: f64) -> OgdState {
        assert!(eta > 0.0);
        OgdState {
            y: y0,
            eta,
            pull_rate: 0.35,
        }
    }

    /// Eq. 16 + plateau pull: one projected gradient step on the last-slot
    /// Lagrangian, then a partial pull-back toward the just-enough point.
    /// Returns the new target vector.
    ///
    /// # Errors
    /// [`DragsterError::Dag`] if the gradient or pull-back evaluation
    /// rejects the inputs; the state is left at the post-gradient point.
    pub fn step(
        &mut self,
        solver: &TargetSolver,
        topo: &Topology,
        source_rates: &[f64],
        offered_obs: &[f64],
        lambda: &[f64],
        y_max: f64,
    ) -> Result<Vec<f64>, DragsterError> {
        let (_, g) = solver.lagrangian_grad(topo, source_rates, offered_obs, &self.y, lambda)?;
        for (yi, gi) in self.y.iter_mut().zip(g.iter()) {
            *yi = (*yi + self.eta * y_max * gi).clamp(0.0, y_max);
        }
        let pulled = solver.pull_back(topo, source_rates, &self.y)?;
        for (yi, pi) in self.y.iter_mut().zip(pulled.iter()) {
            // pull-back never increases a coordinate
            *yi += self.pull_rate * (pi - *yi);
        }
        Ok(self.y.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_dag::TopologyBuilder;

    fn chain() -> Topology {
        TopologyBuilder::new()
            .source("s")
            .operator("a")
            .sink("k")
            .edge("s", "a")
            .edge("a", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn ogd_moves_toward_offered_load() {
        let topo = chain();
        let solver = TargetSolver::default();
        let mut st = OgdState::new(vec![10.0], 0.1);
        for _ in 0..50 {
            st.step(&solver, &topo, &[100.0], &[100.0], &[0.3], 300.0)
                .unwrap();
        }
        assert!(
            st.y[0] >= 95.0,
            "OGD failed to approach the load: {}",
            st.y[0]
        );
        assert!(st.y[0] <= 170.0, "OGD overshot wastefully: {}", st.y[0]);
    }

    #[test]
    fn ogd_is_smoother_than_full_solve() {
        // a single OGD step from y=10 moves less than the saddle full solve
        let topo = chain();
        let solver = TargetSolver::default();
        let mut st = OgdState::new(vec![10.0], 0.05);
        let one = st
            .step(&solver, &topo, &[100.0], &[100.0], &[0.3], 300.0)
            .unwrap();
        let full = solver
            .solve(&topo, &[100.0], &[100.0], &[0.3], &[10.0], 300.0)
            .unwrap();
        assert!((one[0] - 10.0).abs() < (full[0] - 10.0).abs());
    }

    #[test]
    fn ogd_descends_when_overprovisioned() {
        let topo = chain();
        let solver = TargetSolver::default();
        // way above the load with λ = 0: the plateau pull shrinks targets
        let mut st = OgdState::new(vec![290.0], 0.1);
        for _ in 0..20 {
            st.step(&solver, &topo, &[50.0], &[50.0], &[0.0], 300.0)
                .unwrap();
        }
        assert!(st.y[0] < 60.0, "no scale-down: {}", st.y[0]);
        assert!(st.y[0] >= 49.0, "undershot the load: {}", st.y[0]);
    }

    #[test]
    fn ogd_descends_gradually_not_instantly() {
        let topo = chain();
        let solver = TargetSolver::default();
        let mut st = OgdState::new(vec![290.0], 0.1);
        let y1 = st
            .step(&solver, &topo, &[50.0], &[50.0], &[0.0], 300.0)
            .unwrap();
        // one step closes only part of the gap (smooth adjustment)
        assert!(y1[0] > 100.0, "descended too fast: {}", y1[0]);
        assert!(y1[0] < 290.0);
    }

    #[test]
    fn ogd_respects_box() {
        let topo = chain();
        let solver = TargetSolver::default();
        let mut st = OgdState::new(vec![299.0], 5.0);
        let y = st
            .step(&solver, &topo, &[1000.0], &[1000.0], &[10.0], 300.0)
            .unwrap();
        assert!(y[0] <= 300.0);
    }
}
