//! Clairvoyant optimum `y*_t` (Eq. 10's comparator).
//!
//! The oracle knows the *true* capacity models (the simulator's ground
//! truth) and the current offered load, and finds the deployment
//! maximizing the noise-free steady-state throughput — breaking ties
//! toward fewer pods, which is also the cost-optimal choice. Dragster and
//! the baselines never see this; it defines the regret baseline and the
//! "within 10 % of optimal" convergence criterion of Section 6.
//!
//! For small applications an exhaustive scan of the `K^M` grid is exact;
//! for the Yahoo benchmark (`10⁶` joint configurations — "exhaustively
//! searching the optimum is impractical", Section 6.5) we use greedy
//! marginal-gain allocation, which is optimal here because the throughput
//! is concave and component-wise monotone in capacities (diminishing
//! returns ⇒ the greedy chain of +1-task moves dominates).

use crate::DragsterError;
use dragster_sim::{Application, Deployment};

/// Exhaustive search over the full grid. Exact; exponential in `M` —
/// intended for `M ≤ 4`.
///
/// # Errors
/// [`DragsterError::Sim`] if throughput evaluation rejects the inputs
/// (source-rate arity mismatch or an inconsistent topology).
pub fn exhaustive_optimal(
    app: &Application,
    source_rates: &[f64],
    max_tasks: usize,
    budget_pods: Option<usize>,
) -> Result<(Deployment, f64), DragsterError> {
    let m = app.n_operators();
    assert!(
        max_tasks
            .checked_pow(crate::num::exponent_u32(m))
            .is_some_and(|grid| grid <= 2_000_000),
        "grid too large; use greedy_optimal"
    );
    let mut tasks = vec![1usize; m];
    let mut best = (
        Deployment {
            tasks: tasks.clone(),
        },
        f64::NEG_INFINITY,
        usize::MAX,
    );
    loop {
        let d = Deployment {
            tasks: tasks.clone(),
        };
        if d.within_budget(budget_pods) {
            let f = app.ideal_throughput(source_rates, &tasks)?;
            let pods = d.total_pods();
            if f > best.1 + 1e-9 || (f > best.1 - 1e-9 && pods < best.2) {
                best = (d, f, pods);
            }
        }
        // odometer increment
        let mut i = 0;
        loop {
            if i == m {
                return Ok((best.0, best.1));
            }
            tasks[i] += 1;
            if tasks[i] <= max_tasks {
                break;
            }
            tasks[i] = 1;
            i += 1;
        }
    }
}

/// Scalable optimum for large `M` (the Yahoo benchmark's 10⁶-point grid):
///
/// 1. **Water-fill.** Compute each operator's offered load under the
///    current allocation (starting from unlimited capacities) and give it
///    the smallest task count whose true capacity covers that load;
///    iterate to a fixed point (loads only shrink when an operator cannot
///    cover its load even at `max_tasks`). Without a budget this is exact:
///    every operator has exactly enough capacity, so the flow is the
///    unconstrained-through-`max_tasks` optimum, and removing any task
///    would cut it.
/// 2. **Budget projection.** While over budget, remove the task whose
///    removal costs the least throughput (evaluated exactly).
/// 3. **Swap local search.** Improve with (+1, −1) task swaps until no swap
///    raises throughput — this handles the balanced-bottleneck plateaus
///    where marginal-gain moves stall.
///
/// Tests cross-validate against [`exhaustive_optimal`] on small grids.
///
/// # Errors
/// [`DragsterError::Dag`] / [`DragsterError::Sim`] if flow propagation or
/// throughput evaluation rejects the inputs.
pub fn greedy_optimal(
    app: &Application,
    source_rates: &[f64],
    max_tasks: usize,
    budget_pods: Option<usize>,
) -> Result<(Deployment, f64), DragsterError> {
    let m = app.n_operators();
    // --- 1. water-fill ---
    let mut tasks = vec![max_tasks; m];
    for _ in 0..8 {
        let caps = app.true_capacities(&tasks);
        let flows = dragster_dag::propagate(&app.topology, source_rates, &caps)?;
        let loads = flows.operator_offered_loads(&app.topology)?;
        let mut next = Vec::with_capacity(m);
        for (i, &load) in loads.iter().enumerate() {
            let need = app.capacity_models[i]
                .tasks_for(load - 1e-9, max_tasks)
                .unwrap_or(max_tasks);
            next.push(need.max(1));
        }
        if next == tasks {
            break;
        }
        tasks = next;
    }
    let mut f = app.ideal_throughput(source_rates, &tasks)?;

    // --- 2. budget projection ---
    if let Some(b) = budget_pods {
        let b = b.max(m);
        while tasks.iter().sum::<usize>() > b {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..m {
                if tasks[i] > 1 {
                    tasks[i] -= 1;
                    let fi = app.ideal_throughput(source_rates, &tasks)?;
                    tasks[i] += 1;
                    if best.is_none_or(|(_, bf)| fi > bf) {
                        best = Some((i, fi));
                    }
                }
            }
            // No decrement candidate means every operator is at 1 task, so
            // the total is M ≤ b and the loop guard cannot hold.
            let Some((i, fi)) = best else { break };
            tasks[i] -= 1;
            f = fi;
        }
    }

    // --- 3. swap local search ---
    loop {
        let mut improved = false;
        for i in 0..m {
            for j in 0..m {
                if i == j || tasks[i] >= max_tasks || tasks[j] <= 1 {
                    continue;
                }
                tasks[i] += 1;
                tasks[j] -= 1;
                let fi = app.ideal_throughput(source_rates, &tasks)?;
                if fi > f + 1e-9 {
                    f = fi;
                    improved = true;
                } else {
                    tasks[i] -= 1;
                    tasks[j] += 1;
                }
            }
        }
        if !improved {
            break;
        }
    }
    // trim tasks that contribute nothing (ties toward fewer pods)
    loop {
        let mut trimmed = false;
        for i in 0..m {
            if tasks[i] > 1 {
                tasks[i] -= 1;
                let fi = app.ideal_throughput(source_rates, &tasks)?;
                if fi >= f - 1e-9 {
                    trimmed = true;
                } else {
                    tasks[i] += 1;
                }
            }
        }
        if !trimmed {
            break;
        }
    }
    Ok((Deployment { tasks }, f))
}

/// Optimal throughput per slot for a whole arrival trace — the `y*_t`
/// series used for regret curves and convergence tables.
///
/// # Errors
/// [`DragsterError`] from the first slot whose optimum cannot be
/// evaluated.
pub fn optimal_series(
    app: &Application,
    rates_per_slot: &[Vec<f64>],
    max_tasks: usize,
    budget_pods: Option<usize>,
) -> Result<Vec<f64>, DragsterError> {
    rates_per_slot
        .iter()
        .map(|r| Ok(greedy_optimal(app, r, max_tasks, budget_pods)?.1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_dag::{ThroughputFn, TopologyBuilder};
    use dragster_sim::CapacityModel;

    fn wordcount(per_task_map: f64, per_task_shuffle: f64) -> Application {
        let topo = TopologyBuilder::new()
            .source("src")
            .operator("map")
            .operator("shuffle")
            .sink("out")
            .edge("src", "map")
            .edge_with(
                "map",
                "shuffle",
                ThroughputFn::Linear { weights: vec![1.0] },
                1.0,
            )
            .edge("shuffle", "out")
            .build()
            .unwrap();
        Application::new(
            topo,
            vec![
                CapacityModel::Contended {
                    per_task: per_task_map,
                    contention: 0.03,
                },
                CapacityModel::Contended {
                    per_task: per_task_shuffle,
                    contention: 0.03,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn greedy_matches_exhaustive_unconstrained() {
        let app = wordcount(100.0, 60.0);
        let (dg, fg) = greedy_optimal(&app, &[450.0], 10, None).unwrap();
        let (de, fe) = exhaustive_optimal(&app, &[450.0], 10, None).unwrap();
        assert!((fg - fe).abs() < 1e-9, "greedy {fg} vs exhaustive {fe}");
        assert_eq!(dg.tasks, de.tasks);
    }

    #[test]
    fn greedy_matches_exhaustive_budgeted() {
        let app = wordcount(100.0, 60.0);
        for budget in [4, 6, 8, 10, 12] {
            let (_, fg) = greedy_optimal(&app, &[800.0], 10, Some(budget)).unwrap();
            let (_, fe) = exhaustive_optimal(&app, &[800.0], 10, Some(budget)).unwrap();
            assert!(
                (fg - fe).abs() < 1e-6,
                "budget {budget}: greedy {fg} vs exhaustive {fe}"
            );
        }
    }

    #[test]
    fn optimum_is_just_enough_capacity() {
        let app = wordcount(100.0, 100.0);
        // load 250 needs ~3 tasks per operator (capacity 100n with small
        // contention); no reason to buy more.
        let (d, f) = exhaustive_optimal(&app, &[250.0], 10, None).unwrap();
        assert!((f - 250.0).abs() < 1.0, "{f}");
        assert!(d.tasks.iter().all(|&t| t <= 4), "{d}");
    }

    #[test]
    fn budget_binds_under_overload() {
        let app = wordcount(100.0, 100.0);
        let (d, f) = exhaustive_optimal(&app, &[5000.0], 10, Some(8)).unwrap();
        assert_eq!(d.total_pods(), 8);
        // balanced 4/4 ⇒ throughput ≈ capacity(4) ≈ 366
        assert_eq!(d.tasks, vec![4, 4]);
        assert!(f > 350.0);
    }

    #[test]
    fn asymmetric_operators_get_asymmetric_allocation() {
        // shuffle is half as fast per task: under a tight budget it should
        // receive more tasks than map.
        let app = wordcount(100.0, 50.0);
        let (d, _) = exhaustive_optimal(&app, &[5000.0], 10, Some(9)).unwrap();
        assert!(d.tasks[1] > d.tasks[0], "{d}");
    }

    #[test]
    fn optimal_series_tracks_load() {
        let app = wordcount(100.0, 100.0);
        let series =
            optimal_series(&app, &[vec![100.0], vec![400.0], vec![100.0]], 10, None).unwrap();
        assert!((series[0] - 100.0).abs() < 1.0);
        assert!((series[1] - 400.0).abs() < 6.0);
        assert!((series[2] - 100.0).abs() < 1.0);
    }
}
