//! The budget projection `Π_X` of Eq. 18: restrict the acquisition argmax
//! to the feasible set `{x : Σ_i x_i ≤ B}`.
//!
//! Because the acquisition is *separable* across operators
//! (`A(x) = Σ_i A_i(x_i)` — independent GPs, Eq. 7) and the constraint is a
//! single knapsack row over the integer grid, the projection is solved
//! *exactly* by dynamic programming in `O(M · B · K)` — microseconds for
//! the paper's scales (M ≤ 6, K = 10). A greedy decrement variant is also
//! provided; tests verify greedy ≤ exact and exact feasibility/optimality.

/// Exact projection: maximize `Σ_i table[i][x_i − 1]` subject to
/// `Σ_i x_i ≤ budget`, `1 ≤ x_i ≤ K_i`. Returns the chosen task counts.
///
/// ```
/// use dragster_core::project_acquisition;
///
/// // two operators, three candidate task counts each
/// let tables = vec![vec![0.1, 0.9, 0.95], vec![0.5, 0.6, 0.61]];
/// assert_eq!(project_acquisition(&tables, 100), vec![3, 3]); // unconstrained
/// assert_eq!(project_acquisition(&tables, 3), vec![2, 1]);   // budget binds
/// ```
///
/// # Panics
/// If `budget < M` (every operator needs ≥ 1 task) or any table is empty.
pub fn project_acquisition(tables: &[Vec<f64>], budget: usize) -> Vec<usize> {
    let m = tables.len();
    assert!(m > 0, "no operators");
    assert!(budget >= m, "budget {budget} cannot host {m} operators");
    for t in tables {
        assert!(!t.is_empty(), "empty acquisition table");
    }
    let b = budget;
    const NEG: f64 = f64::NEG_INFINITY;
    // dp[i][u] = best value using operators 0..i with u pods spent.
    let mut dp = vec![vec![NEG; b + 1]; m + 1];
    let mut choice = vec![vec![0usize; b + 1]; m + 1];
    dp[0][0] = 0.0;
    for i in 0..m {
        let k = tables[i].len();
        for u in 0..=b {
            if dp[i][u] == NEG {
                continue;
            }
            for x in 1..=k.min(b.saturating_sub(u)) {
                let v = dp[i][u] + tables[i][x - 1];
                if v > dp[i + 1][u + x] {
                    dp[i + 1][u + x] = v;
                    choice[i + 1][u + x] = x;
                }
            }
        }
    }
    // best final budget usage
    let mut best_u = m;
    for u in m..=b {
        if dp[m][u] > dp[m][best_u] {
            best_u = u;
        }
    }
    // backtrack
    let mut xs = vec![0usize; m];
    let mut u = best_u;
    for i in (0..m).rev() {
        let x = choice[i + 1][u];
        xs[i] = x;
        u -= x;
    }
    xs
}

/// Greedy projection: start from each operator's unconstrained argmax and
/// decrement the operator whose one-task reduction loses the least
/// acquisition value until the budget holds. Not always optimal (the
/// acquisition need not be concave in `x`); kept for comparison and as the
/// paper-plausible simple implementation.
pub fn project_greedy(tables: &[Vec<f64>], budget: usize) -> Vec<usize> {
    let m = tables.len();
    assert!(budget >= m);
    let mut xs: Vec<usize> = tables
        .iter()
        .map(|t| crate::num::argmax(t).map_or(1, |i| i + 1))
        .collect();
    loop {
        let total: usize = xs.iter().sum();
        if total <= budget {
            return xs;
        }
        // candidate decrements
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if xs[i] > 1 {
                let loss = tables[i][xs[i] - 1] - tables[i][xs[i] - 2];
                if best.is_none_or(|(_, l)| loss.total_cmp(&l) == std::cmp::Ordering::Less) {
                    best = Some((i, loss));
                }
            }
        }
        // No decrement candidate means all entries are 1, so the total is
        // M ≤ budget and the loop has already returned.
        let Some((i, _)) = best else { return xs };
        xs[i] -= 1;
    }
}

/// Total acquisition value of a choice.
pub fn acquisition_value(tables: &[Vec<f64>], xs: &[usize]) -> f64 {
    tables.iter().zip(xs.iter()).map(|(t, &x)| t[x - 1]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_budget_picks_argmax() {
        let tables = vec![vec![0.1, 0.9, 0.3], vec![0.5, 0.2, 0.8]];
        let xs = project_acquisition(&tables, 100);
        assert_eq!(xs, vec![2, 3]);
    }

    #[test]
    fn tight_budget_is_feasible_and_optimal() {
        let tables = vec![vec![0.1, 0.9, 0.95], vec![0.5, 0.6, 0.61]];
        // budget 3: best is x = (2,1): 0.9 + 0.5 = 1.4 vs (1,2): 0.1+0.6.
        let xs = project_acquisition(&tables, 3);
        assert_eq!(xs.iter().sum::<usize>(), 3);
        assert_eq!(xs, vec![2, 1]);
    }

    #[test]
    fn exact_beats_or_matches_greedy_on_random_tables() {
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for _ in 0..200 {
            let m = 2 + (next() * 3.0) as usize;
            let tables: Vec<Vec<f64>> = (0..m).map(|_| (0..10).map(|_| next()).collect()).collect();
            for budget in [m, m + 3, m * 5, 100] {
                let exact = project_acquisition(&tables, budget);
                let greedy = project_greedy(&tables, budget);
                assert!(exact.iter().sum::<usize>() <= budget);
                assert!(greedy.iter().sum::<usize>() <= budget);
                assert!(exact.iter().all(|&x| (1..=10).contains(&x)));
                let ve = acquisition_value(&tables, &exact);
                let vg = acquisition_value(&tables, &greedy);
                assert!(ve >= vg - 1e-12, "exact {ve} < greedy {vg}");
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_small() {
        let tables = vec![
            vec![0.3, 0.1, 0.7, 0.2],
            vec![0.6, 0.65, 0.1, 0.9],
            vec![0.2, 0.8, 0.85, 0.4],
        ];
        for budget in 3..=12 {
            let got = project_acquisition(&tables, budget);
            // brute force
            let mut best = (vec![1, 1, 1], f64::NEG_INFINITY);
            for a in 1..=4 {
                for b in 1..=4 {
                    for c in 1..=4 {
                        if a + b + c <= budget {
                            let v = acquisition_value(&tables, &[a, b, c]);
                            if v > best.1 {
                                best = (vec![a, b, c], v);
                            }
                        }
                    }
                }
            }
            assert!(
                (acquisition_value(&tables, &got) - best.1).abs() < 1e-12,
                "budget {budget}: got {got:?} vs best {best:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn budget_below_operator_count_panics() {
        let _ = project_acquisition(&[vec![0.0], vec![0.0]], 1);
    }

    #[test]
    fn minimum_budget_forces_all_ones() {
        let tables = vec![vec![0.0, 10.0], vec![0.0, 10.0], vec![0.0, 10.0]];
        assert_eq!(project_acquisition(&tables, 3), vec![1, 1, 1]);
        assert_eq!(project_greedy(&tables, 3), vec![1, 1, 1]);
    }
}
