//! Dynamic regret (Eq. 10) and dynamic fit (Eq. 12) accounting.
//!
//! ```text
//! Reg_T = Σ_t f_t(y*_t) − Σ_t f_t(y_t(x_t))
//! Fit_T = Σ_t Σ_i l_i(y_i(x_i(t)))          (l_i = offered − capacity)
//! ```
//!
//! Theorem 1 bounds both by `O(√(T β_T Γ_T))` — sub-linear in `T`. The
//! `regret_growth` experiment sweeps `T`, fits the log-log slope of these
//! series, and checks it stays below 1.

/// Accumulates per-slot optimal/achieved throughput and constraint
/// violations; exposes cumulative and per-slot series.
#[derive(Clone, Debug, Default)]
pub struct RegretTracker {
    opt: Vec<f64>,
    achieved: Vec<f64>,
    /// Σ_i l_i per slot, *violations only* counted per the positive part of
    /// the sum (the paper's Fit sums the raw l_i; we record both).
    fit_raw: Vec<f64>,
    fit_pos: Vec<f64>,
}

impl RegretTracker {
    pub fn new() -> RegretTracker {
        RegretTracker::default()
    }

    /// Record one slot: the clairvoyant optimal throughput, the achieved
    /// throughput, and the per-operator constraint values
    /// `l_i = offered_i − capacity_i`.
    pub fn record(&mut self, f_opt: f64, f_achieved: f64, l_values: &[f64]) {
        self.opt.push(f_opt);
        self.achieved.push(f_achieved);
        let raw: f64 = l_values.iter().sum();
        let pos: f64 = l_values.iter().map(|l| l.max(0.0)).sum();
        self.fit_raw.push(raw);
        self.fit_pos.push(pos);
    }

    /// Number of slots recorded.
    pub fn len(&self) -> usize {
        self.opt.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.opt.is_empty()
    }

    /// `Reg_T` (Eq. 10) after all recorded slots.
    pub fn regret(&self) -> f64 {
        self.opt.iter().sum::<f64>() - self.achieved.iter().sum::<f64>()
    }

    /// `Fit_T` (Eq. 12) with raw (signed) constraint sums.
    pub fn fit(&self) -> f64 {
        self.fit_raw.iter().sum()
    }

    /// Positive-part fit: total unprocessed-tuple *rate* accumulated — an
    /// upper bound on buffer growth (Section 4.2.4: "Fit_T gives an upper
    /// bound for the number of unprocessed tuples").
    pub fn fit_positive(&self) -> f64 {
        self.fit_pos.iter().sum()
    }

    /// Cumulative regret after each slot (length T series).
    pub fn regret_series(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.opt
            .iter()
            .zip(self.achieved.iter())
            .map(|(o, a)| {
                acc += o - a;
                acc
            })
            .collect()
    }

    /// Cumulative positive-part fit after each slot.
    pub fn fit_series(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.fit_pos
            .iter()
            .map(|f| {
                acc += f;
                acc
            })
            .collect()
    }

    /// Least-squares slope of `log(series)` vs `log(t)` over the tail
    /// half of the horizon — the empirical growth exponent. Sub-linear
    /// regret ⇔ slope < 1. Slots where the series is ≤ 0 are skipped.
    pub fn growth_exponent(series: &[f64]) -> Option<f64> {
        let n = series.len();
        if n < 8 {
            return None;
        }
        let pts: Vec<(f64, f64)> = series
            .iter()
            .enumerate()
            .skip(n / 2)
            .filter(|(_, &v)| v > 0.0)
            .map(|(t, &v)| ((t as f64 + 1.0).ln(), v.ln()))
            .collect();
        if pts.len() < 4 {
            return Some(0.0); // series vanished ⇒ trivially sub-linear
        }
        let k = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = k * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((k * sxy - sx * sy) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regret_and_fit_accumulate() {
        let mut r = RegretTracker::new();
        r.record(100.0, 80.0, &[5.0, -3.0]);
        r.record(100.0, 100.0, &[0.0, 0.0]);
        assert_eq!(r.len(), 2);
        assert!((r.regret() - 20.0).abs() < 1e-12);
        assert!((r.fit() - 2.0).abs() < 1e-12);
        assert!((r.fit_positive() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn series_are_cumulative() {
        let mut r = RegretTracker::new();
        r.record(10.0, 5.0, &[1.0]);
        r.record(10.0, 10.0, &[2.0]);
        r.record(10.0, 8.0, &[0.0]);
        assert_eq!(r.regret_series(), vec![5.0, 5.0, 7.0]);
        assert_eq!(r.fit_series(), vec![1.0, 3.0, 3.0]);
    }

    #[test]
    fn growth_exponent_detects_linear() {
        let series: Vec<f64> = (1..=200).map(|t| t as f64 * 3.0).collect();
        let e = RegretTracker::growth_exponent(&series).unwrap();
        assert!((e - 1.0).abs() < 0.02, "{e}");
    }

    #[test]
    fn growth_exponent_detects_sqrt() {
        let series: Vec<f64> = (1..=200).map(|t| (t as f64).sqrt()).collect();
        let e = RegretTracker::growth_exponent(&series).unwrap();
        assert!((e - 0.5).abs() < 0.02, "{e}");
    }

    #[test]
    fn growth_exponent_handles_flat_series() {
        let series = vec![0.0; 100];
        assert_eq!(RegretTracker::growth_exponent(&series), Some(0.0));
    }

    #[test]
    fn growth_exponent_short_series_is_none() {
        assert!(RegretTracker::growth_exponent(&[1.0, 2.0]).is_none());
    }
}
