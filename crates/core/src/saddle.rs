//! Level 1a — the online saddle point algorithm (Eq. 13–15).
//!
//! Per-slot Lagrangian (Eq. 13):
//!
//! ```text
//! L_t(y, λ) = f_t(y) − Σ_i λ_i · l_i(y_i),    l_i(y_i) = Σ_j h_{i,j}(ē_i) − y_i
//! ```
//!
//! The primal step (Eq. 14) sets the current target capacity vector to the
//! maximizer of the *last* slot's Lagrangian; the dual step (Eq. 15)
//! accumulates constraint violations: `λ_i ← max(0, λ_i + γ l_i(y_i))`,
//! `γ = γ₀/√t`.
//!
//! `f_t` is concave and `l_i` affine in `y`, so the inner problem is a
//! concave maximization over the box `[0, y_max]^M`, solved by projected
//! (sub)gradient ascent with autodiff gradients.
//!
//! **Plateau selection.** `f_t` *saturates*: any capacity beyond the
//! offered load changes nothing, so the maximizer is a plateau and Eq. 14
//! alone does not pin down a point. Following Remark 1 ("just have enough
//! capacity to handle the incoming tuples") we select the *minimal*
//! coordinate-wise point of the plateau via [`TargetSolver::pull_back`]
//! (per-coordinate binary search that preserves the achieved throughput),
//! then re-inflate each target by a λ-proportional headroom so operators
//! with a history of violations get capacity to drain their backlog. This
//! is what lets Dragster "converge in a more economical resource
//! configuration" (Section 6.4) while the dual dynamics remain exactly
//! Eq. 15.

use crate::DragsterError;
use dragster_autodiff::Tape;
use dragster_dag::{propagate, throughput, Topology};

/// Solves the per-slot target-capacity problem. Shared by the saddle-point
/// and OGD variants (they differ only in the primal step).
pub struct TargetSolver {
    /// Ascent iterations for the inner maximization.
    pub iters: usize,
    /// Relative throughput tolerance used by the plateau pull-back.
    pub pull_back_tol: f64,
    /// Headroom per unit of dual variable: `target_i ← target_i ·
    /// (1 + headroom · min(λ_i, 1))`.
    pub lambda_headroom: f64,
}

impl Default for TargetSolver {
    fn default() -> Self {
        TargetSolver {
            iters: 200,
            pull_back_tol: 1e-6,
            lambda_headroom: 0.5,
        }
    }
}

impl TargetSolver {
    /// Evaluate the Lagrangian `L(y, λ)` and its gradient w.r.t. `y`, for
    /// the *known* throughput function (topology) and current offered
    /// source rates.
    ///
    /// Faithful to Eq. 11/13, the constraint terms treat the offered loads
    /// `Σ_j h_{i,j}(ē_i)` as *observed constants* from the last slot
    /// (`offered_obs`), so `l_i` is affine in `y_i` alone. Making them
    /// flow-dependent instead creates a perverse maximizer — with a large
    /// downstream λ the Lagrangian rewards *starving upstream operators*
    /// (less inflow ⇒ smaller violation), collapsing every target to zero.
    ///
    /// # Errors
    /// [`DragsterError::Dag`] if flow propagation rejects the inputs
    /// (arity mismatch or an inconsistent topology).
    pub fn lagrangian_grad(
        &self,
        topo: &Topology,
        source_rates: &[f64],
        offered_obs: &[f64],
        y: &[f64],
        lambda: &[f64],
    ) -> Result<(f64, Vec<f64>), DragsterError> {
        let tape = Tape::new();
        let caps: Vec<_> = y.iter().map(|&v| tape.var(v)).collect();
        let rates: Vec<_> = source_rates.iter().map(|&r| tape.constant(r)).collect();
        let res = propagate(topo, &rates, &caps)?;
        // L = f(y) − Σ λ_i (offered_obs_i − y_i)
        let mut l = res.throughput;
        for (i, &off) in offered_obs.iter().enumerate() {
            l = l - (tape.constant(off) - caps[i]) * lambda[i];
        }
        let grads = l.backward();
        Ok((l.value(), grads.wrt_slice(&caps)))
    }

    /// Projected gradient ascent on `L(·, λ)` over `[0, y_max]^M`.
    fn ascend(
        &self,
        topo: &Topology,
        source_rates: &[f64],
        offered_obs: &[f64],
        lambda: &[f64],
        y_start: &[f64],
        y_max: f64,
    ) -> Result<Vec<f64>, DragsterError> {
        let m = topo.n_operators();
        let mut y: Vec<f64> = y_start.iter().map(|&v| v.clamp(0.0, y_max)).collect();
        let step0 = 0.25 * y_max;
        for k in 1..=self.iters {
            let (_, g) = self.lagrangian_grad(topo, source_rates, offered_obs, &y, lambda)?;
            let step = step0 / (k as f64).sqrt();
            let mut moved = 0.0;
            for i in 0..m {
                let ny = (y[i] + step * g[i]).clamp(0.0, y_max);
                moved += (ny - y[i]).abs();
                y[i] = ny;
            }
            if moved < 1e-9 * y_max {
                break;
            }
        }
        Ok(y)
    }

    /// Reduce each coordinate to the smallest value that keeps the
    /// application throughput within `pull_back_tol` (relative) of its
    /// value at `y` — the minimal point of the saturation plateau. Two
    /// passes make the result order-insensitive for chains.
    ///
    /// # Errors
    /// [`DragsterError::Dag`] if throughput evaluation rejects the inputs.
    pub fn pull_back(
        &self,
        topo: &Topology,
        source_rates: &[f64],
        y: &[f64],
    ) -> Result<Vec<f64>, DragsterError> {
        let f_ref = throughput(topo, source_rates, y)?;
        let floor = f_ref * (1.0 - self.pull_back_tol) - 1e-12;
        let mut y = y.to_vec();
        for _pass in 0..2 {
            for i in 0..y.len() {
                let (mut lo, mut hi) = (0.0_f64, y[i]);
                for _ in 0..50 {
                    let mid = 0.5 * (lo + hi);
                    let saved = y[i];
                    y[i] = mid;
                    let ok = throughput(topo, source_rates, &y)? >= floor;
                    y[i] = saved;
                    if ok {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                y[i] = hi;
            }
        }
        Ok(y)
    }

    /// Eq. 14 with plateau selection: ascend `L(·, λ_{t−1})` from
    /// `y_start`, pull back to the minimal plateau point, then apply the
    /// λ-headroom.
    ///
    /// # Errors
    /// [`DragsterError::Dag`] if the inner evaluations reject the inputs.
    pub fn solve(
        &self,
        topo: &Topology,
        source_rates: &[f64],
        offered_obs: &[f64],
        lambda: &[f64],
        y_start: &[f64],
        y_max: f64,
    ) -> Result<Vec<f64>, DragsterError> {
        assert_eq!(lambda.len(), topo.n_operators());
        let y_hat = self.ascend(topo, source_rates, offered_obs, lambda, y_start, y_max)?;
        let mut y = self.pull_back(topo, source_rates, &y_hat)?;
        for (yi, &lam) in y.iter_mut().zip(lambda.iter()) {
            *yi = (*yi * (1.0 + self.lambda_headroom * lam.min(1.0))).clamp(0.0, y_max);
        }
        Ok(y)
    }
}

/// The dual state of the saddle-point algorithm.
#[derive(Clone, Debug)]
pub struct SaddleState {
    /// Multipliers λ_i ≥ 0, one per operator.
    pub lambda: Vec<f64>,
    /// Base dual step size γ₀ (γ_t = γ₀/√t, Theorem 1's γ = 1/√t).
    pub gamma0: f64,
    t: usize,
}

impl SaddleState {
    pub fn new(n_operators: usize, gamma0: f64) -> SaddleState {
        SaddleState {
            lambda: vec![0.0; n_operators],
            gamma0,
            t: 0,
        }
    }

    /// Slots observed so far.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Rebuild a dual state from checkpointed values (λ vector, base step
    /// size, and the slot counter that drives the γ_t = γ₀/√t schedule).
    pub fn restore(lambda: Vec<f64>, gamma0: f64, t: usize) -> SaddleState {
        SaddleState { lambda, gamma0, t }
    }

    /// Eq. 15: `λ_i ← max(0, λ_i + γ_t l_i)` with the observed constraint
    /// values `l_i = offered_i − capacity_i` (positive = violated). The
    /// values are normalized by the offered scale so γ is unit-free.
    pub fn dual_update(&mut self, l_values: &[f64]) {
        assert_eq!(l_values.len(), self.lambda.len());
        self.t += 1;
        let gamma = self.gamma0 / (self.t as f64).sqrt().max(1.0);
        let scale = l_values.iter().map(|l| l.abs()).fold(1e-9_f64, f64::max);
        for (lam, &l) in self.lambda.iter_mut().zip(l_values.iter()) {
            *lam = (*lam + gamma * l / scale).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_dag::TopologyBuilder;

    fn chain() -> Topology {
        TopologyBuilder::new()
            .source("s")
            .operator("a")
            .operator("b")
            .sink("k")
            .edge("s", "a")
            .edge("a", "b")
            .edge("b", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn lagrangian_matches_throughput_when_lambda_zero() {
        let topo = chain();
        let solver = TargetSolver::default();
        let y = [50.0, 80.0];
        let (l, _) = solver
            .lagrangian_grad(&topo, &[100.0], &[100.0, 100.0], &y, &[0.0, 0.0])
            .unwrap();
        assert!((l - throughput(&topo, &[100.0], &y).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn lambda_rewards_capacity_at_violated_operator() {
        let topo = chain();
        let solver = TargetSolver::default();
        // operator a starved: offered 100, capacity 20.
        let y = [20.0, 200.0];
        let off = [100.0, 20.0];
        let (_, g0) = solver
            .lagrangian_grad(&topo, &[100.0], &off, &y, &[0.0, 0.0])
            .unwrap();
        let (_, g1) = solver
            .lagrangian_grad(&topo, &[100.0], &off, &y, &[2.0, 0.0])
            .unwrap();
        // with λ_a > 0 the gradient on y_a grows by λ_a
        assert!((g1[0] - (g0[0] + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn solve_meets_offered_load_without_waste() {
        let topo = chain();
        let solver = TargetSolver::default();
        let y = solver
            .solve(
                &topo,
                &[100.0],
                &[100.0, 100.0],
                &[0.5, 0.5],
                &[10.0, 10.0],
                400.0,
            )
            .unwrap();
        for (i, &yi) in y.iter().enumerate() {
            assert!(yi >= 99.0, "op {i}: target {yi} below offered load");
            // pull-back + 25 % λ-headroom ⇒ ≈ 125, never the 400 box edge
            assert!(yi <= 160.0, "op {i}: target {yi} wastefully high");
        }
        let f = throughput(&topo, &[100.0], &y).unwrap();
        assert!(f >= 99.0);
    }

    #[test]
    fn solve_scales_down_when_load_drops() {
        let topo = chain();
        let solver = TargetSolver::default();
        // warm start high (previous high-load targets), λ decayed to 0
        let lo = solver
            .solve(
                &topo,
                &[20.0],
                &[20.0, 20.0],
                &[0.0, 0.0],
                &[400.0, 400.0],
                400.0,
            )
            .unwrap();
        assert!(
            lo[0] <= 25.0,
            "low load should need low capacity, got {}",
            lo[0]
        );
        assert!(lo[0] >= 19.5);
    }

    #[test]
    fn pull_back_finds_minimal_plateau_point() {
        let topo = chain();
        let solver = TargetSolver::default();
        let y = solver.pull_back(&topo, &[100.0], &[350.0, 290.0]).unwrap();
        // minimal capacities passing 100 tuples/s are exactly 100 each
        assert!((y[0] - 100.0).abs() < 0.1, "{:?}", y);
        assert!((y[1] - 100.0).abs() < 0.1, "{:?}", y);
        // throughput preserved
        assert!(throughput(&topo, &[100.0], &y).unwrap() >= 99.99);
    }

    #[test]
    fn pull_back_respects_existing_bottleneck() {
        let topo = chain();
        let solver = TargetSolver::default();
        // a is a hard bottleneck at 40: b needs only 40.
        let y = solver.pull_back(&topo, &[100.0], &[40.0, 300.0]).unwrap();
        assert!((y[0] - 40.0).abs() < 0.1);
        assert!((y[1] - 40.0).abs() < 0.1);
    }

    #[test]
    fn solve_stays_in_box() {
        let topo = chain();
        let solver = TargetSolver::default();
        let y = solver
            .solve(
                &topo,
                &[1000.0],
                &[1000.0, 150.0],
                &[5.0, 5.0],
                &[0.0, 0.0],
                150.0,
            )
            .unwrap();
        for &yi in &y {
            assert!((0.0..=150.0).contains(&yi));
        }
    }

    #[test]
    fn headroom_scales_with_lambda() {
        let topo = chain();
        let solver = TargetSolver::default();
        let relaxed = solver
            .solve(
                &topo,
                &[100.0],
                &[100.0, 100.0],
                &[0.0, 0.0],
                &[10.0, 10.0],
                400.0,
            )
            .unwrap();
        let pressed = solver
            .solve(
                &topo,
                &[100.0],
                &[100.0, 100.0],
                &[1.0, 1.0],
                &[10.0, 10.0],
                400.0,
            )
            .unwrap();
        assert!(
            pressed[0] > relaxed[0] * 1.2,
            "{} vs {}",
            pressed[0],
            relaxed[0]
        );
    }

    #[test]
    fn dual_update_accumulates_violations_and_clamps() {
        let mut st = SaddleState::new(2, 1.0);
        st.dual_update(&[10.0, -5.0]); // γ_1 = 1, scale = 10
        assert!((st.lambda[0] - 1.0).abs() < 1e-12);
        assert_eq!(st.lambda[1], 0.0);
        st.dual_update(&[-100.0, 2.0]); // γ_2 = 1/√2, scale = 100
        assert!(st.lambda[0] < 1.0); // violation cleared ⇒ λ decreases
        assert!(st.lambda[1] > 0.0);
        st.dual_update(&[-100.0, -100.0]);
        st.dual_update(&[-100.0, -100.0]);
        assert_eq!(st.lambda[0], 0.0); // clamped at zero
        assert_eq!(st.lambda[1], 0.0);
        assert_eq!(st.t(), 4);
    }

    #[test]
    fn dual_step_decays() {
        let mut st = SaddleState::new(1, 1.0);
        st.dual_update(&[1.0]);
        let l1 = st.lambda[0];
        let mut st2 = SaddleState::new(1, 1.0);
        st2.dual_update(&[1e-12]);
        st2.dual_update(&[1e-12]);
        st2.dual_update(&[1e-12]);
        st2.dual_update(&[1.0]); // γ_4 = 1/2
        assert!(st2.lambda[0] < l1);
    }
}
