//! Level 2 — per-operator Gaussian-process models and the extended GP-UCB
//! acquisition (Eq. 18, Remark 1).
//!
//! Each operator follows an independent GP over its configuration space
//! (Eq. 7 — here the 1-D task count `1..=max_tasks`). Capacity samples are
//! the noisy Eq.-8 observations. The acquisition *tracks a target* instead
//! of maximizing:
//!
//! ```text
//! A_i(x) = −|μ_{t−1}(x) − y_i(t)| + β_{t−1} σ²_{t−1}(x)
//! ```
//!
//! so a configuration is attractive when its predicted capacity is close to
//! the saddle-point target (exploitation) or still uncertain (exploration).
//!
//! Capacities are normalized by a per-operator running scale before
//! entering the GP, so one set of kernel hyper-parameters serves operators
//! whose capacities differ by orders of magnitude; when the scale estimate
//! grows (a sample exceeds it), the GP is refit from raw history.
//!
//! The GP regresses *residuals against a linear prior mean* `m(x) ∝ x`:
//! a priori, capacity grows linearly with the task count. With a zero
//! prior, extrapolation beyond the observed configs would decay toward
//! zero capacity, and the tracking acquisition would never propose more
//! tasks than it has tried — the controller would stall below high
//! targets. The linear prior encodes the monotonicity every capacity
//! model satisfies while leaving the shape fully learnable.

use crate::DragsterError;
use dragster_gp::{beta_t, GpHyperFit, GpPosterior, GpRegressor, SquaredExp};

/// Which acquisition drives the configuration choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquisitionKind {
    /// The paper's Eq. 18 / Remark 1: `−|μ − y_t| + β σ²` (deficit-
    /// weighted).
    ExtendedUcb,
    /// Thompson sampling: draw one coherent capacity curve from the joint
    /// posterior and track the target on the *sample* — a randomized
    /// exploration alternative from the BO literature (`ablations`
    /// compares the two).
    Thompson,
}

/// Hyper-parameters of the GP-UCB level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UcbConfig {
    /// Confidence parameter δ ∈ (1, ∞) of `β_t = 2 log(|X| t² π² δ/6)`.
    pub delta: f64,
    /// Practical multiplier on the theoretical β_t (1.0 = paper-faithful;
    /// smaller trades exploration for faster convergence — see the
    /// `ablations` bench).
    pub beta_scale: f64,
    /// SE-kernel length scale in task units.
    pub length_scale: f64,
    /// GP observation-noise variance in *normalized* capacity units.
    pub noise_var: f64,
    /// Configuration range per operator (the paper's 1–10 tasks).
    pub max_tasks: usize,
    /// Asymmetry of the tracking penalty: a capacity *deficit*
    /// (`μ < y_t`) costs throughput while an excess only costs pods, so
    /// the deficit side of `|μ − y_t|` is weighted by this factor
    /// (1.0 recovers the paper's symmetric Remark-1 acquisition; the
    /// default 3.0 removes near-tie flips to under-provisioned configs).
    pub deficit_weight: f64,
    /// Acquisition family (paper default: extended UCB).
    pub acquisition: AcquisitionKind,
    /// Re-fit the SE length scale by log-marginal-likelihood grid search
    /// every N observations (sklearn's restart-based fitting, batched);
    /// `None` keeps the configured length scale.
    pub hyper_refit_every: Option<usize>,
    /// Serve grid posteriors from the incremental [`dragster_gp::GridCache`]
    /// (O(t) per query) instead of a fresh triangular solve (O(t²)).
    /// Results are bit-identical either way; disabling exists for the
    /// hotpath bench's naive-vs-cached A/B comparison.
    pub grid_cache: bool,
}

impl Default for UcbConfig {
    fn default() -> Self {
        UcbConfig {
            delta: 2.0,
            beta_scale: 0.05,
            length_scale: 3.0,
            noise_var: 0.01,
            max_tasks: 10,
            deficit_weight: 3.0,
            acquisition: AcquisitionKind::ExtendedUcb,
            hyper_refit_every: Some(12),
            grid_cache: true,
        }
    }
}

impl UcbConfig {
    /// The UCB weight for slot `t` over a joint space of `n_joint_configs`
    /// configurations, including the practical scale factor.
    pub fn beta(&self, n_joint_configs: usize, t: usize) -> f64 {
        beta_t(n_joint_configs.max(1), t.max(1), self.delta) * self.beta_scale
    }
}

/// Observations entering the hyper-parameter grid search: the most recent
/// window of residual history. Large enough that every existing fit
/// (refits trigger every ~12 observations) sees all the data it used to;
/// small enough that the O(W³) candidate factorizations stay constant-cost
/// over long horizons.
const HYPER_FIT_WINDOW: usize = 48;

/// The per-operator capacity model: a 1-D GP over the task count.
pub struct OperatorGp {
    cfg: UcbConfig,
    gp: GpRegressor<SquaredExp>,
    /// Normalization scale: capacities are divided by this before entering
    /// the GP.
    scale: f64,
    /// Raw (tasks, capacity-sample) history for refits.
    history: Vec<(usize, f64)>,
}

impl OperatorGp {
    pub fn new(cfg: UcbConfig) -> OperatorGp {
        let mut gp =
            GpRegressor::new(SquaredExp::new(cfg.length_scale), cfg.noise_var).with_prior_mean(0.0);
        if cfg.grid_cache {
            gp.set_grid((1..=cfg.max_tasks.max(1)).map(|x| vec![x as f64]).collect());
        }
        OperatorGp {
            cfg,
            gp,
            scale: 1.0,
            history: Vec::new(),
        }
    }

    /// The linear prior mean in normalized units: by the scale
    /// construction (`scale ≈ per-task rate × K × 1.25`), an ideally
    /// linear operator sits exactly on `x / (K · 1.25)`.
    fn prior(&self, tasks: usize) -> f64 {
        tasks as f64 / (self.cfg.max_tasks.max(1) as f64 * 1.25)
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Current normalization scale (≈ estimated max capacity).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The raw `(tasks, capacity_sample)` observation history. Replaying
    /// it through [`OperatorGp::observe`] on a fresh model rebuilds the
    /// exact posterior (scale growth and refits are deterministic in the
    /// observation order), which is how controller checkpoints restore
    /// GP state.
    pub fn history(&self) -> &[(usize, f64)] {
        &self.history
    }

    /// Record a capacity sample observed while running `tasks` tasks.
    /// Non-finite or non-positive samples are ignored (an idle operator
    /// yields no information about its capacity).
    ///
    /// # Errors
    /// [`DragsterError::Gp`] if the posterior update fails numerically; the
    /// offending sample is dropped from the history so the model stays
    /// consistent.
    pub fn observe(&mut self, tasks: usize, capacity_sample: f64) -> Result<(), DragsterError> {
        if !capacity_sample.is_finite() || capacity_sample <= 0.0 {
            return Ok(());
        }
        let tasks = tasks.clamp(1, self.cfg.max_tasks.max(1));
        self.history.push((tasks, capacity_sample));
        // Scale estimate: assume roughly linear scaling from the largest
        // per-task rate seen so far to the full task range, with headroom.
        let per_task = capacity_sample / tasks as f64;
        let implied = per_task * self.cfg.max_tasks as f64 * 1.25;
        let updated = if self.history.len() == 1 || implied > self.scale * 1.5 {
            self.scale = implied.max(self.scale);
            self.refit()
        } else {
            let resid = capacity_sample / self.scale - self.prior(tasks);
            self.gp.observe(&[tasks as f64], resid).map_err(Into::into)
        };
        if let Err(e) = updated {
            self.history.pop();
            return Err(e);
        }
        if let Some(every) = self.cfg.hyper_refit_every {
            if self.history.len().is_multiple_of(every) {
                self.refit_hyperparameters()?;
            }
        }
        Ok(())
    }

    /// Grid-search the SE length scale (and signal variance) by log
    /// marginal likelihood on the residual history, then refit.
    ///
    /// # Errors
    /// [`DragsterError::Gp`] if every hyper-parameter candidate leaves the
    /// kernel matrix numerically indefinite, or the refit itself fails.
    pub fn refit_hyperparameters(&mut self) -> Result<(), DragsterError> {
        if self.history.len() < 4 {
            return Ok(());
        }
        // The grid search factors a fresh Gram matrix per candidate, so it
        // is fit on a sliding window of recent residuals to keep the
        // periodic refit O(W³) instead of growing cubically with history.
        let start = self.history.len().saturating_sub(HYPER_FIT_WINDOW);
        let xs: Vec<Vec<f64>> = self
            .history
            .iter()
            .skip(start)
            .map(|&(t, _)| vec![t as f64])
            .collect();
        let cs: Vec<f64> = self
            .history
            .iter()
            .skip(start)
            .map(|&(t, c)| c / self.scale - self.prior(t))
            .collect();
        let fit = GpHyperFit {
            length_scales: vec![1.0, 2.0, 3.0, 5.0, 8.0],
            signal_vars: vec![0.05, 0.25, 1.0],
        };
        let (l, s2, _) = fit.fit_se(&xs, &cs, self.cfg.noise_var)?;
        // The candidate grids are discrete, so an unchanged winner means an
        // exactly unchanged kernel — skip the full-history rebuild.
        #[allow(clippy::float_cmp)]
        let unchanged = l == self.gp.kernel().length_scale && s2 == self.gp.kernel().signal_var;
        if unchanged {
            return Ok(());
        }
        let grid = self.gp.take_grid();
        self.gp = GpRegressor::new(SquaredExp::with_signal(l, s2), self.cfg.noise_var)
            .with_prior_mean(0.0);
        if let Some(g) = grid {
            self.gp.install_grid(g);
        }
        for &(t, c) in &self.history {
            let resid = c / self.scale - self.prior(t);
            self.gp.observe(&[t as f64], resid)?;
        }
        Ok(())
    }

    fn refit(&mut self) -> Result<(), DragsterError> {
        self.gp.reset();
        for &(tasks, c) in &self.history {
            let resid = c / self.scale - self.prior(tasks);
            self.gp.observe(&[tasks as f64], resid)?;
        }
        Ok(())
    }

    /// Residual posterior at a task count, served from the grid cache when
    /// one is attached (O(t) per query instead of an O(t²) solve) and
    /// bit-identical either way.
    fn raw_posterior(&self, tasks: usize) -> GpPosterior {
        if tasks >= 1 {
            if let Some(p) = self.gp.posterior_grid(tasks - 1) {
                return p;
            }
        }
        self.gp.posterior(&[tasks as f64])
    }

    /// Posterior over the *normalized* capacity at a task count (the
    /// linear prior mean is added back to the residual posterior).
    pub fn posterior(&self, tasks: usize) -> GpPosterior {
        let p = self.raw_posterior(tasks);
        GpPosterior {
            mean: p.mean + self.prior(tasks),
            var: p.var,
        }
    }

    /// Posterior-mean capacity estimate in raw units.
    pub fn capacity_estimate(&self, tasks: usize) -> f64 {
        self.posterior(tasks).mean * self.scale
    }

    /// The extended acquisition `−|μ(x) − y_t| + β σ²(x)` for one
    /// configuration (Eq. 18 / Remark 1), with the target in raw capacity
    /// units and the deficit side weighted by
    /// [`UcbConfig::deficit_weight`].
    pub fn acquisition(&self, tasks: usize, target_capacity: f64, beta: f64) -> f64 {
        let p = self.posterior(tasks);
        let yt = target_capacity / self.scale;
        let diff = p.mean - yt;
        let penalty = if diff >= 0.0 {
            diff
        } else {
            -diff * self.cfg.deficit_weight
        };
        -penalty + beta * p.var
    }

    /// The acquisition over the whole configuration range; index 0 → 1 task.
    pub fn acquisition_table(&self, target_capacity: f64, beta: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.cfg.max_tasks);
        self.acquisition_table_into(target_capacity, beta, &mut out);
        out
    }

    /// Fill `out` with the acquisition over the whole configuration range
    /// (index 0 → 1 task), reusing the buffer's allocation. The
    /// per-candidate invariants — the normalized target `yt` and the
    /// linear-prior slope — are hoisted out of the grid loop, so each
    /// candidate costs one cached posterior lookup and a few flops.
    pub fn acquisition_table_into(&self, target_capacity: f64, beta: f64, out: &mut Vec<f64>) {
        let yt = target_capacity / self.scale;
        let prior_step = 1.0 / (self.cfg.max_tasks.max(1) as f64 * 1.25);
        out.clear();
        out.extend((1..=self.cfg.max_tasks).map(|x| {
            let p = self.raw_posterior(x);
            let mean = p.mean + x as f64 * prior_step;
            let diff = mean - yt;
            let penalty = if diff >= 0.0 {
                diff
            } else {
                -diff * self.cfg.deficit_weight
            };
            -penalty + beta * p.var
        }));
    }

    /// Thompson-sampling table: one coherent draw from the joint posterior
    /// over the whole grid, scored by the (deficit-weighted) distance to
    /// the target. `normals` supplies standard-normal variates.
    ///
    /// # Errors
    /// [`DragsterError::Gp`] if the joint posterior covariance cannot be
    /// factored.
    pub fn thompson_table(
        &self,
        target_capacity: f64,
        normals: impl FnMut() -> f64,
    ) -> Result<Vec<f64>, DragsterError> {
        let grid: Vec<Vec<f64>> = (1..=self.cfg.max_tasks).map(|x| vec![x as f64]).collect();
        let sample = self.gp.sample_posterior(&grid, normals)?;
        let yt = target_capacity / self.scale;
        Ok((0..self.cfg.max_tasks)
            .map(|i| {
                // the GP models residuals; add the linear prior back
                let s = sample.get(i).copied().unwrap_or(0.0) + self.prior(i + 1);
                let diff = s - yt;
                if diff >= 0.0 {
                    -diff
                } else {
                    diff * self.cfg.deficit_weight
                }
            })
            .collect())
    }

    /// `argmax_x A(x)` — ties broken toward fewer tasks (cheaper pods).
    pub fn best_config(&self, target_capacity: f64, beta: f64) -> usize {
        let table = self.acquisition_table(target_capacity, beta);
        let mut best = 0usize;
        let mut best_a = f64::NEG_INFINITY;
        for (i, &a) in table.iter().enumerate() {
            if a > best_a + 1e-12 {
                best = i;
                best_a = a;
            }
        }
        best + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_gp() -> OperatorGp {
        // ground truth: capacity = 100 · tasks, low-noise samples
        let mut g = OperatorGp::new(UcbConfig {
            noise_var: 1e-4,
            ..Default::default()
        });
        for tasks in [1usize, 3, 5, 8, 10] {
            g.observe(tasks, 100.0 * tasks as f64).unwrap();
        }
        g
    }

    #[test]
    fn capacity_estimate_interpolates() {
        let g = trained_gp();
        for tasks in 1..=10usize {
            let est = g.capacity_estimate(tasks);
            let truth = 100.0 * tasks as f64;
            assert!(
                (est - truth).abs() / truth < 0.15,
                "tasks={tasks}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn best_config_tracks_target() {
        let g = trained_gp();
        // with exploration off (β = 0), the best config for a 480-capacity
        // target is 5 tasks (500 is closest among 400/500).
        let x = g.best_config(480.0, 0.0);
        assert!(x == 5, "picked {x}");
        let x2 = g.best_config(950.0, 0.0);
        assert!(x2 >= 9, "picked {x2}");
        let x3 = g.best_config(80.0, 0.0);
        assert!(x3 == 1, "picked {x3}");
    }

    #[test]
    fn exploration_prefers_unseen_configs() {
        let mut g = OperatorGp::new(UcbConfig {
            noise_var: 1e-4,
            ..Default::default()
        });
        // only one observation: far configs have much higher σ²
        g.observe(1, 100.0).unwrap();
        let near = g.acquisition(1, 100.0, 5.0);
        let far = g.acquisition(10, 100.0, 5.0);
        // the far config's huge variance beats the near config's perfect fit
        assert!(far > near, "near {near} far {far}");
    }

    #[test]
    fn no_exploration_prefers_fit() {
        let mut g = OperatorGp::new(UcbConfig {
            noise_var: 1e-4,
            ..Default::default()
        });
        g.observe(1, 100.0).unwrap();
        let near = g.acquisition(1, 100.0, 0.0);
        let far = g.acquisition(10, 100.0, 0.0);
        assert!(near > far);
    }

    #[test]
    fn ignores_degenerate_samples() {
        let mut g = OperatorGp::new(UcbConfig::default());
        g.observe(3, f64::NAN).unwrap();
        g.observe(3, -5.0).unwrap();
        g.observe(3, 0.0).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn rescales_and_refits_when_scale_grows() {
        let mut g = OperatorGp::new(UcbConfig {
            noise_var: 1e-4,
            ..Default::default()
        });
        g.observe(10, 10.0).unwrap(); // implies tiny scale
        let s1 = g.scale();
        g.observe(1, 1000.0).unwrap(); // 100× larger per-task rate
        assert!(g.scale() > s1 * 10.0);
        assert_eq!(g.len(), 2);
        // both observations survive the refit
        let est = g.capacity_estimate(1);
        assert!(est > 100.0, "{est}");
    }

    #[test]
    fn beta_schedule_positive_and_growing() {
        let cfg = UcbConfig::default();
        let b1 = cfg.beta(100, 1);
        let b9 = cfg.beta(100, 9);
        assert!(b1 >= 0.0);
        assert!(b9 > b1);
    }

    #[test]
    fn acquisition_table_matches_pointwise() {
        let g = trained_gp();
        let table = g.acquisition_table(300.0, 1.0);
        assert_eq!(table.len(), 10);
        for (i, &a) in table.iter().enumerate() {
            assert!((a - g.acquisition(i + 1, 300.0, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn hyper_refit_improves_wiggle_fit() {
        // data from a short-length-scale truth: refit should pick a
        // shorter kernel than the default 3.0 and reduce posterior error
        let mut g = OperatorGp::new(UcbConfig {
            noise_var: 1e-3,
            hyper_refit_every: None,
            ..Default::default()
        });
        // saturating truth — curvature the linear prior misses
        let truth = |t: usize| 800.0 * t as f64 / (t as f64 + 2.0);
        for round in 0..3 {
            for t in [1usize, 2, 4, 6, 8, 10] {
                g.observe(t, truth(t) * (1.0 + 0.01 * ((round % 2) as f64 - 0.5)))
                    .unwrap();
            }
        }
        g.refit_hyperparameters().unwrap();
        // LML-chosen hyper-parameters must still fit the curve well —
        // the refit optimizes likelihood, not pointwise error, so we
        // assert accuracy rather than strict improvement.
        let mean_rel_err: f64 = (1..=10)
            .map(|t| (g.capacity_estimate(t) - truth(t)).abs() / truth(t))
            .sum::<f64>()
            / 10.0;
        assert!(mean_rel_err < 0.08, "refit left a poor fit: {mean_rel_err}");
    }

    #[test]
    fn automatic_refit_triggers() {
        let mut g = OperatorGp::new(UcbConfig {
            noise_var: 1e-3,
            hyper_refit_every: Some(5),
            ..Default::default()
        });
        for t in 0..12usize {
            g.observe(t % 10 + 1, 100.0 * (t % 10 + 1) as f64).unwrap();
        }
        // survives the refits and still predicts linearly
        let est = g.capacity_estimate(5);
        assert!((est - 500.0).abs() / 500.0 < 0.2, "{est}");
    }

    #[test]
    fn cached_and_naive_modes_are_bit_identical() {
        // Same observation stream through a cached and an uncached
        // operator model — including scale growth (first sample implies a
        // tiny scale, a later one 50× larger) and periodic hyper refits —
        // must yield bitwise-equal acquisition tables and estimates.
        let mk = |grid_cache| {
            OperatorGp::new(UcbConfig {
                noise_var: 1e-3,
                hyper_refit_every: Some(5),
                grid_cache,
                ..Default::default()
            })
        };
        let mut cached = mk(true);
        let mut naive = mk(false);
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 0..40usize {
            let tasks = (next() % 10 + 1) as usize;
            let boost = if i < 3 { 1.0 } else { 50.0 };
            let cap = boost * tasks as f64 * (80.0 + (next() % 40) as f64);
            cached.observe(tasks, cap).unwrap();
            naive.observe(tasks, cap).unwrap();
            assert_eq!(cached.scale().to_bits(), naive.scale().to_bits());
            let tc = cached.acquisition_table(cap * 1.1, 0.7);
            let tn = naive.acquisition_table(cap * 1.1, 0.7);
            for (a, b) in tc.iter().zip(tn.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "slot {i}: {a} vs {b}");
            }
            for t in 1..=10usize {
                assert_eq!(
                    cached.capacity_estimate(t).to_bits(),
                    naive.capacity_estimate(t).to_bits(),
                    "slot {i} tasks {t}"
                );
            }
        }
    }

    #[test]
    fn clamps_task_range_on_observe() {
        let mut g = OperatorGp::new(UcbConfig {
            max_tasks: 5,
            ..Default::default()
        });
        g.observe(99, 500.0).unwrap();
        assert_eq!(g.len(), 1);
        // stored as 5 tasks
        assert!(g.capacity_estimate(5) > 0.0);
    }
}
