//! Structural and empirical analysis of a topology: the Theorem-1 constants
//! and the concavity/monotonicity assumptions of Section 4.1.

use crate::error::DagError;
use crate::flow::{throughput, throughput_grad};
use crate::topology::{ComponentKind, Topology};

/// Upper bound `H` on every throughput function's value given the source
/// rates (Theorem 1's `h_{i,j} ≤ H`). Computed by propagating per-component
/// output bounds in topological order with capacities removed.
pub fn throughput_upper_bound(topo: &Topology, source_rates: &[f64]) -> Result<f64, DagError> {
    if source_rates.len() != topo.n_sources() {
        return Err(DagError::ArityMismatch {
            what: "source rates",
            expected: topo.n_sources(),
            got: source_rates.len(),
        });
    }
    let n = topo.components().len();
    let mut out_bound: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut in_bound: Vec<Vec<f64>> = topo
        .components()
        .iter()
        .map(|c| vec![0.0; c.preds.len()])
        .collect();

    let pred_pos = |succ: crate::topology::ComponentId,
                    id: crate::topology::ComponentId|
     -> Result<usize, DagError> {
        topo.component(succ)
            .preds
            .iter()
            .position(|p| *p == id)
            .ok_or_else(|| DagError::InconsistentEdge {
                from: topo.component(id).name.clone(),
                to: topo.component(succ).name.clone(),
            })
    };

    let mut h_max: f64 = 0.0;
    for id in topo.topo_order() {
        let c = topo.component(id);
        match c.kind {
            ComponentKind::Source => {
                // Sources occupy the lowest component ids, so the id doubles
                // as the source index (see `Topology` docs).
                let rate = *source_rates
                    .get(id.0)
                    .ok_or_else(|| DagError::MissingInput {
                        component: c.name.clone(),
                    })?;
                for (k, succ) in c.succs.iter().enumerate() {
                    let b = rate * c.alpha[k];
                    out_bound[id.0].push(b);
                    let pos = pred_pos(*succ, id)?;
                    in_bound[succ.0][pos] = b;
                    h_max = h_max.max(b);
                }
            }
            ComponentKind::Operator => {
                let bounds = in_bound[id.0].clone();
                for (k, succ) in c.succs.iter().enumerate() {
                    let b = c.h[k].upper_bound(&bounds);
                    out_bound[id.0].push(b);
                    let pos = pred_pos(*succ, id)?;
                    in_bound[succ.0][pos] = b;
                    h_max = h_max.max(b);
                }
            }
            ComponentKind::Sink => {}
        }
    }
    Ok(h_max)
}

/// Upper bound `G` on `|∂f_t/∂y_i|` (Theorem 1's gradient bound), estimated
/// by sampling gradients on a grid of capacity vectors within
/// `[0, cap_max]^M`.
pub fn gradient_upper_bound(
    topo: &Topology,
    source_rates: &[f64],
    cap_max: f64,
    samples_per_dim: usize,
) -> Result<f64, DagError> {
    let m = topo.n_operators();
    let mut g_max: f64 = 0.0;
    // Latin-style sweep: vary one coordinate at a time around mid-level
    // plus the all-corners of a coarse lattice for small M.
    let mid = vec![cap_max / 2.0; m];
    let (_, g) = throughput_grad(topo, source_rates, &mid)?;
    g_max = g.iter().fold(g_max, |a, &b| a.max(b.abs()));
    for i in 0..m {
        for s in 0..samples_per_dim {
            let mut caps = mid.clone();
            caps[i] = cap_max * (s as f64 + 0.5) / samples_per_dim as f64;
            let (_, g) = throughput_grad(topo, source_rates, &caps)?;
            g_max = g.iter().fold(g_max, |a, &b| a.max(b.abs()));
        }
    }
    Ok(g_max)
}

/// Report of an empirical check of the Section-4.1 assumptions on `f_t(y)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssumptionReport {
    /// Largest observed violation of monotonicity (0 when monotone).
    pub monotonicity_violation: f64,
    /// Largest observed violation of midpoint concavity (0 when concave).
    pub concavity_violation: f64,
    /// Number of sampled triples.
    pub samples: usize,
}

impl AssumptionReport {
    /// True when both assumptions held on every sample (within `tol`).
    pub fn holds(&self, tol: f64) -> bool {
        self.monotonicity_violation <= tol && self.concavity_violation <= tol
    }
}

/// Empirically verify that `y ↦ f_t(y)` is increasing and midpoint-concave
/// along random segments of the capacity box `[0, cap_max]^M`, using a
/// deterministic low-discrepancy sweep (no RNG dependency here).
pub fn check_assumptions(
    topo: &Topology,
    source_rates: &[f64],
    cap_max: f64,
    samples: usize,
) -> Result<AssumptionReport, DagError> {
    let m = topo.n_operators();
    let mut mono: f64 = 0.0;
    let mut conc: f64 = 0.0;
    // Weyl sequence for quasi-random points.
    let phi = 0.6180339887498949_f64;
    let mut u = 0.5_f64;
    let mut point = |k: usize| -> Vec<f64> {
        (0..m)
            .map(|j| {
                u = (u + phi * ((k * m + j + 1) as f64)).fract();
                u * cap_max
            })
            .collect()
    };
    for k in 0..samples {
        let a = point(3 * k);
        let b = point(3 * k + 1);
        // Monotonicity: f(max(a,b)) >= f(a), f(b).
        let hi: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x.max(*y)).collect();
        let fa = throughput(topo, source_rates, &a)?;
        let fb = throughput(topo, source_rates, &b)?;
        let fhi = throughput(topo, source_rates, &hi)?;
        mono = mono.max(fa - fhi).max(fb - fhi);
        // Midpoint concavity: f((a+b)/2) >= (f(a)+f(b))/2.
        let midp: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| 0.5 * (x + y)).collect();
        let fm = throughput(topo, source_rates, &midp)?;
        conc = conc.max(0.5 * (fa + fb) - fm);
    }
    Ok(AssumptionReport {
        monotonicity_violation: mono,
        concavity_violation: conc,
        samples,
    })
}

/// Rank operators by `∂f/∂y_i` (descending): the head of the list is the
/// operator whose capacity increase improves the application throughput the
/// most — the gradient view of "the bottleneck operator".
pub fn rank_bottlenecks(
    topo: &Topology,
    source_rates: &[f64],
    capacities: &[f64],
) -> Result<Vec<(usize, f64)>, DagError> {
    let (_, g) = throughput_grad(topo, source_rates, capacities)?;
    let mut ranked: Vec<(usize, f64)> = g.into_iter().enumerate().collect();
    // total_cmp: NaN-safe, total order — ties broken by index for
    // determinism.
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thrufn::ThroughputFn;
    use crate::topology::TopologyBuilder;

    fn wordcount() -> Topology {
        TopologyBuilder::new()
            .source("src")
            .operator("map")
            .operator("shuffle")
            .sink("out")
            .edge("src", "map")
            .edge_with(
                "map",
                "shuffle",
                ThroughputFn::Linear { weights: vec![1.0] },
                1.0,
            )
            .edge("shuffle", "out")
            .build()
            .unwrap()
    }

    #[test]
    fn upper_bound_chain_is_source_rate() {
        let t = wordcount();
        assert!((throughput_upper_bound(&t, &[120.0]).unwrap() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_respects_selectivity() {
        let t = TopologyBuilder::new()
            .source("src")
            .operator("filter")
            .sink("out")
            .edge("src", "filter")
            .edge_with(
                "filter",
                "out",
                ThroughputFn::Linear {
                    weights: vec![0.25],
                },
                1.0,
            )
            .build()
            .unwrap();
        // max h value is on the src→filter edge (rate itself)
        assert!((throughput_upper_bound(&t, &[100.0]).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tanh_bound_is_scale() {
        let t = TopologyBuilder::new()
            .source("src")
            .operator("sat")
            .sink("out")
            .edge("src", "sat")
            .edge_with(
                "sat",
                "out",
                ThroughputFn::Tanh {
                    scale: 7.0,
                    weights: vec![0.001],
                },
                1.0,
            )
            .build()
            .unwrap();
        // src edge bound is 5; sat edge bound is 7 ⇒ overall 7.
        assert_eq!(throughput_upper_bound(&t, &[5.0]).unwrap(), 7.0);
    }

    #[test]
    fn gradient_bound_is_at_most_one_for_chain() {
        let t = wordcount();
        let g = gradient_upper_bound(&t, &[100.0], 200.0, 8).unwrap();
        assert!(g <= 1.0 + 1e-9);
        assert!(g > 0.0);
    }

    #[test]
    fn assumptions_hold_on_wordcount() {
        let t = wordcount();
        let rep = check_assumptions(&t, &[100.0], 200.0, 200).unwrap();
        assert!(rep.holds(1e-9), "{rep:?}");
        assert_eq!(rep.samples, 200);
    }

    #[test]
    fn assumptions_hold_with_tanh_and_join() {
        let t = TopologyBuilder::new()
            .source("a")
            .source("b")
            .operator("join")
            .operator("post")
            .sink("out")
            .edge("a", "join")
            .edge("b", "join")
            .edge_with(
                "join",
                "post",
                ThroughputFn::WeightedMin {
                    weights: vec![1.0, 1.0],
                },
                1.0,
            )
            .edge_with(
                "post",
                "out",
                ThroughputFn::Tanh {
                    scale: 500.0,
                    weights: vec![0.002],
                },
                1.0,
            )
            .build()
            .unwrap();
        let rep = check_assumptions(&t, &[80.0, 90.0], 300.0, 200).unwrap();
        assert!(rep.holds(1e-9), "{rep:?}");
    }

    #[test]
    fn bottleneck_ranking_orders_by_gradient() {
        let t = wordcount();
        // shuffle (cap 10) is the binding constraint.
        let r = rank_bottlenecks(&t, &[100.0], &[50.0, 10.0]).unwrap();
        assert_eq!(r[0].0, 1);
        assert_eq!(r[0].1, 1.0);
        assert_eq!(r[1].1, 0.0);
    }
}
