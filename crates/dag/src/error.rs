//! Structured errors for flow propagation and topology mutation.
//!
//! The flow solver sits on the controller's per-slot hot path; a panic
//! there aborts an entire experiment run. Every structural inconsistency
//! is instead reported as a [`DagError`] so callers (controller, simulator,
//! bench harness) can surface it as data.

use crate::topology::TopologyError;
use std::fmt;

/// Errors produced by flow propagation, analysis, and topology mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// Topology construction or validation failed.
    Topology(TopologyError),
    /// A slice argument's length doesn't match the topology.
    ArityMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// An operator component has no capacity index (not assigned by the
    /// builder — indicates a hand-constructed, unvalidated topology).
    MissingCapacityIndex { component: String },
    /// A component was visited before all of its inputs were ready — the
    /// stored topological order is inconsistent with the edges.
    MissingInput { component: String },
    /// An edge's endpoints disagree (`to` does not list `from` as a
    /// predecessor).
    InconsistentEdge { from: String, to: String },
    /// The sink receives no flow — no path from any source reaches it.
    UnreachableSink,
    /// A throughput function failed validation when mutating a topology.
    InvalidThroughputFn { component: String, reason: String },
    /// A mutation targeted a component of the wrong kind or with a
    /// mismatched edge count.
    InvalidMutation { component: String, reason: String },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Topology(e) => write!(f, "invalid topology: {e}"),
            DagError::ArityMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} entries, got {got}"),
            DagError::MissingCapacityIndex { component } => {
                write!(f, "operator {component:?} has no capacity index")
            }
            DagError::MissingInput { component } => {
                write!(
                    f,
                    "component {component:?} visited before its inputs were ready"
                )
            }
            DagError::InconsistentEdge { from, to } => {
                write!(f, "edge {from:?} -> {to:?} has inconsistent endpoints")
            }
            DagError::UnreachableSink => write!(f, "sink receives no flow"),
            DagError::InvalidThroughputFn { component, reason } => {
                write!(f, "invalid throughput function on {component:?}: {reason}")
            }
            DagError::InvalidMutation { component, reason } => {
                write!(f, "invalid mutation of {component:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for DagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DagError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for DagError {
    fn from(e: TopologyError) -> DagError {
        DagError::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DagError::ArityMismatch {
            what: "source rates",
            expected: 2,
            got: 1,
        };
        assert!(e.to_string().contains("source rates"));
        let e = DagError::InconsistentEdge {
            from: "a".into(),
            to: "b".into(),
        };
        assert!(e.to_string().contains("\"a\""));
        assert!(e.to_string().contains("\"b\""));
    }
}
