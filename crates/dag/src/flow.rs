//! Forward flow propagation: the application throughput function `f_t(y)`
//! (Eq. 4 composed over the DAG) and its gradient.

use crate::error::DagError;
use crate::thrufn::FlowScalar;
use crate::topology::{ComponentId, ComponentKind, Topology};
use dragster_autodiff::Tape;

/// The complete flow solution for one evaluation of the DAG.
///
/// All vectors are indexed by component id; the inner vectors follow the
/// component's successor (for outputs) or predecessor (for inputs) order.
#[derive(Clone, Debug)]
pub struct FlowResult<S> {
    /// Actual emitted flow per successor edge: `e_j^i` of Eq. 4.
    pub edge_out: Vec<Vec<S>>,
    /// Desired (capacity-unlimited) output per successor edge:
    /// `h_{i,j}(ē_i)`; for sources this is the α-split offered rate.
    pub desired_out: Vec<Vec<S>>,
    /// Received throughput vector `ē_i` per component (predecessor order).
    pub received: Vec<Vec<S>>,
    /// Sink ingest — the application throughput `f_t(y)`.
    pub throughput: S,
}

impl<S: FlowScalar> FlowResult<S> {
    /// Total desired output `Σ_{j∈S_i} h_{i,j}(ē_i)` of a component — the
    /// left term of the buffer soft-constraint `l_i` (Eq. 11).
    pub fn offered_load(&self, id: ComponentId) -> Option<S> {
        let outs = &self.desired_out[id.0];
        let mut it = outs.iter().copied();
        let first = it.next()?;
        Some(it.fold(first, |a, b| a.fs_add(b)))
    }

    /// Total actual output of a component.
    pub fn actual_output(&self, id: ComponentId) -> Option<S> {
        let outs = &self.edge_out[id.0];
        let mut it = outs.iter().copied();
        let first = it.next()?;
        Some(it.fold(first, |a, b| a.fs_add(b)))
    }

    /// Total received throughput of a component.
    pub fn total_received(&self, id: ComponentId) -> Option<S> {
        let ins = &self.received[id.0];
        let mut it = ins.iter().copied();
        let first = it.next()?;
        Some(it.fold(first, |a, b| a.fs_add(b)))
    }

    /// Offered load per *operator*, in capacity-index order — the vector
    /// needed to evaluate every `l_i` at once. Errors if an operator has no
    /// successor edges (a validated topology never does).
    pub fn operator_offered_loads(&self, topo: &Topology) -> Result<Vec<S>, DagError> {
        topo.operator_ids()
            .iter()
            .map(|&id| {
                self.offered_load(id)
                    .ok_or_else(|| DagError::InvalidMutation {
                        component: topo.component(id).name.clone(),
                        reason: "operator has no successor edges".into(),
                    })
            })
            .collect()
    }
}

/// Propagate flows through the DAG (Eq. 4 applied in topological order).
///
/// * `source_rates` — offered rate per source, in [`Topology::source_ids`]
///   order (length `N`).
/// * `capacities` — service capacity per operator, in capacity-index order
///   (length `M`).
///
/// Generic over [`FlowScalar`]: call with `f64` for the simulation fast
/// path, or with autodiff [`Var`](dragster_autodiff::Var)s to obtain a
/// differentiable throughput.
///
/// Errors when the slice lengths don't match the topology or the topology's
/// internal structure is inconsistent (possible only for hand-constructed,
/// unvalidated topologies).
pub fn propagate<S: FlowScalar>(
    topo: &Topology,
    source_rates: &[S],
    capacities: &[S],
) -> Result<FlowResult<S>, DagError> {
    if source_rates.len() != topo.n_sources() {
        return Err(DagError::ArityMismatch {
            what: "source rates",
            expected: topo.n_sources(),
            got: source_rates.len(),
        });
    }
    if capacities.len() != topo.n_operators() {
        return Err(DagError::ArityMismatch {
            what: "capacities",
            expected: topo.n_operators(),
            got: capacities.len(),
        });
    }

    let n = topo.components().len();
    let mut edge_out: Vec<Vec<S>> = vec![Vec::new(); n];
    let mut desired_out: Vec<Vec<S>> = vec![Vec::new(); n];
    let mut received: Vec<Vec<S>> = vec![Vec::new(); n];

    // received[j] must follow j's predecessor order; pre-size with None.
    let mut recv_slots: Vec<Vec<Option<S>>> = topo
        .components()
        .iter()
        .map(|c| vec![None; c.preds.len()])
        .collect();

    let mut source_seen = 0usize;
    for id in topo.topo_order() {
        let c = topo.component(id);
        match c.kind {
            ComponentKind::Source => {
                // Sources occupy the lowest component ids in declaration
                // order, so the id doubles as the source index.
                let rate = *source_rates
                    .get(id.0)
                    .ok_or_else(|| DagError::MissingInput {
                        component: c.name.clone(),
                    })?;
                source_seen += 1;
                for (k, succ) in c.succs.iter().enumerate() {
                    let out = rate.fs_scale(c.alpha[k]);
                    desired_out[id.0].push(out);
                    edge_out[id.0].push(out);
                    let pos = pred_position(topo, *succ, id)?;
                    recv_slots[succ.0][pos] = Some(out);
                }
            }
            ComponentKind::Operator => {
                let inputs = take_inputs(&recv_slots[id.0], &c.name)?;
                let ci = c
                    .capacity_index
                    .ok_or_else(|| DagError::MissingCapacityIndex {
                        component: c.name.clone(),
                    })?;
                let y = capacities[ci];
                for (k, succ) in c.succs.iter().enumerate() {
                    let desired = c.h[k].eval(&inputs);
                    let actual = y.fs_scale(c.alpha[k]).fs_min(desired);
                    desired_out[id.0].push(desired);
                    edge_out[id.0].push(actual);
                    let pos = pred_position(topo, *succ, id)?;
                    recv_slots[succ.0][pos] = Some(actual);
                }
                received[id.0] = inputs;
            }
            ComponentKind::Sink => {
                received[id.0] = take_inputs(&recv_slots[id.0], &c.name)?;
            }
        }
    }
    debug_assert_eq!(source_seen, topo.n_sources());

    let sink = topo.sink();
    let throughput = {
        let ins = &received[sink.0];
        let mut it = ins.iter().copied();
        let first = it.next().ok_or(DagError::UnreachableSink)?;
        it.fold(first, |a, b| a.fs_add(b))
    };

    Ok(FlowResult {
        edge_out,
        desired_out,
        received,
        throughput,
    })
}

fn take_inputs<S: FlowScalar>(slots: &[Option<S>], name: &str) -> Result<Vec<S>, DagError> {
    slots
        .iter()
        .map(|s| {
            s.ok_or_else(|| DagError::MissingInput {
                component: name.to_string(),
            })
        })
        .collect()
}

fn pred_position(topo: &Topology, of: ComponentId, pred: ComponentId) -> Result<usize, DagError> {
    topo.component(of)
        .preds
        .iter()
        .position(|p| *p == pred)
        .ok_or_else(|| DagError::InconsistentEdge {
            from: topo.component(pred).name.clone(),
            to: topo.component(of).name.clone(),
        })
}

/// The application throughput `f_t(y)` — fast `f64` path.
pub fn throughput(
    topo: &Topology,
    source_rates: &[f64],
    capacities: &[f64],
) -> Result<f64, DagError> {
    Ok(propagate(topo, source_rates, capacities)?.throughput)
}

/// `f_t(y)` together with its (sub)gradient `∂f/∂y` via reverse-mode AD —
/// the bottleneck-identification primitive (the paper's PyTorch-autograd
/// role).
pub fn throughput_grad(
    topo: &Topology,
    source_rates: &[f64],
    capacities: &[f64],
) -> Result<(f64, Vec<f64>), DagError> {
    let tape = Tape::new();
    let caps: Vec<_> = capacities.iter().map(|&c| tape.var(c)).collect();
    let rates: Vec<_> = source_rates.iter().map(|&r| tape.constant(r)).collect();
    let res = propagate(topo, &rates, &caps)?;
    let grads = res.throughput.backward();
    Ok((res.throughput.value(), grads.wrt_slice(&caps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thrufn::ThroughputFn;
    use crate::topology::TopologyBuilder;

    fn chain(selectivity: f64) -> Topology {
        TopologyBuilder::new()
            .source("src")
            .operator("map")
            .operator("reduce")
            .sink("out")
            .edge("src", "map")
            .edge_with(
                "map",
                "reduce",
                ThroughputFn::Linear {
                    weights: vec![selectivity],
                },
                1.0,
            )
            .edge("reduce", "out")
            .build()
            .unwrap()
    }

    fn thru(topo: &Topology, rates: &[f64], caps: &[f64]) -> f64 {
        throughput(topo, rates, caps).unwrap()
    }

    #[test]
    fn unconstrained_chain_passes_rate_through() {
        let t = chain(1.0);
        let f = thru(&t, &[100.0], &[1e9, 1e9]);
        assert!((f - 100.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_scales_throughput() {
        let t = chain(0.5);
        let f = thru(&t, &[100.0], &[1e9, 1e9]);
        assert!((f - 50.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_truncates() {
        let t = chain(1.0);
        // map limited to 30: downstream sees 30.
        assert!((thru(&t, &[100.0], &[30.0, 1e9]) - 30.0).abs() < 1e-9);
        // reduce limited to 20.
        assert!((thru(&t, &[100.0], &[1e9, 20.0]) - 20.0).abs() < 1e-9);
        // bottleneck is the min.
        assert!((thru(&t, &[100.0], &[30.0, 20.0]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn gradient_identifies_bottleneck() {
        let t = chain(1.0);
        // reduce (op 1) is the bottleneck: only its capacity matters.
        let (f, g) = throughput_grad(&t, &[100.0], &[50.0, 20.0]).unwrap();
        assert!((f - 20.0).abs() < 1e-9);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[1], 1.0);
        // map is the bottleneck.
        let (_, g2) = throughput_grad(&t, &[100.0], &[10.0, 80.0]).unwrap();
        assert_eq!(g2[0], 1.0);
        assert_eq!(g2[1], 0.0);
    }

    #[test]
    fn offered_load_vs_actual_output() {
        let t = chain(1.0);
        let r = propagate(&t, &[100.0], &[30.0, 1e9]).unwrap();
        let map = t.by_name("map").unwrap();
        assert_eq!(r.offered_load(map).unwrap(), 100.0);
        assert_eq!(r.actual_output(map).unwrap(), 30.0);
        assert_eq!(r.total_received(map).unwrap(), 100.0);
        let loads = r.operator_offered_loads(&t).unwrap();
        assert_eq!(loads[0], 100.0);
        assert_eq!(loads[1], 30.0); // reduce receives only what map emitted
    }

    #[test]
    fn diamond_topology_merges_flows() {
        let t = TopologyBuilder::new()
            .source("src")
            .operator("split")
            .operator("left")
            .operator("right")
            .operator("merge")
            .sink("out")
            .edge("src", "split")
            .edge_with(
                "split",
                "left",
                ThroughputFn::Linear { weights: vec![0.5] },
                0.5,
            )
            .edge_with(
                "split",
                "right",
                ThroughputFn::Linear { weights: vec![0.5] },
                0.5,
            )
            .edge("left", "merge")
            .edge("right", "merge")
            .edge("merge", "out")
            .build()
            .unwrap();
        // All capacities huge: split halves the stream (h weight 0.5 per
        // branch, α = 0.5 capacity share each); identity h on left/right
        // forwards everything; merge's default h sums its two inputs.
        let caps = vec![1e12; 4];
        let f = thru(&t, &[100.0], &caps);
        assert!((f - 100.0).abs() < 1e-6);
        // Starve one branch: left capacity 10 → sink sees 10 + 50.
        let f2 = thru(&t, &[100.0], &[1e12, 10.0, 1e12, 1e12]);
        assert!((f2 - 60.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_min_join_tracks_slower_input() {
        let t = TopologyBuilder::new()
            .source("bids")
            .source("auctions")
            .operator("join")
            .sink("out")
            .edge("bids", "join")
            .edge("auctions", "join")
            .edge_with(
                "join",
                "out",
                ThroughputFn::WeightedMin {
                    weights: vec![1.0, 1.0],
                },
                1.0,
            )
            .build()
            .unwrap();
        let f = thru(&t, &[100.0, 30.0], &[1e9]);
        assert!((f - 30.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_monotone_in_capacity() {
        let t = chain(1.0);
        let mut prev = 0.0;
        for cap in [5.0, 10.0, 20.0, 50.0, 200.0] {
            let f = thru(&t, &[100.0], &[cap, 100.0]);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn f64_and_autodiff_paths_agree() {
        let t = chain(0.8);
        let rates = [123.0];
        let caps = [47.0, 200.0];
        let plain = thru(&t, &rates, &caps);
        let (traced, _) = throughput_grad(&t, &rates, &caps).unwrap();
        assert!((plain - traced).abs() < 1e-12);
    }

    #[test]
    fn wrong_capacity_length_errors() {
        let t = chain(1.0);
        let err = throughput(&t, &[100.0], &[1.0]).unwrap_err();
        assert!(matches!(
            err,
            DagError::ArityMismatch {
                what: "capacities",
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn wrong_source_rate_length_errors() {
        let t = chain(1.0);
        let err = throughput(&t, &[100.0, 5.0], &[1.0, 1.0]).unwrap_err();
        assert!(matches!(
            err,
            DagError::ArityMismatch {
                what: "source rates",
                ..
            }
        ));
    }

    #[test]
    fn multi_source_rates_sum() {
        let t = TopologyBuilder::new()
            .source("a")
            .source("b")
            .operator("merge")
            .sink("out")
            .edge("a", "merge")
            .edge("b", "merge")
            .edge("merge", "out")
            .build()
            .unwrap();
        let f = thru(&t, &[10.0, 25.0], &[1e9]);
        assert!((f - 35.0).abs() < 1e-9);
    }
}
