//! Theorem 2: online estimation of the throughput functions `h_{i,j}`.
//!
//! Theorem 1 assumes `h_{i,j}` is known exactly; Theorem 2 shows the same
//! regret order holds when Dragster runs on a *predicted* throughput
//! function whose error vanishes as `o(1/√T)` (Eq. 31). Section 4.1
//! sketches the mechanism: "provide an arbitrary concave function … as an
//! initial starting point and learn its parameters via regression in an
//! online manner".
//!
//! [`SelectivityEstimator`] implements that: the DAG *structure* is known
//! (the developer declares the graph), the per-operator linear weights
//! `k⃗_i` (selectivities) are not. Each slot it takes the observed
//! per-edge input rates `ē_i` and the operator's output, and refines the
//! weights by projected least-squares gradient steps — observations where
//! the operator was capacity-truncated (saturated) are skipped, because
//! there the output reflects `y_i`, not `h_i(ē_i)` (Eq. 4). Averaged
//! observations make the estimate consistent, so the error decays like
//! `O(1/√T)` and Theorem 2 applies (the `theorem2` bench checks the
//! resulting regret empirically).

use crate::error::DagError;
use crate::thrufn::ThroughputFn;
use crate::topology::{ComponentKind, Topology};

/// Online least-squares estimator of per-operator linear selectivities,
/// implemented as textbook recursive least squares (RLS) with a
/// non-negativity clamp — exact for the linear model, `O(d²)` per update.
///
/// ```
/// use dragster_dag::{HObservation, SelectivityEstimator, TopologyBuilder};
///
/// let topo = TopologyBuilder::new()
///     .source("s").operator("filter").sink("k")
///     .edge("s", "filter").edge("filter", "k")
///     .build().unwrap();
/// let mut est = SelectivityEstimator::new(topo, 1.0);
/// for i in 0..20 {
///     let x = 50.0 + i as f64;
///     est.ingest(&HObservation { operator: 0, inputs: &[x], output: 0.25 * x });
/// }
/// assert!((est.weights()[0][0] - 0.25).abs() < 0.01);
/// ```
pub struct SelectivityEstimator {
    structure: Topology,
    /// Estimated aggregate-output weights per operator (capacity-index
    /// order), arity = the operator's predecessor count.
    weights: Vec<Vec<f64>>,
    /// RLS inverse-covariance matrices, row-major `d × d` per operator.
    p_mats: Vec<Vec<f64>>,
    /// Observations accepted per operator.
    n_obs: Vec<usize>,
}

/// Checkpointable copy of the estimator's learned state (everything but
/// the DAG structure, which the restore target already carries).
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatorSnapshot {
    pub weights: Vec<Vec<f64>>,
    pub p_mats: Vec<Vec<f64>>,
    pub n_obs: Vec<usize>,
}

/// One per-operator observation: the received-rate vector and the
/// (unsaturated) total output rate. Borrows the rate slice so the
/// per-slot ingest path never copies it.
#[derive(Clone, Copy, Debug)]
pub struct HObservation<'a> {
    /// Capacity index of the operator.
    pub operator: usize,
    /// Per-predecessor-edge input rates.
    pub inputs: &'a [f64],
    /// Total output rate, *not* capacity-truncated.
    pub output: f64,
}

impl SelectivityEstimator {
    /// Start from a known structure with every weight at `initial_weight`
    /// (the "arbitrary starting point" of Section 4.1; 1.0 = assume
    /// pass-through).
    pub fn new(structure: Topology, initial_weight: f64) -> SelectivityEstimator {
        let dims: Vec<usize> = structure
            .operator_ids()
            .iter()
            .map(|id| structure.component(*id).preds.len())
            .collect();
        let weights = dims.iter().map(|&d| vec![initial_weight; d]).collect();
        // P₀ = κ·I with a large κ: weak prior on the initial weights.
        let p_mats = dims
            .iter()
            .map(|&d| {
                let mut p = vec![0.0; d * d];
                for i in 0..d {
                    p[i * d + i] = 1e2;
                }
                p
            })
            .collect();
        let n = structure.n_operators();
        SelectivityEstimator {
            structure,
            weights,
            p_mats,
            n_obs: vec![0; n],
        }
    }

    /// The known DAG structure.
    pub fn structure(&self) -> &Topology {
        &self.structure
    }

    /// Current weight estimates (capacity-index order).
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Observations accepted for an operator.
    pub fn observations(&self, operator: usize) -> usize {
        self.n_obs[operator]
    }

    /// Ingest one unsaturated observation — one RLS update:
    /// `g = P x / (1 + xᵀ P x)`, `w ← w + g (y − wᵀx)`,
    /// `P ← P − g xᵀ P`, with weights clamped non-negative (selectivities
    /// cannot be negative; monotonicity of `h`). The least-squares
    /// estimate is consistent, so the parameter error decays like
    /// `O(1/√n)` — exactly the Eq.-31 rate Theorem 2 needs. Degenerate
    /// inputs are ignored.
    pub fn ingest(&mut self, obs: &HObservation<'_>) {
        let d = self.weights[obs.operator].len();
        assert_eq!(d, obs.inputs.len(), "observation arity");
        let norm2: f64 = obs.inputs.iter().map(|x| x * x).sum();
        if !norm2.is_finite() || norm2 < 1e-12 || !obs.output.is_finite() || obs.output < 0.0 {
            return;
        }
        self.n_obs[obs.operator] += 1;
        // normalize the regressor for numeric stability (scale-free RLS)
        let scale = norm2.sqrt();
        let x: Vec<f64> = obs.inputs.iter().map(|v| v / scale).collect();
        let y = obs.output / scale;
        let p = &mut self.p_mats[obs.operator];
        let w = &mut self.weights[obs.operator];
        // px = P x
        let mut px = vec![0.0; d];
        for i in 0..d {
            for j in 0..d {
                px[i] += p[i * d + j] * x[j];
            }
        }
        let denom = 1.0 + x.iter().zip(px.iter()).map(|(a, b)| a * b).sum::<f64>();
        let g: Vec<f64> = px.iter().map(|v| v / denom).collect();
        let err = y - w.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>();
        for i in 0..d {
            w[i] = (w[i] + g[i] * err).max(0.0);
        }
        // P ← P − g (xᵀP); xᵀP = pxᵀ by symmetry of P
        for i in 0..d {
            for j in 0..d {
                p[i * d + j] -= g[i] * px[j];
            }
        }
    }

    /// Copy the learned state (weights, RLS covariances, acceptance
    /// counts) for checkpointing. The DAG structure is *not* included —
    /// a restore target is constructed from the same topology.
    pub fn snapshot(&self) -> EstimatorSnapshot {
        EstimatorSnapshot {
            weights: self.weights.clone(),
            p_mats: self.p_mats.clone(),
            n_obs: self.n_obs.clone(),
        }
    }

    /// Overwrite the learned state from a snapshot, validating that every
    /// per-operator arity matches the current structure (a snapshot taken
    /// against a different DAG must not silently corrupt the estimator).
    ///
    /// # Errors
    /// [`DagError::InvalidMutation`] when the operator count or any
    /// weight/covariance arity disagrees with the structure.
    pub fn restore(&mut self, snap: EstimatorSnapshot) -> Result<(), DagError> {
        let shape_err = |reason: String| DagError::InvalidMutation {
            component: "selectivity estimator".into(),
            reason,
        };
        let n = self.structure.n_operators();
        if snap.weights.len() != n || snap.p_mats.len() != n || snap.n_obs.len() != n {
            return Err(shape_err(format!(
                "snapshot covers {} operators, structure has {n}",
                snap.weights.len()
            )));
        }
        for (i, (w, p)) in snap.weights.iter().zip(snap.p_mats.iter()).enumerate() {
            let d = self.weights.get(i).map_or(0, Vec::len);
            if w.len() != d || p.len() != d * d {
                return Err(shape_err(format!(
                    "operator {i}: snapshot arity {} vs structure arity {d}",
                    w.len()
                )));
            }
            if w.iter().chain(p.iter()).any(|v| !v.is_finite()) {
                return Err(shape_err(format!(
                    "operator {i}: non-finite snapshot value"
                )));
            }
        }
        self.weights = snap.weights;
        self.p_mats = snap.p_mats;
        self.n_obs = snap.n_obs;
        Ok(())
    }

    /// Materialize a topology with the current weight estimates: every
    /// operator's per-edge `h` becomes `Linear` with the aggregate weights
    /// scaled by that edge's α share (exact for single-successor
    /// operators, which covers the paper's benchmarks). Errors only if a
    /// derived function fails validation (e.g. a non-finite weight slipped
    /// in), which indicates a corrupted estimator state.
    pub fn materialize(&self) -> Result<Topology, DagError> {
        let mut topo = self.structure.clone();
        apply_linear_weights(&mut topo, &self.weights)?;
        Ok(topo)
    }

    /// Largest relative weight error against a ground-truth topology whose
    /// operators use `Linear` throughput functions (test/diagnostic aid).
    pub fn max_relative_error(&self, truth: &Topology) -> f64 {
        let mut worst = 0.0_f64;
        for (ci, id) in truth.operator_ids().iter().enumerate() {
            let c = truth.component(*id);
            // aggregate truth weights: sum across successor edges
            let mut agg = vec![0.0; c.preds.len()];
            for h in &c.h {
                if let ThroughputFn::Linear { weights } = h {
                    for (a, w) in agg.iter_mut().zip(weights.iter()) {
                        *a += w;
                    }
                }
            }
            for (est, tru) in self.weights[ci].iter().zip(agg.iter()) {
                if *tru > 1e-9 {
                    worst = worst.max((est - tru).abs() / tru);
                }
            }
        }
        worst
    }
}

/// Overwrite every operator's throughput functions with `Linear` forms
/// derived from aggregate weights (α-share split across successor edges).
pub(crate) fn apply_linear_weights(
    topo: &mut Topology,
    agg_weights: &[Vec<f64>],
) -> Result<(), DagError> {
    let op_ids = topo.operator_ids();
    for (ci, id) in op_ids.iter().enumerate() {
        let alphas = topo.component(*id).alpha.clone();
        let n_succ = alphas.len();
        let hs: Vec<ThroughputFn> = (0..n_succ)
            .map(|k| ThroughputFn::Linear {
                weights: agg_weights[ci].iter().map(|w| w * alphas[k]).collect(),
            })
            .collect();
        topo.set_operator_h(*id, hs)?;
    }
    Ok(())
}

impl Topology {
    /// Replace an operator's per-edge throughput functions (used by the
    /// Theorem-2 estimator when materializing learned parameters).
    ///
    /// Errors if the component is not an operator, the count doesn't match
    /// its successor list, or any function fails validation.
    pub fn set_operator_h(
        &mut self,
        id: crate::topology::ComponentId,
        hs: Vec<ThroughputFn>,
    ) -> Result<(), DagError> {
        let n_preds = {
            let c = self.component(id);
            if c.kind != ComponentKind::Operator {
                return Err(DagError::InvalidMutation {
                    component: c.name.clone(),
                    reason: "h only applies to operators".into(),
                });
            }
            if hs.len() != c.succs.len() {
                return Err(DagError::InvalidMutation {
                    component: c.name.clone(),
                    reason: format!(
                        "one h per successor edge: got {}, expected {}",
                        hs.len(),
                        c.succs.len()
                    ),
                });
            }
            c.preds.len()
        };
        for h in &hs {
            h.validate(n_preds)
                .map_err(|reason| DagError::InvalidThroughputFn {
                    component: self.component(id).name.clone(),
                    reason,
                })?;
        }
        self.component_mut(id).h = hs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn truth() -> Topology {
        TopologyBuilder::new()
            .source("s")
            .operator("filter")
            .operator("expand")
            .sink("k")
            .edge("s", "filter")
            .edge_with(
                "filter",
                "expand",
                ThroughputFn::Linear { weights: vec![0.3] },
                1.0,
            )
            .edge_with(
                "expand",
                "k",
                ThroughputFn::Linear { weights: vec![1.7] },
                1.0,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn estimator_recovers_selectivities() {
        let t = truth();
        let mut est = SelectivityEstimator::new(t.clone(), 1.0);
        // feed noisy unsaturated observations
        let mut noise = 0.013_f64;
        for k in 0..200 {
            let x = 50.0 + (k % 7) as f64 * 10.0;
            noise = -noise;
            est.ingest(&HObservation {
                operator: 0,
                inputs: &[x],
                output: 0.3 * x * (1.0 + noise),
            });
            est.ingest(&HObservation {
                operator: 1,
                inputs: &[x],
                output: 1.7 * x * (1.0 - noise),
            });
        }
        assert!(
            est.max_relative_error(&t) < 0.02,
            "weights {:?}",
            est.weights()
        );
        assert_eq!(est.observations(0), 200);
    }

    #[test]
    fn materialized_topology_matches_truth_after_learning() {
        let t = truth();
        let mut est = SelectivityEstimator::new(t.clone(), 1.0);
        for k in 0..300 {
            let x = 40.0 + (k % 5) as f64 * 15.0;
            est.ingest(&HObservation {
                operator: 0,
                inputs: &[x],
                output: 0.3 * x,
            });
            est.ingest(&HObservation {
                operator: 1,
                inputs: &[x],
                output: 1.7 * x,
            });
        }
        let learned = est.materialize().unwrap();
        let caps = vec![1e9, 1e9];
        let f_truth = crate::flow::throughput(&t, &[100.0], &caps).unwrap();
        let f_learn = crate::flow::throughput(&learned, &[100.0], &caps).unwrap();
        assert!(
            (f_truth - f_learn).abs() / f_truth < 0.01,
            "{f_truth} vs {f_learn}"
        );
    }

    #[test]
    fn error_decays_with_observations() {
        let t = truth();
        let mut est = SelectivityEstimator::new(t.clone(), 1.0);
        let mut errs = Vec::new();
        for k in 0..400 {
            let x = 30.0 + (k % 11) as f64 * 8.0;
            let n = if k % 2 == 0 { 0.05 } else { -0.05 };
            est.ingest(&HObservation {
                operator: 0,
                inputs: &[x],
                output: 0.3 * x * (1.0 + n),
            });
            est.ingest(&HObservation {
                operator: 1,
                inputs: &[x],
                output: 1.7 * x * (1.0 - n),
            });
            if k % 100 == 99 {
                errs.push(est.max_relative_error(&t));
            }
        }
        assert!(errs[3] <= errs[0] + 1e-9, "error did not decay: {errs:?}");
        assert!(errs[3] < 0.05);
    }

    #[test]
    fn ignores_degenerate_observations() {
        let t = truth();
        let mut est = SelectivityEstimator::new(t.clone(), 1.0);
        est.ingest(&HObservation {
            operator: 0,
            inputs: &[0.0],
            output: 5.0,
        });
        est.ingest(&HObservation {
            operator: 0,
            inputs: &[10.0],
            output: f64::NAN,
        });
        est.ingest(&HObservation {
            operator: 0,
            inputs: &[10.0],
            output: -1.0,
        });
        assert_eq!(est.observations(0), 0);
        assert_eq!(est.weights()[0], vec![1.0]);
    }

    #[test]
    fn weights_stay_nonnegative() {
        let t = truth();
        let mut est = SelectivityEstimator::new(t.clone(), 0.1);
        for _ in 0..50 {
            est.ingest(&HObservation {
                operator: 0,
                inputs: &[100.0],
                output: 0.0,
            });
        }
        assert!(est.weights()[0][0] >= 0.0);
    }

    #[test]
    fn multi_input_weights_learned() {
        // merge with different per-input selectivities
        let t = TopologyBuilder::new()
            .source("a")
            .source("b")
            .operator("merge")
            .sink("k")
            .edge("a", "merge")
            .edge("b", "merge")
            .edge_with(
                "merge",
                "k",
                ThroughputFn::Linear {
                    weights: vec![0.5, 2.0],
                },
                1.0,
            )
            .build()
            .unwrap();
        let mut est = SelectivityEstimator::new(t.clone(), 1.0);
        // vary the input mix so the system is identifiable
        for k in 0..600 {
            let a = 20.0 + (k % 13) as f64 * 9.0;
            let b = 100.0 - (k % 7) as f64 * 11.0;
            est.ingest(&HObservation {
                operator: 0,
                inputs: &[a, b],
                output: 0.5 * a + 2.0 * b,
            });
        }
        assert!(est.max_relative_error(&t) < 0.05, "{:?}", est.weights());
    }

    #[test]
    fn set_operator_h_validates() {
        let mut t = truth();
        let id = t.by_name("filter").unwrap();
        t.set_operator_h(id, vec![ThroughputFn::Linear { weights: vec![0.9] }])
            .unwrap();
        let f = crate::flow::throughput(&t, &[100.0], &[1e9, 1e9]).unwrap();
        assert!((f - 100.0 * 0.9 * 1.7).abs() < 1e-9);
    }

    #[test]
    fn set_operator_h_checks_count() {
        let mut t = truth();
        let id = t.by_name("filter").unwrap();
        let err = t.set_operator_h(id, vec![]).unwrap_err();
        assert!(err.to_string().contains("one h per successor edge"));
    }

    #[test]
    fn set_operator_h_rejects_non_operator() {
        let mut t = truth();
        let id = t.by_name("s").unwrap();
        assert!(t.set_operator_h(id, vec![]).is_err());
    }
}
