//! The stream-processing DAG model (Section 4.1 of the paper).
//!
//! A stream processing application is a directed acyclic graph of
//! *components*: sources (emit tuples at an offered rate), operators
//! (consume, transform, emit — limited by a service capacity `y_i`), and a
//! sink (whose ingest rate **is** the application throughput). Each edge
//! `(i, j)` carries a concave increasing *throughput function*
//! `h_{i,j}(ē_i)` mapping operator `i`'s received-throughput vector to the
//! tuples it would emit toward `j` given unlimited capacity, truncated by
//! the capacity split `α_{i,j} y_i` (Eq. 4):
//!
//! ```text
//! e_j^i = min(α_{i,j} · y_i, h_{i,j}(ē_i))
//! ```
//!
//! Composing Eq. 4 over a topological order yields the application
//! throughput `f_t(y)` — concave in `y` because concave increasing functions
//! compose (Section 4.2.1).
//!
//! Modules:
//!
//! * [`topology`] — components, edges, splitting weights, builder +
//!   validation, virtual-sink merging, topological order, Graphviz export.
//! * [`thrufn`] — the throughput-function forms of Eq. 2a–2c and the
//!   [`thrufn::FlowScalar`] abstraction that lets the same
//!   propagation code run on plain `f64` (simulation fast path) and on
//!   autodiff [`Var`](dragster_autodiff::Var)s (gradient path).
//! * [`flow`] — forward propagation, the application-throughput function
//!   `f_t(y)` and its gradient `∂f/∂y` via reverse-mode AD.
//! * [`analysis`] — empirical monotonicity/concavity validators and
//!   structural helpers (upper bound `H`, bottleneck ranking).

pub mod analysis;
pub mod error;
pub mod flow;
pub mod learned;
pub mod thrufn;
pub mod topology;

pub use error::DagError;
pub use flow::{propagate, throughput, throughput_grad, FlowResult};
pub use learned::{EstimatorSnapshot, HObservation, SelectivityEstimator};
pub use thrufn::{FlowScalar, ThroughputFn};
pub use topology::{
    Component, ComponentId, ComponentKind, Topology, TopologyBuilder, TopologyError,
};
