//! Throughput-function forms (Eq. 2a–2c / Eq. 3) and the scalar abstraction
//! that lets propagation run on both `f64` and autodiff variables.

use dragster_autodiff::Var;
use serde::{Deserialize, Serialize};

/// The scalar operations flow propagation needs. Implemented for plain
/// `f64` (the simulator fast path — no tape, no allocation) and for
/// [`Var`] (the gradient path used by bottleneck identification).
pub trait FlowScalar: Copy {
    /// Addition.
    fn fs_add(self, o: Self) -> Self;
    /// Multiplication by a constant.
    fn fs_scale(self, c: f64) -> Self;
    /// Pointwise minimum.
    fn fs_min(self, o: Self) -> Self;
    /// Hyperbolic tangent.
    fn fs_tanh(self) -> Self;
    /// Forward value (for diagnostics and result extraction).
    fn fs_value(self) -> f64;
}

impl FlowScalar for f64 {
    #[inline]
    fn fs_add(self, o: f64) -> f64 {
        self + o
    }

    #[inline]
    fn fs_scale(self, c: f64) -> f64 {
        self * c
    }

    #[inline]
    fn fs_min(self, o: f64) -> f64 {
        self.min(o)
    }

    #[inline]
    fn fs_tanh(self) -> f64 {
        self.tanh()
    }

    #[inline]
    fn fs_value(self) -> f64 {
        self
    }
}

impl<'t> FlowScalar for Var<'t> {
    #[inline]
    fn fs_add(self, o: Self) -> Self {
        self + o
    }

    #[inline]
    fn fs_scale(self, c: f64) -> Self {
        self * c
    }

    #[inline]
    fn fs_min(self, o: Self) -> Self {
        self.min(o)
    }

    #[inline]
    fn fs_tanh(self) -> Self {
        self.tanh()
    }

    #[inline]
    fn fs_value(self) -> f64 {
        self.value()
    }
}

/// A concave increasing throughput function `h_{i,j}(ē_i)` on one edge
/// (Eq. 3). The `weights` vectors are indexed by the owning operator's
/// predecessor list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ThroughputFn {
    /// Eq. 2a: `h(ē) = k⃗ · ē` — linear in the received throughput. The
    /// common case: a selectivity per upstream edge (e.g. a filter passing
    /// 40 % of tuples has weight 0.4).
    Linear { weights: Vec<f64> },
    /// Eq. 2b: `h(ē) = min(k⃗ ∘ ē)` — the output tracks the slowest
    /// (weighted) upstream, e.g. a join that needs matching tuples from
    /// both inputs.
    WeightedMin { weights: Vec<f64> },
    /// Eq. 2c: `h(ē) = k₁ · tanh(k⃗ · ē)` — a saturating concave form, the
    /// paper's example of a learned/unknown-logic operator.
    Tanh { scale: f64, weights: Vec<f64> },
}

impl ThroughputFn {
    /// A linear function with the same selectivity on every input.
    pub fn uniform_linear(n_inputs: usize, selectivity: f64) -> ThroughputFn {
        ThroughputFn::Linear {
            weights: vec![selectivity; n_inputs],
        }
    }

    /// Number of inputs this function expects.
    pub fn arity(&self) -> usize {
        match self {
            ThroughputFn::Linear { weights }
            | ThroughputFn::WeightedMin { weights }
            | ThroughputFn::Tanh { weights, .. } => weights.len(),
        }
    }

    /// Validate structural invariants: correct arity for `n_inputs`,
    /// non-negative weights (required for monotonicity), positive scale.
    pub fn validate(&self, n_inputs: usize) -> Result<(), String> {
        if self.arity() != n_inputs {
            return Err(format!(
                "throughput fn arity {} != {} predecessors",
                self.arity(),
                n_inputs
            ));
        }
        let weights = match self {
            ThroughputFn::Linear { weights } | ThroughputFn::WeightedMin { weights } => weights,
            ThroughputFn::Tanh { scale, weights } => {
                if *scale <= 0.0 {
                    return Err("tanh scale must be positive".into());
                }
                weights
            }
        };
        if weights.iter().any(|w| *w < 0.0) {
            return Err("throughput weights must be non-negative".into());
        }
        if n_inputs == 0 {
            return Err("operator needs at least one predecessor".into());
        }
        Ok(())
    }

    /// Evaluate the function on a received-throughput vector. Generic over
    /// [`FlowScalar`], so the same code serves simulation and
    /// differentiation.
    ///
    /// # Panics
    /// If `inputs.len() != self.arity()` or `inputs` is empty — both are
    /// construction-time invariants enforced by [`ThroughputFn::validate`].
    pub fn eval<S: FlowScalar>(&self, inputs: &[S]) -> S {
        assert_eq!(inputs.len(), self.arity(), "throughput fn arity mismatch");
        assert!(!inputs.is_empty(), "throughput fn needs at least one input");
        match self {
            ThroughputFn::Linear { weights } => weighted_sum(inputs, weights),
            ThroughputFn::WeightedMin { weights } => inputs[1..]
                .iter()
                .zip(weights[1..].iter())
                .fold(inputs[0].fs_scale(weights[0]), |acc, (v, w)| {
                    acc.fs_min(v.fs_scale(*w))
                }),
            ThroughputFn::Tanh { scale, weights } => {
                weighted_sum(inputs, weights).fs_tanh().fs_scale(*scale)
            }
        }
    }

    /// An upper bound of this function given per-input upper bounds
    /// (used for the constant `H` of Theorem 1). For `Tanh` the bound is
    /// simply `scale` (tanh saturates at 1).
    pub fn upper_bound(&self, input_bounds: &[f64]) -> f64 {
        match self {
            ThroughputFn::Linear { weights } => weights
                .iter()
                .zip(input_bounds.iter())
                .map(|(w, b)| w * b)
                .sum(),
            ThroughputFn::WeightedMin { weights } => weights
                .iter()
                .zip(input_bounds.iter())
                .map(|(w, b)| w * b)
                .fold(f64::INFINITY, f64::min),
            ThroughputFn::Tanh { scale, .. } => *scale,
        }
    }
}

/// Caller (`eval`) guarantees `inputs` is non-empty and matches `weights`.
fn weighted_sum<S: FlowScalar>(inputs: &[S], weights: &[f64]) -> S {
    inputs[1..]
        .iter()
        .zip(weights[1..].iter())
        .fold(inputs[0].fs_scale(weights[0]), |acc, (v, w)| {
            acc.fs_add(v.fs_scale(*w))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragster_autodiff::Tape;

    #[test]
    fn linear_eval() {
        let h = ThroughputFn::Linear {
            weights: vec![0.5, 2.0],
        };
        assert_eq!(h.eval(&[10.0, 3.0]), 11.0);
        assert_eq!(h.arity(), 2);
    }

    #[test]
    fn weighted_min_eval() {
        let h = ThroughputFn::WeightedMin {
            weights: vec![1.0, 0.5],
        };
        assert_eq!(h.eval(&[10.0, 30.0]), 10.0);
        assert_eq!(h.eval(&[10.0, 4.0]), 2.0);
    }

    #[test]
    fn tanh_eval_saturates() {
        let h = ThroughputFn::Tanh {
            scale: 100.0,
            weights: vec![0.01],
        };
        let low = h.eval(&[10.0]);
        let high = h.eval(&[10000.0]);
        assert!(low < high);
        assert!(high <= 100.0);
        assert!((high - 100.0).abs() < 1.0);
    }

    #[test]
    fn eval_on_autodiff_vars_matches_f64() {
        let h = ThroughputFn::Tanh {
            scale: 5.0,
            weights: vec![0.3, 0.7],
        };
        let plain = h.eval(&[1.0, 2.0]);
        let tape = Tape::new();
        let vars = tape.vars(&[1.0, 2.0]);
        let traced = h.eval(&[vars[0], vars[1]]);
        assert!((plain - traced.value()).abs() < 1e-15);
        // gradient flows
        let g = traced.backward();
        assert!(g.wrt(vars[0]) > 0.0);
    }

    #[test]
    fn validate_catches_arity_and_negative_weights() {
        let h = ThroughputFn::Linear { weights: vec![1.0] };
        assert!(h.validate(1).is_ok());
        assert!(h.validate(2).is_err());
        let bad = ThroughputFn::Linear {
            weights: vec![-0.1],
        };
        assert!(bad.validate(1).is_err());
        let bad_scale = ThroughputFn::Tanh {
            scale: 0.0,
            weights: vec![1.0],
        };
        assert!(bad_scale.validate(1).is_err());
        assert!(ThroughputFn::Linear { weights: vec![] }
            .validate(0)
            .is_err());
    }

    #[test]
    fn upper_bounds() {
        let lin = ThroughputFn::Linear {
            weights: vec![0.5, 1.0],
        };
        assert_eq!(lin.upper_bound(&[10.0, 20.0]), 25.0);
        let wmin = ThroughputFn::WeightedMin {
            weights: vec![1.0, 1.0],
        };
        assert_eq!(wmin.upper_bound(&[10.0, 20.0]), 10.0);
        let th = ThroughputFn::Tanh {
            scale: 7.0,
            weights: vec![1.0, 1.0],
        };
        assert_eq!(th.upper_bound(&[1e9, 1e9]), 7.0);
    }

    #[test]
    fn uniform_linear_helper() {
        let h = ThroughputFn::uniform_linear(3, 0.9);
        assert_eq!(h.arity(), 3);
        assert!((h.eval(&[1.0, 1.0, 1.0]) - 2.7).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_each_input() {
        for h in [
            ThroughputFn::Linear {
                weights: vec![0.4, 1.2],
            },
            ThroughputFn::WeightedMin {
                weights: vec![1.0, 0.8],
            },
            ThroughputFn::Tanh {
                scale: 10.0,
                weights: vec![0.1, 0.2],
            },
        ] {
            let base = h.eval(&[2.0, 3.0]);
            assert!(h.eval(&[2.5, 3.0]) >= base);
            assert!(h.eval(&[2.0, 3.5]) >= base);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let h = ThroughputFn::Tanh {
            scale: 2.0,
            weights: vec![0.1],
        };
        let s = serde_json::to_string(&h).unwrap();
        let back: ThroughputFn = serde_json::from_str(&s).unwrap();
        assert_eq!(h, back);
    }
}
