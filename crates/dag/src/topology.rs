//! Components, edges, and the validated application topology.

use crate::thrufn::ThroughputFn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a component within its [`Topology`]. Sources occupy the lowest
/// indices, then operators, then the sink — matching the paper's indexing
/// (sources 1..N, operators N+1..N+M).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub usize);

/// The three component roles of Section 4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Reads from external queues, emits at an offered rate.
    Source,
    /// Consumes, processes (capacity-limited), emits.
    Operator,
    /// Terminal consumer; its ingest rate is the application throughput.
    Sink,
}

/// One node of the application DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Component {
    /// Human-readable name (unique within the topology).
    pub name: String,
    pub kind: ComponentKind,
    /// Predecessor component ids (the `P_i` set).
    pub preds: Vec<ComponentId>,
    /// Successor component ids (the `S_i` set).
    pub succs: Vec<ComponentId>,
    /// Capacity-splitting weights `α_{i,j}`, one per successor, summing
    /// to 1 (Eq. 4). Empty for sinks.
    pub alpha: Vec<f64>,
    /// Per-successor-edge throughput functions `h_{i,j}`. Empty for sources
    /// (a source's "function" is its offered rate) and sinks.
    pub h: Vec<ThroughputFn>,
    /// For operators: index into the capacity vector `y`. `None` for
    /// sources and sinks.
    pub capacity_index: Option<usize>,
}

/// Validation failures produced by [`TopologyBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    DuplicateName(String),
    UnknownComponent(String),
    /// Component list violates the source/operator/sink role rules.
    RoleViolation(String),
    /// Splitting weights don't sum to 1 or have wrong arity.
    BadAlpha(String),
    /// A throughput function failed validation.
    BadThroughputFn(String),
    Cycle(String),
    NoSink,
    NoSource,
    /// A component is unreachable from every source or cannot reach the sink.
    Disconnected(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate component name {n:?}"),
            TopologyError::UnknownComponent(n) => write!(f, "unknown component {n:?}"),
            TopologyError::RoleViolation(m) => write!(f, "role violation: {m}"),
            TopologyError::BadAlpha(m) => write!(f, "bad splitting weights: {m}"),
            TopologyError::BadThroughputFn(m) => write!(f, "bad throughput function: {m}"),
            TopologyError::Cycle(m) => write!(f, "cycle detected: {m}"),
            TopologyError::NoSink => write!(f, "topology has no sink"),
            TopologyError::NoSource => write!(f, "topology has no source"),
            TopologyError::Disconnected(m) => write!(f, "disconnected component: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated, immutable application DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    components: Vec<Component>,
    /// Component indices in a topological order (sources first).
    topo_order: Vec<usize>,
    n_sources: usize,
    n_operators: usize,
    sink: usize,
}

impl Topology {
    /// All components, indexed by [`ComponentId`].
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Component by id.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.0]
    }

    pub(crate) fn component_mut(&mut self, id: ComponentId) -> &mut Component {
        &mut self.components[id.0]
    }

    /// Number of sources `N`.
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// Number of operators `M` (the dimension of the capacity vector `y`).
    pub fn n_operators(&self) -> usize {
        self.n_operators
    }

    /// The (single) sink.
    pub fn sink(&self) -> ComponentId {
        ComponentId(self.sink)
    }

    /// Component ids in topological order.
    pub fn topo_order(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.topo_order.iter().map(|&i| ComponentId(i))
    }

    /// Ids of all operator components, in capacity-index order.
    pub fn operator_ids(&self) -> Vec<ComponentId> {
        let mut ops: Vec<(usize, ComponentId)> = self
            .components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.capacity_index.map(|ci| (ci, ComponentId(i))))
            .collect();
        ops.sort_by_key(|(ci, _)| *ci);
        ops.into_iter().map(|(_, id)| id).collect()
    }

    /// Ids of all source components.
    pub fn source_ids(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ComponentKind::Source)
            .map(|(i, _)| ComponentId(i))
            .collect()
    }

    /// Look up a component id by name.
    pub fn by_name(&self, name: &str) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|c| c.name == name)
            .map(ComponentId)
    }

    /// Capacity-vector index of an operator.
    pub fn capacity_index(&self, id: ComponentId) -> Option<usize> {
        self.components[id.0].capacity_index
    }

    /// Operator name by capacity index (for reports).
    pub fn operator_name(&self, capacity_index: usize) -> &str {
        let id = self.operator_ids()[capacity_index];
        &self.components[id.0].name
    }

    /// For each component, the position this component occupies in each
    /// successor's predecessor list: `routing[id.0][e]` is the slot that
    /// flow along `succs[e]` lands in at the successor. Simulation engines
    /// precompute this once so their per-tick loops need no edge searches.
    ///
    /// # Errors
    /// [`crate::DagError::InconsistentEdge`] if some successor does not
    /// list this component among its predecessors (hand-built topology).
    pub fn edge_routing(&self) -> Result<Vec<Vec<usize>>, crate::DagError> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.succs
                    .iter()
                    .map(|succ| {
                        self.components[succ.0]
                            .preds
                            .iter()
                            .position(|p| p.0 == i)
                            .ok_or_else(|| crate::DagError::InconsistentEdge {
                                from: c.name.clone(),
                                to: self.components[succ.0].name.clone(),
                            })
                    })
                    .collect()
            })
            .collect()
    }

    /// Graphviz DOT rendering (debugging / documentation aid).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph topology {\n  rankdir=LR;\n");
        for c in &self.components {
            let shape = match c.kind {
                ComponentKind::Source => "invhouse",
                ComponentKind::Operator => "box",
                ComponentKind::Sink => "house",
            };
            s.push_str(&format!("  \"{}\" [shape={}];\n", c.name, shape));
        }
        for c in &self.components {
            for (k, succ) in c.succs.iter().enumerate() {
                let label = if c.alpha.len() > 1 {
                    format!(" [label=\"α={:.2}\"]", c.alpha[k])
                } else {
                    String::new()
                };
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\"{};\n",
                    c.name, self.components[succ.0].name, label
                ));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Declarative edge spec used by the builder.
struct EdgeSpec {
    from: String,
    to: String,
    h: Option<ThroughputFn>,
    alpha: Option<f64>,
}

/// Builder producing a validated [`Topology`].
///
/// ```
/// use dragster_dag::{ThroughputFn, TopologyBuilder};
///
/// let topo = TopologyBuilder::new()
///     .source("src")
///     .operator("map")
///     .operator("reduce")
///     .sink("out")
///     .edge("src", "map")
///     .edge_with("map", "reduce", ThroughputFn::Linear { weights: vec![1.0] }, 1.0)
///     .edge("reduce", "out")
///     .build()
///     .unwrap();
/// assert_eq!(topo.n_operators(), 2);
/// ```
#[derive(Default)]
pub struct TopologyBuilder {
    names: Vec<(String, ComponentKind)>,
    edges: Vec<EdgeSpec>,
}

impl TopologyBuilder {
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Declare a source.
    pub fn source(mut self, name: &str) -> Self {
        self.names.push((name.into(), ComponentKind::Source));
        self
    }

    /// Declare an operator.
    pub fn operator(mut self, name: &str) -> Self {
        self.names.push((name.into(), ComponentKind::Operator));
        self
    }

    /// Declare a sink. Multiple sinks are allowed — they are merged through
    /// a virtual sink at build time (Section 4.1: "If there are multiple
    /// sinks in the application, we can add a virtual sink").
    pub fn sink(mut self, name: &str) -> Self {
        self.names.push((name.into(), ComponentKind::Sink));
        self
    }

    /// Add an edge with a default throughput function (identity-linear,
    /// weight 1 on this edge's contribution) and automatic α splitting
    /// (uniform across the origin's edges).
    pub fn edge(mut self, from: &str, to: &str) -> Self {
        self.edges.push(EdgeSpec {
            from: from.into(),
            to: to.into(),
            h: None,
            alpha: None,
        });
        self
    }

    /// Add an edge with an explicit throughput function `h_{i,j}` and
    /// splitting weight `α_{i,j}`.
    pub fn edge_with(mut self, from: &str, to: &str, h: ThroughputFn, alpha: f64) -> Self {
        self.edges.push(EdgeSpec {
            from: from.into(),
            to: to.into(),
            h: Some(h),
            alpha: Some(alpha),
        });
        self
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Topology, TopologyError> {
        // Order components: sources, operators, sinks — preserving
        // declaration order within a role (paper indexing).
        let mut ordered: Vec<(String, ComponentKind)> = Vec::new();
        for kind in [
            ComponentKind::Source,
            ComponentKind::Operator,
            ComponentKind::Sink,
        ] {
            for (n, k) in &self.names {
                if *k == kind {
                    ordered.push((n.clone(), *k));
                }
            }
        }
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for (i, (n, _)) in ordered.iter().enumerate() {
            if index.insert(n.clone(), i).is_some() {
                return Err(TopologyError::DuplicateName(n.clone()));
            }
        }

        let n_sources = ordered
            .iter()
            .filter(|(_, k)| *k == ComponentKind::Source)
            .count();
        let declared_sinks: Vec<usize> = ordered
            .iter()
            .enumerate()
            .filter(|(_, (_, k))| *k == ComponentKind::Sink)
            .map(|(i, _)| i)
            .collect();
        if n_sources == 0 {
            return Err(TopologyError::NoSource);
        }
        if declared_sinks.is_empty() {
            return Err(TopologyError::NoSink);
        }

        let mut components: Vec<Component> = ordered
            .iter()
            .map(|(n, k)| Component {
                name: n.clone(),
                kind: *k,
                preds: Vec::new(),
                succs: Vec::new(),
                alpha: Vec::new(),
                h: Vec::new(),
                capacity_index: None,
            })
            .collect();

        // Virtual sink if more than one sink was declared.
        let sink = if declared_sinks.len() == 1 {
            declared_sinks[0]
        } else {
            let v = components.len();
            components.push(Component {
                name: "__virtual_sink".into(),
                kind: ComponentKind::Sink,
                preds: Vec::new(),
                succs: Vec::new(),
                alpha: Vec::new(),
                h: Vec::new(),
                capacity_index: None,
            });
            // Demote declared sinks to pass-through operators feeding the
            // virtual sink. They get capacity indices like any operator;
            // callers that want a pure merge can give them huge capacity.
            for &s in &declared_sinks {
                components[s].kind = ComponentKind::Operator;
            }
            v
        };

        // Wire edges (user edges first, then the virtual-sink edges).
        struct Wire {
            from: usize,
            to: usize,
            h: Option<ThroughputFn>,
            alpha: Option<f64>,
        }
        let mut wires: Vec<Wire> = Vec::new();
        for e in &self.edges {
            let from = *index
                .get(&e.from)
                .ok_or_else(|| TopologyError::UnknownComponent(e.from.clone()))?;
            let to = *index
                .get(&e.to)
                .ok_or_else(|| TopologyError::UnknownComponent(e.to.clone()))?;
            wires.push(Wire {
                from,
                to,
                h: e.h.clone(),
                alpha: e.alpha,
            });
        }
        if declared_sinks.len() > 1 {
            for &s in &declared_sinks {
                wires.push(Wire {
                    from: s,
                    to: sink,
                    h: None, // filled with identity-linear below
                    alpha: Some(1.0),
                });
            }
        }

        // Role rules on edges.
        for w in &wires {
            let (fk, tk) = (components[w.from].kind, components[w.to].kind);
            if fk == ComponentKind::Sink {
                return Err(TopologyError::RoleViolation(format!(
                    "sink {:?} cannot have outgoing edges",
                    components[w.from].name
                )));
            }
            if tk == ComponentKind::Source {
                return Err(TopologyError::RoleViolation(format!(
                    "source {:?} cannot have incoming edges",
                    components[w.to].name
                )));
            }
        }

        // Populate adjacency.
        for w in &wires {
            components[w.from].succs.push(ComponentId(w.to));
            components[w.to].preds.push(ComponentId(w.from));
        }

        // Per-edge α and h. Defaults: uniform α; identity-linear h (weight 1
        // on every input — i.e. the operator would forward everything it
        // receives).
        for w in &wires {
            let n_succ = components[w.from].succs.len();
            let alpha = w.alpha.unwrap_or(1.0 / n_succ.max(1) as f64);
            components[w.from].alpha.push(alpha);
            if components[w.from].kind == ComponentKind::Operator {
                let n_preds = components[w.from].preds.len();
                let h = w.h.clone().unwrap_or(ThroughputFn::Linear {
                    weights: vec![1.0; n_preds.max(1)],
                });
                components[w.from].h.push(h);
            } else if w.h.is_some() {
                return Err(TopologyError::BadThroughputFn(format!(
                    "source {:?} cannot carry a throughput function",
                    components[w.from].name
                )));
            }
        }

        // α sums to 1 per component with successors.
        for c in &components {
            if !c.succs.is_empty() {
                let s: f64 = c.alpha.iter().sum();
                if (s - 1.0).abs() > 1e-9 {
                    return Err(TopologyError::BadAlpha(format!(
                        "{:?}: α sums to {s}, expected 1",
                        c.name
                    )));
                }
                if c.alpha.iter().any(|a| *a < 0.0) {
                    return Err(TopologyError::BadAlpha(format!("{:?}: negative α", c.name)));
                }
            }
        }

        // Validate throughput functions (arity == n_preds).
        for c in &components {
            if c.kind == ComponentKind::Operator {
                if c.preds.is_empty() {
                    return Err(TopologyError::Disconnected(format!(
                        "operator {:?} has no predecessors",
                        c.name
                    )));
                }
                if c.succs.is_empty() {
                    return Err(TopologyError::Disconnected(format!(
                        "operator {:?} has no successors",
                        c.name
                    )));
                }
                for h in &c.h {
                    h.validate(c.preds.len())
                        .map_err(TopologyError::BadThroughputFn)?;
                }
            }
            if c.kind == ComponentKind::Source && c.succs.is_empty() {
                return Err(TopologyError::Disconnected(format!(
                    "source {:?} feeds nothing",
                    c.name
                )));
            }
        }

        // Kahn topological sort; detects cycles.
        let n = components.len();
        let mut indeg: Vec<usize> = components.iter().map(|c| c.preds.len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo_order.push(i);
            for s in components[i].succs.clone() {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    queue.push(s.0);
                }
            }
        }
        if topo_order.len() != n {
            let stuck: Vec<&str> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| components[i].name.as_str())
                .collect();
            return Err(TopologyError::Cycle(stuck.join(", ")));
        }

        // Reachability: every component must reach the sink (otherwise its
        // throughput contributes nothing and the model is ill-posed).
        let mut reaches_sink = vec![false; n];
        reaches_sink[sink] = true;
        for &i in topo_order.iter().rev() {
            if components[i].succs.iter().any(|s| reaches_sink[s.0]) {
                reaches_sink[i] = true;
            }
        }
        if let Some(i) = (0..n).find(|&i| !reaches_sink[i]) {
            return Err(TopologyError::Disconnected(components[i].name.clone()));
        }

        // Assign capacity indices to operators in declaration order.
        let mut n_operators = 0;
        for c in components.iter_mut() {
            if c.kind == ComponentKind::Operator {
                c.capacity_index = Some(n_operators);
                n_operators += 1;
            }
        }

        Ok(Topology {
            components,
            topo_order,
            n_sources,
            n_operators,
            sink,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Topology {
        TopologyBuilder::new()
            .source("src")
            .operator("map")
            .operator("reduce")
            .sink("out")
            .edge("src", "map")
            .edge("map", "reduce")
            .edge("reduce", "out")
            .build()
            .unwrap()
    }

    #[test]
    fn chain_builds() {
        let t = chain();
        assert_eq!(t.n_sources(), 1);
        assert_eq!(t.n_operators(), 2);
        assert_eq!(t.component(t.sink()).name, "out");
        assert_eq!(t.by_name("map"), Some(ComponentId(1)));
        assert_eq!(t.capacity_index(ComponentId(1)), Some(0));
        assert_eq!(t.operator_name(0), "map");
        assert_eq!(t.operator_name(1), "reduce");
    }

    #[test]
    fn topo_order_respects_edges() {
        let t = chain();
        let order: Vec<usize> = t.topo_order().map(|c| c.0).collect();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        for c in t.components() {
            for s in &c.succs {
                let me = t.by_name(&c.name).unwrap();
                assert!(pos(me.0) < pos(s.0));
            }
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = TopologyBuilder::new()
            .source("a")
            .operator("a")
            .sink("s")
            .build();
        assert!(matches!(r, Err(TopologyError::DuplicateName(_))));
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let r = TopologyBuilder::new()
            .source("a")
            .sink("s")
            .edge("a", "nope")
            .build();
        assert!(matches!(r, Err(TopologyError::UnknownComponent(_))));
    }

    #[test]
    fn cycle_rejected() {
        let r = TopologyBuilder::new()
            .source("src")
            .operator("a")
            .operator("b")
            .sink("out")
            .edge("src", "a")
            .edge("a", "b")
            .edge("b", "a")
            .edge("b", "out")
            .build();
        assert!(matches!(r, Err(TopologyError::Cycle(_))));
    }

    #[test]
    fn missing_sink_or_source_rejected() {
        assert!(matches!(
            TopologyBuilder::new().source("a").build(),
            Err(TopologyError::NoSink)
        ));
        assert!(matches!(
            TopologyBuilder::new().sink("s").build(),
            Err(TopologyError::NoSource)
        ));
    }

    #[test]
    fn dangling_operator_rejected() {
        let r = TopologyBuilder::new()
            .source("src")
            .operator("island")
            .sink("out")
            .edge("src", "out")
            .build();
        assert!(matches!(r, Err(TopologyError::Disconnected(_))));
    }

    #[test]
    fn bad_alpha_sum_rejected() {
        let r = TopologyBuilder::new()
            .source("src")
            .operator("op")
            .sink("a")
            .sink("b")
            .edge("src", "op")
            .edge_with("op", "a", ThroughputFn::uniform_linear(1, 1.0), 0.3)
            .edge_with("op", "b", ThroughputFn::uniform_linear(1, 1.0), 0.3)
            .build();
        assert!(matches!(r, Err(TopologyError::BadAlpha(_))));
    }

    #[test]
    fn multiple_sinks_get_virtual_sink() {
        let t = TopologyBuilder::new()
            .source("src")
            .operator("op")
            .sink("a")
            .sink("b")
            .edge("src", "op")
            .edge_with("op", "a", ThroughputFn::uniform_linear(1, 1.0), 0.5)
            .edge_with("op", "b", ThroughputFn::uniform_linear(1, 1.0), 0.5)
            .build()
            .unwrap();
        assert_eq!(t.component(t.sink()).name, "__virtual_sink");
        // a and b were demoted to operators
        assert_eq!(t.n_operators(), 3);
    }

    #[test]
    fn edge_from_sink_rejected() {
        let r = TopologyBuilder::new()
            .source("src")
            .sink("out")
            .edge("src", "out")
            .edge("out", "src")
            .build();
        assert!(matches!(r, Err(TopologyError::RoleViolation(_))));
    }

    #[test]
    fn source_cannot_carry_throughput_fn() {
        let r = TopologyBuilder::new()
            .source("src")
            .sink("out")
            .edge_with("src", "out", ThroughputFn::uniform_linear(1, 1.0), 1.0)
            .build();
        assert!(matches!(r, Err(TopologyError::BadThroughputFn(_))));
    }

    #[test]
    fn fan_out_default_alpha_uniform() {
        let t = TopologyBuilder::new()
            .source("src")
            .operator("split")
            .operator("l")
            .operator("r")
            .operator("merge")
            .sink("out")
            .edge("src", "split")
            .edge("split", "l")
            .edge("split", "r")
            .edge("l", "merge")
            .edge("r", "merge")
            .edge("merge", "out")
            .build()
            .unwrap();
        let split = t.component(t.by_name("split").unwrap());
        assert_eq!(split.alpha, vec![0.5, 0.5]);
        let merge = t.component(t.by_name("merge").unwrap());
        assert_eq!(merge.preds.len(), 2);
        // default h arity matches preds
        assert_eq!(merge.h[0].arity(), 2);
    }

    #[test]
    fn edge_routing_positions_round_trip() {
        let t = chain();
        let routing = t.edge_routing().unwrap();
        for (i, c) in t.components().iter().enumerate() {
            for (e, succ) in c.succs.iter().enumerate() {
                assert_eq!(t.component(*succ).preds[routing[i][e]].0, i);
            }
        }
    }

    #[test]
    fn dot_export_contains_all_components() {
        let t = chain();
        let dot = t.to_dot();
        for c in t.components() {
            assert!(dot.contains(&c.name));
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = chain();
        let s = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&s).unwrap();
        assert_eq!(back.n_operators(), 2);
        assert_eq!(back.component(back.sink()).name, "out");
    }

    #[test]
    fn operator_ids_in_capacity_order() {
        let t = chain();
        let ids = t.operator_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(t.component(ids[0]).name, "map");
        assert_eq!(t.component(ids[1]).name, "reduce");
    }
}
