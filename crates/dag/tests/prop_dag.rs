//! Property tests: the Section-4.1 assumptions (monotone, concave `f_t`)
//! hold on randomized topologies, the autodiff and f64 propagation paths
//! agree, and gradients match finite differences away from kinks.

// Integration tests may panic freely; the workspace deny only guards
// library code paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dragster_autodiff::finite_grad;
use dragster_dag::{throughput, throughput_grad, ThroughputFn, Topology, TopologyBuilder};
use proptest::prelude::*;

/// A random linear chain src → op_1 → … → op_k → sink with random
/// selectivities, plus optionally a saturating tanh stage.
fn arb_chain() -> impl Strategy<Value = (Topology, usize)> {
    (
        1usize..5,
        proptest::collection::vec(0.2..1.5f64, 5),
        proptest::bool::ANY,
    )
        .prop_map(|(k, sels, with_tanh)| {
            let mut b = TopologyBuilder::new().source("src");
            for i in 0..k {
                b = b.operator(&format!("op{i}"));
            }
            b = b.sink("out").edge("src", "op0");
            #[allow(clippy::needless_range_loop)]
            for i in 1..k {
                let h = if with_tanh && i == k - 1 {
                    ThroughputFn::Tanh {
                        scale: 400.0,
                        weights: vec![0.003],
                    }
                } else {
                    ThroughputFn::Linear {
                        weights: vec![sels[i]],
                    }
                };
                b = b.edge_with(&format!("op{}", i - 1), &format!("op{i}"), h, 1.0);
            }
            b = b.edge(&format!("op{}", k - 1), "out");
            (b.build().unwrap(), k)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn throughput_nonnegative_and_bounded(
        (topo, k) in arb_chain(),
        rate in 1.0..500.0f64,
        caps in proptest::collection::vec(1.0..500.0f64, 5),
    ) {
        let caps = &caps[..k];
        let f = throughput(&topo, &[rate], caps).unwrap();
        prop_assert!(f >= 0.0);
        // Output cannot exceed what any operator is allowed to emit nor the
        // source rate amplified by max selectivity (all ≤ 1.5, chain of ≤ 4).
        prop_assert!(f <= rate * 1.5f64.powi(4) + 1e-9);
        // And never exceeds the last operator's capacity.
        prop_assert!(f <= caps[k - 1] + 1e-9);
    }

    #[test]
    fn monotone_in_every_capacity(
        (topo, k) in arb_chain(),
        rate in 1.0..500.0f64,
        caps in proptest::collection::vec(1.0..300.0f64, 5),
        bump_idx in 0usize..5,
        bump in 0.1..100.0f64,
    ) {
        let caps = &caps[..k];
        let idx = bump_idx % k;
        let f0 = throughput(&topo, &[rate], caps).unwrap();
        let mut caps2 = caps.to_vec();
        caps2[idx] += bump;
        let f1 = throughput(&topo, &[rate], &caps2).unwrap();
        prop_assert!(f1 >= f0 - 1e-9, "raising capacity lowered throughput: {f0} -> {f1}");
    }

    #[test]
    fn midpoint_concave_in_capacity(
        (topo, k) in arb_chain(),
        rate in 1.0..500.0f64,
        a in proptest::collection::vec(1.0..300.0f64, 5),
        b in proptest::collection::vec(1.0..300.0f64, 5),
    ) {
        let a = &a[..k];
        let b = &b[..k];
        let mid: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| 0.5 * (x + y)).collect();
        let fa = throughput(&topo, &[rate], a).unwrap();
        let fb = throughput(&topo, &[rate], b).unwrap();
        let fm = throughput(&topo, &[rate], &mid).unwrap();
        prop_assert!(fm >= 0.5 * (fa + fb) - 1e-9, "concavity violated: f(mid)={fm} avg={}", 0.5*(fa+fb));
    }

    #[test]
    fn monotone_in_source_rate(
        (topo, k) in arb_chain(),
        r0 in 1.0..300.0f64,
        dr in 0.1..100.0f64,
        caps in proptest::collection::vec(1.0..300.0f64, 5),
    ) {
        let caps = &caps[..k];
        let f0 = throughput(&topo, &[r0], caps).unwrap();
        let f1 = throughput(&topo, &[r0 + dr], caps).unwrap();
        prop_assert!(f1 >= f0 - 1e-9);
    }

    #[test]
    fn autodiff_gradient_matches_finite_difference(
        (topo, k) in arb_chain(),
        rate in 10.0..300.0f64,
        caps in proptest::collection::vec(5.0..300.0f64, 5),
    ) {
        let caps = caps[..k].to_vec();
        let (f, g) = throughput_grad(&topo, &[rate], &caps).unwrap();
        prop_assert!((f - throughput(&topo, &[rate], &caps).unwrap()).abs() < 1e-12);
        let fd = finite_grad(|c| throughput(&topo, &[rate], c).unwrap(), &caps, 1e-4);
        for i in 0..k {
            let diff = (g[i] - fd[i]).abs();
            // Near a min() kink the subgradient and FD differ by design —
            // accept either a close match or a kink signature (FD between
            // the two one-sided derivatives, i.e. |diff| ≤ max slope 1.5^4).
            if diff > 1e-4 {
                // verify we are indeed near a kink: perturbing the capacity
                // slightly flips the active branch.
                let mut lo = caps.clone();
                lo[i] -= 2e-4;
                let mut hi = caps.clone();
                hi[i] += 2e-4;
                let gl = throughput_grad(&topo, &[rate], &lo).unwrap().1[i];
                let gh = throughput_grad(&topo, &[rate], &hi).unwrap().1[i];
                prop_assert!(
                    (gl - gh).abs() > 1e-9,
                    "gradient mismatch away from kink: op {i}, ad={} fd={}", g[i], fd[i]
                );
            }
        }
    }

    #[test]
    fn gradients_between_zero_and_max_selectivity((topo, k) in arb_chain(),
        rate in 10.0..300.0f64,
        caps in proptest::collection::vec(5.0..300.0f64, 5),
    ) {
        let caps = &caps[..k];
        let (_, g) = throughput_grad(&topo, &[rate], caps).unwrap();
        for gi in g {
            prop_assert!(gi >= 0.0, "negative capacity gradient {gi}");
            prop_assert!(gi <= 1.5f64.powi(4) + 1e-9);
        }
    }
}
