//! Error type for GP operations that can fail numerically.

use crate::linalg::NotPositiveDefinite;
use std::fmt;

/// Numeric failures in GP regression. Today the only failure mode is a
/// Cholesky factorization losing positive-definiteness (degenerate kernel
/// matrix, duplicated points with zero noise, NaN inputs); a dedicated enum
/// keeps call sites stable as further modes appear.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpError {
    /// `K + σ²I` (or a posterior covariance) stopped being positive
    /// definite at the given pivot.
    NotPositiveDefinite { pivot: usize },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::NotPositiveDefinite { pivot } => {
                write!(f, "kernel matrix not positive definite at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for GpError {}

impl From<NotPositiveDefinite> for GpError {
    fn from(e: NotPositiveDefinite) -> GpError {
        GpError::NotPositiveDefinite { pivot: e.pivot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_from_linalg_error() {
        let e: GpError = NotPositiveDefinite { pivot: 3 }.into();
        assert_eq!(e, GpError::NotPositiveDefinite { pivot: 3 });
        assert!(e.to_string().contains("pivot 3"));
    }
}
