//! Information-gain accounting and the Theorem-1 schedules.
//!
//! The regret bound of Theorem 1 is driven by the *maximum information gain*
//! `Γ_T = max_{|A|≤T} I(c_A; y)` where
//! `I(c_A; y) = ½ log det(I + σ⁻² K_A)` for a GP with noise σ². For the
//! squared-exponential kernel `Γ_T = O((log T)^{d+1})` [Srinivas et al.].
//! This module provides:
//!
//! * [`information_gain`] — exact information gain of a realized sample set,
//!   used by the `regret_growth` experiment to verify the bound empirically;
//! * [`se_gamma_bound`] — the asymptotic SE-kernel bound shape
//!   `(log(T+1))^{d+1}`;
//! * [`beta_t`] — the paper's UCB weight `β_t = 2 log(|X| t² π² δ / 6)`.

use crate::error::GpError;
use crate::kernel::Kernel;
use crate::linalg::{Cholesky, Matrix};

/// Exact information gain `½ log det(I + σ⁻² K_A)` of observing the points
/// `xs` under kernel `k` with noise variance `noise_var`.
///
/// # Errors
/// [`GpError::NotPositiveDefinite`] if `I + σ⁻²K` cannot be factorized,
/// which indicates NaN inputs or an invalid kernel.
pub fn information_gain<K: Kernel>(
    kernel: &K,
    xs: &[Vec<f64>],
    noise_var: f64,
) -> Result<f64, GpError> {
    assert!(noise_var > 0.0);
    let n = xs.len();
    if n == 0 {
        return Ok(0.0);
    }
    let gram = kernel.gram(xs);
    let mut m = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] += gram[(i, j)] / noise_var;
        }
    }
    let ch = Cholesky::factor(&m)?;
    Ok(0.5 * ch.log_det())
}

/// The asymptotic shape of the SE-kernel maximum information gain,
/// `Γ_T = O((log T)^{d+1})`, evaluated as `(log(T+1))^{d+1}` (the constant is
/// absorbed; only growth order matters for the bound).
pub fn se_gamma_bound(t: usize, dim: usize) -> f64 {
    ((t as f64 + 1.0).ln()).powf((dim + 1) as f64)
}

/// The paper's UCB weight (Section 5.1):
/// `β_t = 2 log(|X| t² π² δ / 6)` with `δ ∈ (1, ∞)`.
///
/// # Panics
/// If `delta <= 1` or `n_configs == 0` or `t == 0`.
pub fn beta_t(n_configs: usize, t: usize, delta: f64) -> f64 {
    assert!(delta > 1.0, "δ must lie in (1, ∞)");
    assert!(n_configs > 0 && t > 0);
    let arg =
        n_configs as f64 * (t as f64) * (t as f64) * std::f64::consts::PI.powi(2) * delta / 6.0;
    // For tiny t and |X| the argument can fall below 1 making the log
    // negative; the algorithm needs a non-negative exploration weight.
    (2.0 * arg.ln()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExp;

    #[test]
    fn info_gain_empty_is_zero() {
        let k = SquaredExp::new(1.0);
        assert_eq!(information_gain(&k, &[], 0.1), Ok(0.0));
    }

    #[test]
    fn info_gain_single_point() {
        // ½ log(1 + k(x,x)/σ²)
        let k = SquaredExp::new(1.0);
        let g = information_gain(&k, &[vec![0.0]], 0.5).unwrap();
        assert!((g - 0.5 * (1.0 + 1.0 / 0.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn info_gain_monotone_in_points() {
        let k = SquaredExp::new(1.0);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut prev = 0.0;
        for i in 0..10 {
            xs.push(vec![i as f64]);
            let g = information_gain(&k, &xs, 0.1).unwrap();
            assert!(g > prev, "info gain must increase: {g} vs {prev}");
            prev = g;
        }
    }

    #[test]
    fn duplicate_points_add_little_information() {
        let k = SquaredExp::new(1.0);
        let spread = information_gain(&k, &[vec![0.0], vec![5.0]], 0.1).unwrap();
        let dup = information_gain(&k, &[vec![0.0], vec![0.0]], 0.1).unwrap();
        assert!(spread > dup);
    }

    #[test]
    fn gamma_bound_grows_polylog() {
        let g10 = se_gamma_bound(10, 1);
        let g100 = se_gamma_bound(100, 1);
        let g1000 = se_gamma_bound(1000, 1);
        assert!(g100 > g10 && g1000 > g100);
        // poly-log: ratio of successive decades shrinks
        assert!(g1000 / g100 < g100 / g10 * 1.01);
    }

    #[test]
    fn beta_schedule_increases_with_t_and_configs() {
        let b1 = beta_t(100, 1, 2.0);
        let b10 = beta_t(100, 10, 2.0);
        assert!(b10 > b1);
        assert!(beta_t(1000, 10, 2.0) > beta_t(100, 10, 2.0));
        assert!(b1 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "δ must lie in (1, ∞)")]
    fn beta_rejects_bad_delta() {
        let _ = beta_t(10, 1, 0.5);
    }
}
