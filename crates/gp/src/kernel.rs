//! Covariance (kernel) functions.
//!
//! The paper adopts the squared-exponential kernel (Section 5.1, citing
//! its reference \[15\]); we also provide Matérn-5/2, linear, constant and white kernels
//! plus sum/product/scale combinators for the kernel-choice ablation
//! (`bench --bin ablations`).

use crate::linalg::{dot, sq_dist, Matrix};

/// A positive-semi-definite covariance function over `R^d`.
pub trait Kernel: Send + Sync {
    /// Evaluate `k(x, x')`.
    fn eval(&self, x: &[f64], y: &[f64]) -> f64;

    /// Prior variance `k(x, x)`. Override when a cheaper form exists.
    fn diag(&self, x: &[f64]) -> f64 {
        self.eval(x, x)
    }

    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Gram matrix over a set of points.
    fn gram(&self, xs: &[Vec<f64>]) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.eval(&xs[i], &xs[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Cross-covariance vector `[k(x_1, x), …, k(x_n, x)]` (the `k_t(x)` of
    /// Eq. 17).
    fn cross(&self, xs: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        xs.iter().map(|xi| self.eval(xi, x)).collect()
    }
}

/// Squared-exponential (RBF) kernel
/// `k(x, x') = σ_f² · exp(−‖x − x'‖² / (2 ℓ²))` — the paper's kernel.
/// Its maximum information gain obeys `Γ_T = O((log T)^{d+1})` (Theorem 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SquaredExp {
    /// Length scale ℓ (> 0).
    pub length_scale: f64,
    /// Signal variance σ_f² (> 0).
    pub signal_var: f64,
}

impl SquaredExp {
    /// Unit-variance kernel with the given length scale.
    pub fn new(length_scale: f64) -> SquaredExp {
        SquaredExp {
            length_scale,
            signal_var: 1.0,
        }
    }

    /// Full constructor.
    pub fn with_signal(length_scale: f64, signal_var: f64) -> SquaredExp {
        assert!(length_scale > 0.0 && signal_var > 0.0);
        SquaredExp {
            length_scale,
            signal_var,
        }
    }
}

impl Kernel for SquaredExp {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.signal_var * (-sq_dist(x, y) / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    fn diag(&self, _x: &[f64]) -> f64 {
        self.signal_var
    }

    fn name(&self) -> String {
        format!("SE(l={}, s2={})", self.length_scale, self.signal_var)
    }
}

/// Matérn-5/2 kernel: `σ_f² (1 + √5 r/ℓ + 5r²/(3ℓ²)) exp(−√5 r/ℓ)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Matern52 {
    pub length_scale: f64,
    pub signal_var: f64,
}

impl Matern52 {
    pub fn new(length_scale: f64) -> Matern52 {
        Matern52 {
            length_scale,
            signal_var: 1.0,
        }
    }
}

impl Kernel for Matern52 {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let r = sq_dist(x, y).sqrt();
        let a = 5.0_f64.sqrt() * r / self.length_scale;
        self.signal_var * (1.0 + a + a * a / 3.0) * (-a).exp()
    }

    fn diag(&self, _x: &[f64]) -> f64 {
        self.signal_var
    }

    fn name(&self) -> String {
        format!("Matern52(l={}, s2={})", self.length_scale, self.signal_var)
    }
}

/// Linear kernel `k(x, x') = σ_b² + σ_v² · x·x'`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearKernel {
    pub bias_var: f64,
    pub weight_var: f64,
}

impl LinearKernel {
    pub fn new(bias_var: f64, weight_var: f64) -> LinearKernel {
        LinearKernel {
            bias_var,
            weight_var,
        }
    }
}

impl Kernel for LinearKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.bias_var + self.weight_var * dot(x, y)
    }

    fn name(&self) -> String {
        format!("Linear(b2={}, w2={})", self.bias_var, self.weight_var)
    }
}

/// White-noise kernel: `σ² · 1[x == x']`. Mostly useful in sums.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WhiteKernel {
    pub noise_var: f64,
}

impl Kernel for WhiteKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        if x == y {
            self.noise_var
        } else {
            0.0
        }
    }

    fn name(&self) -> String {
        format!("White(s2={})", self.noise_var)
    }
}

/// Constant kernel `k ≡ c` (c ≥ 0).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConstantKernel {
    pub value: f64,
}

impl Kernel for ConstantKernel {
    fn eval(&self, _x: &[f64], _y: &[f64]) -> f64 {
        self.value
    }

    fn name(&self) -> String {
        format!("Const({})", self.value)
    }
}

/// Sum of two kernels (PSD-closed).
pub struct SumKernel<A, B>(pub A, pub B);

impl<A: Kernel, B: Kernel> Kernel for SumKernel<A, B> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.0.eval(x, y) + self.1.eval(x, y)
    }

    fn name(&self) -> String {
        format!("{} + {}", self.0.name(), self.1.name())
    }
}

/// Product of two kernels (PSD-closed).
pub struct ProductKernel<A, B>(pub A, pub B);

impl<A: Kernel, B: Kernel> Kernel for ProductKernel<A, B> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.0.eval(x, y) * self.1.eval(x, y)
    }

    fn name(&self) -> String {
        format!("({}) * ({})", self.0.name(), self.1.name())
    }
}

/// A kernel scaled by a non-negative constant.
pub struct ScaledKernel<A> {
    pub inner: A,
    pub scale: f64,
}

impl<A: Kernel> Kernel for ScaledKernel<A> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        self.scale * self.inner.eval(x, y)
    }

    fn name(&self) -> String {
        format!("{} * ({})", self.scale, self.inner.name())
    }
}

impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).eval(x, y)
    }

    fn diag(&self, x: &[f64]) -> f64 {
        (**self).diag(x)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<K: Kernel + ?Sized> Kernel for &K {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        (**self).eval(x, y)
    }

    fn diag(&self, x: &[f64]) -> f64 {
        (**self).diag(x)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Cholesky;

    #[test]
    fn se_basics() {
        let k = SquaredExp::new(1.0);
        assert_eq!(k.eval(&[0.0], &[0.0]), 1.0);
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5f64).exp()).abs() < 1e-15);
        assert!(k.eval(&[0.0], &[3.0]) < k.eval(&[0.0], &[1.0]));
        assert_eq!(k.diag(&[7.0]), 1.0);
    }

    #[test]
    fn se_symmetry_and_bounds() {
        let k = SquaredExp::with_signal(0.7, 2.5);
        let a = [1.0, 2.0];
        let b = [-0.5, 3.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert!(k.eval(&a, &b) <= k.diag(&a));
        assert!(k.eval(&a, &b) > 0.0);
    }

    #[test]
    fn matern_basics() {
        let k = Matern52::new(1.0);
        assert!((k.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-15);
        assert!(k.eval(&[0.0], &[0.5]) > k.eval(&[0.0], &[2.0]));
    }

    #[test]
    fn linear_kernel_matches_formula() {
        let k = LinearKernel::new(0.5, 2.0);
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 0.5 + 2.0 * 11.0);
    }

    #[test]
    fn white_is_diagonal() {
        let k = WhiteKernel { noise_var: 0.3 };
        assert_eq!(k.eval(&[1.0], &[1.0]), 0.3);
        assert_eq!(k.eval(&[1.0], &[1.0 + 1e-12]), 0.0);
    }

    #[test]
    fn combinators_compose() {
        let k = SumKernel(SquaredExp::new(1.0), WhiteKernel { noise_var: 0.1 });
        assert!((k.eval(&[0.0], &[0.0]) - 1.1).abs() < 1e-15);
        let p = ProductKernel(ConstantKernel { value: 2.0 }, SquaredExp::new(1.0));
        assert_eq!(p.eval(&[0.0], &[0.0]), 2.0);
        let s = ScaledKernel {
            inner: SquaredExp::new(1.0),
            scale: 3.0,
        };
        assert_eq!(s.eval(&[0.0], &[0.0]), 3.0);
    }

    #[test]
    fn gram_is_psd_for_se() {
        let k = SquaredExp::new(0.8);
        let xs: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 * 0.3, (i * i) as f64 * 0.01])
            .collect();
        let mut g = k.gram(&xs);
        // add jitter for strict positive definiteness of the factorization
        for i in 0..8 {
            g[(i, i)] += 1e-10;
        }
        assert!(g.is_symmetric(0.0));
        assert!(Cholesky::factor(&g).is_ok());
    }

    #[test]
    fn cross_matches_eval() {
        let k = Matern52::new(1.3);
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let c = k.cross(&xs, &[0.5]);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(c[i], k.eval(x, &[0.5]));
        }
    }

    #[test]
    fn boxed_and_ref_kernels() {
        let k: Box<dyn Kernel> = Box::new(SquaredExp::new(1.0));
        assert_eq!(k.eval(&[0.0], &[0.0]), 1.0);
        let kr: &dyn Kernel = &SquaredExp::new(1.0);
        assert_eq!(kr.diag(&[0.0]), 1.0);
        assert!(k.name().starts_with("SE"));
    }
}
