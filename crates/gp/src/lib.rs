//! Exact Gaussian-process regression for Dragster.
//!
//! The paper models each operator's service capacity as a draw from a
//! Gaussian process, `y_i ~ GP(μ_i(x_i), k_i(x, x_i))` (Eq. 7), observes
//! noisy capacity samples `c_i(t) = y_i(t) + ε`, `ε ~ N(0, σ²)` (Eq. 8), and
//! computes the exact posterior of Eq. (17):
//!
//! ```text
//! μ_t(x)      = k_t(x)ᵀ (K_t + σ² I)⁻¹ y_t
//! k_t(x, x')  = k(x, x') − k_t(x)ᵀ (K_t + σ² I)⁻¹ k_t(x')
//! σ_t²(x)     = k_t(x, x)
//! ```
//!
//! The reference implementation used Python's `sklearn`
//! `GaussianProcessRegressor`; no mature Rust equivalent exists, so this
//! crate provides the whole stack from scratch:
//!
//! * [`linalg`] — dense vectors/matrices, symmetric Cholesky factorization,
//!   triangular solves, and incremental (append-one-row) Cholesky updates so
//!   each online observation costs O(t²) instead of O(t³).
//! * [`kernel`] — squared-exponential (the paper's choice), Matérn-5/2,
//!   linear, white-noise and constant kernels plus sum/product/scale
//!   combinators.
//! * [`regression`] — the exact GP posterior, log marginal likelihood, and a
//!   small grid-search hyper-parameter fitter.
//! * [`info_gain`] — information-gain accounting `I(c_A; y) = ½ log det(I +
//!   σ⁻² K_A)` and the `Γ_T`/`β_t` schedules appearing in Theorem 1.

pub mod error;
pub mod info_gain;
pub mod kernel;
pub mod linalg;
pub mod regression;

pub use error::GpError;
pub use info_gain::{beta_t, information_gain, se_gamma_bound};
pub use kernel::{
    ConstantKernel, Kernel, LinearKernel, Matern52, ProductKernel, ScaledKernel, SquaredExp,
    SumKernel, WhiteKernel,
};
pub use linalg::{Cholesky, Matrix};
pub use regression::{GpHyperFit, GpPosterior, GpRegressor, GridCache};
