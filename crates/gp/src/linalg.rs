//! Dense linear algebra for GP regression.
//!
//! The GP posterior (Eq. 17) needs only one non-trivial primitive: solving
//! linear systems against the symmetric positive-definite Gram matrix
//! `K_t + σ² I`. We therefore implement exactly that — a row-major dense
//! [`Matrix`], a packed lower-triangular [`Cholesky`] factorization with
//! forward/backward substitution, and an *incremental* factor extension so
//! the online setting (one new observation per decision slot) costs O(t²)
//! per update rather than O(t³) — or O(t), via
//! [`Cholesky::extend_with_solved`], when the caller already holds the
//! solved new column (the grid cache in the regression layer does).
//!
//! No external linear-algebra crate is used; the sizes involved (t ≤ a few
//! thousand observations, d ≤ 3 input dimensions) make a cache-friendly
//! textbook implementation more than fast enough (see `benches/gp_bench.rs`).

/// Row-major dense matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Build an `n × n` matrix from an element function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other`'s rows, cache-friendly
        // for row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Largest absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`, stored *packed* row-major: row `i` holds exactly the
/// `i + 1` entries `L[i][0..=i]`. Packed storage makes the incremental
/// [`Cholesky::extend`] an append — the new row is pushed onto the end of
/// the buffer — so the online setting pays no O(n²) copy and no fresh
/// allocation per observation (the backing `Vec` grows geometrically).
#[derive(Clone, Debug, Default)]
pub struct Cholesky {
    /// Packed rows: row `i` occupies `data[i(i+1)/2 .. i(i+1)/2 + i + 1]`.
    data: Vec<f64>,
    /// Order of the factored matrix.
    n: usize,
}

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Start offset of packed row `i`.
#[inline]
fn row_start(i: usize) -> usize {
    i * (i + 1) / 2
}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    pub fn factor(a: &Matrix) -> Result<Cholesky, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut data = vec![0.0; row_start(n)];
        for i in 0..n {
            let ri = row_start(i);
            for j in 0..=i {
                let rj = row_start(j);
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= data[ri + k] * data[rj + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    data[ri + i] = s.sqrt();
                } else {
                    data[ri + j] = s / data[rj + j];
                }
            }
        }
        Ok(Cholesky { data, n })
    }

    /// An empty (0×0) factor — the starting point for incremental builds.
    pub fn empty() -> Cholesky {
        Cholesky::default()
    }

    /// Drop back to a 0×0 factor, keeping the backing allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.n = 0;
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Borrow packed row `i` of the factor: the entries `L[i][0..=i]`.
    /// Row `t` after an [`Cholesky::extend`] is exactly the data an
    /// incremental forward-substitution needs to append one entry to a
    /// previously solved system (see `GridCache` in the regression layer).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.n);
        &self.data[row_start(i)..row_start(i) + i + 1]
    }

    /// Entry `L[i][j]` for `j <= i`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(j <= i && i < self.n);
        self.data[row_start(i) + j]
    }

    /// Materialize the factor as a dense lower-triangular [`Matrix`]
    /// (upper triangle zero) — for tests, diagnostics, and cold paths.
    pub fn factor_matrix(&self) -> Matrix {
        let mut l = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for (j, &v) in self.row(i).iter().enumerate() {
                l[(i, j)] = v;
            }
        }
        l
    }

    /// Extend the factorization of `A` to that of
    /// `[[A, b], [bᵀ, c]]`: one triangular solve plus a scalar pivot.
    /// `b` is the new column (length = current order), `c` the new
    /// diagonal entry.
    pub fn extend(&mut self, b: &[f64], c: f64) -> Result<(), NotPositiveDefinite> {
        assert_eq!(b.len(), self.n, "new column has wrong length");
        let w = self.solve_lower(b);
        self.extend_with_solved(&w, c)
    }

    /// Extend with the triangular solve already done: `w = L⁻¹ b` for the
    /// new column `b`. This is the fast path for callers that maintain
    /// solved columns incrementally (the grid cache): appending the new
    /// factor row then costs O(n) instead of the O(n²) re-solve.
    ///
    /// The pivot is computed with the exact expression [`Cholesky::extend`]
    /// uses, so the two entry points produce bit-identical factors given
    /// bit-identical `w`.
    pub fn extend_with_solved(&mut self, w: &[f64], c: f64) -> Result<(), NotPositiveDefinite> {
        let n = self.n;
        assert_eq!(w.len(), n, "solved column has wrong length");
        let pivot2 = c - w.iter().map(|x| x * x).sum::<f64>();
        if pivot2 <= 0.0 {
            return Err(NotPositiveDefinite { pivot: n });
        }
        self.data.extend_from_slice(w);
        self.data.push(pivot2.sqrt());
        self.n = n + 1;
        Ok(())
    }

    /// Solve `L x = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.n);
        self.solve_lower_into(b, &mut x);
        x
    }

    /// Forward substitution into a caller-provided buffer (cleared first),
    /// so batched queries can reuse one workspace across solves.
    pub fn solve_lower_into(&self, b: &[f64], x: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(b.len(), n);
        x.clear();
        for i in 0..n {
            let row = self.row(i);
            let mut s = b[i];
            for (lk, xk) in row.iter().zip(x.iter()) {
                s -= lk * xk;
            }
            x.push(s / row[i]);
        }
    }

    /// Solve `Lᵀ x = b` (backward substitution).
    #[allow(clippy::needless_range_loop)] // triangular indexing is clearer explicit
    pub fn solve_lower_t(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= self.at(k, i) * x[k];
            }
            x[i] = s / self.at(i, i);
        }
        x
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_lower_t(&self.solve_lower(b))
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.n).map(|i| self.at(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Reconstruct `A = L Lᵀ` (for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let l = self.factor_matrix();
        l.matmul(&l.transpose())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a fixed B is SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 3.0, 1.0, 3.0, 7.0])
    }

    #[test]
    fn index_and_row() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_matmul_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        let p = m.matmul(&m.transpose());
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
        assert!(p.is_symmetric(0.0));
    }

    #[test]
    fn identity_is_neutral() {
        let m = spd3();
        let i = Matrix::identity(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn cholesky_solve() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, −1
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn incremental_extend_matches_batch() {
        let a = spd3();
        let mut inc = Cholesky::empty();
        inc.extend(&[], a[(0, 0)]).unwrap();
        inc.extend(&[a[(1, 0)]], a[(1, 1)]).unwrap();
        inc.extend(&[a[(2, 0)], a[(2, 1)]], a[(2, 2)]).unwrap();
        let batch = Cholesky::factor(&a).unwrap();
        assert!(inc.factor_matrix().max_abs_diff(&batch.factor_matrix()) < 1e-12);
    }

    #[test]
    fn extend_with_solved_matches_extend_bitwise() {
        let a = spd3();
        let mut plain = Cholesky::empty();
        let mut fast = Cholesky::empty();
        for i in 0..3 {
            let b: Vec<f64> = (0..i).map(|j| a[(i, j)]).collect();
            plain.extend(&b, a[(i, i)]).unwrap();
            let w = fast.solve_lower(&b);
            fast.extend_with_solved(&w, a[(i, i)]).unwrap();
        }
        for i in 0..3 {
            for j in 0..=i {
                assert_eq!(plain.at(i, j).to_bits(), fast.at(i, j).to_bits());
            }
        }
    }

    #[test]
    fn packed_rows_and_entries() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        let l = ch.factor_matrix();
        for i in 0..3 {
            assert_eq!(ch.row(i).len(), i + 1);
            for j in 0..=i {
                assert_eq!(ch.at(i, j), l[(i, j)]);
            }
        }
    }

    #[test]
    fn clear_returns_to_empty() {
        let mut ch = Cholesky::factor(&spd3()).unwrap();
        assert_eq!(ch.order(), 3);
        ch.clear();
        assert_eq!(ch.order(), 0);
        ch.extend(&[], 4.0).unwrap();
        assert_eq!(ch.at(0, 0), 2.0);
    }

    #[test]
    fn solve_lower_into_reuses_buffer() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        let b = vec![3.0, 1.0, 2.0];
        let mut buf = vec![9.0; 7]; // stale junk: must be cleared
        ch.solve_lower_into(&b, &mut buf);
        assert_eq!(buf, ch.solve_lower(&b));
    }

    #[test]
    fn extend_with_solved_rejects_bad_pivot() {
        let mut ch = Cholesky::factor(&spd3()).unwrap();
        let w = vec![10.0, 10.0, 10.0];
        assert!(ch.extend_with_solved(&w, 1.0).is_err());
        assert_eq!(ch.order(), 3); // untouched on error
    }

    #[test]
    fn log_det_matches_direct() {
        // det of spd3 via cofactor expansion:
        // 5(42-9) - 2(14-3) + 1(6-6) = 165 - 22 + 0 = 143
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!((ch.log_det() - 143.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_lower_and_transpose() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![3.0, 1.0, 2.0];
        let y = ch.solve_lower(&b);
        // L y = b
        let l = ch.factor_matrix();
        let back = l.matvec(&y);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        let z = ch.solve_lower_t(&b);
        let back2 = l.transpose().matvec(&z);
        for (u, v) in back2.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
