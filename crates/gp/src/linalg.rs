//! Dense linear algebra for GP regression.
//!
//! The GP posterior (Eq. 17) needs only one non-trivial primitive: solving
//! linear systems against the symmetric positive-definite Gram matrix
//! `K_t + σ² I`. We therefore implement exactly that — a row-major dense
//! [`Matrix`], a lower-triangular [`Cholesky`] factorization with
//! forward/backward substitution, and an *incremental* factor extension so
//! the online setting (one new observation per decision slot) costs O(t²)
//! per update rather than O(t³).
//!
//! No external linear-algebra crate is used; the sizes involved (t ≤ a few
//! thousand observations, d ≤ 3 input dimensions) make a cache-friendly
//! textbook implementation more than fast enough (see `benches/gp_bench.rs`).

/// Row-major dense matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Build an `n × n` matrix from an element function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other`'s rows, cache-friendly
        // for row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Largest absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`, stored densely (upper triangle zero).
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    pub fn factor(a: &Matrix) -> Result<Cholesky, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// An empty (0×0) factor — the starting point for incremental builds.
    pub fn empty() -> Cholesky {
        Cholesky {
            l: Matrix::zeros(0, 0),
        }
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }

    /// Extend the factorization of `A` to that of
    /// `[[A, b], [bᵀ, c]]` in O(n²): one triangular solve plus a scalar
    /// pivot. `b` is the new column (length = current order), `c` the new
    /// diagonal entry.
    pub fn extend(&mut self, b: &[f64], c: f64) -> Result<(), NotPositiveDefinite> {
        let n = self.order();
        assert_eq!(b.len(), n, "new column has wrong length");
        // Solve L w = b.
        let w = self.solve_lower(b);
        let pivot2 = c - w.iter().map(|x| x * x).sum::<f64>();
        if pivot2 <= 0.0 {
            return Err(NotPositiveDefinite { pivot: n });
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                grown[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, wj) in w.iter().enumerate() {
            grown[(n, j)] = *wj;
        }
        grown[(n, n)] = pivot2.sqrt();
        self.l = grown;
        Ok(())
    }

    /// Solve `L x = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // triangular indexing is clearer explicit
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n);
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solve `Lᵀ x = b` (backward substitution).
    #[allow(clippy::needless_range_loop)] // triangular indexing is clearer explicit
    pub fn solve_lower_t(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_lower_t(&self.solve_lower(b))
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Reconstruct `A = L Lᵀ` (for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l.matmul(&self.l.transpose())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a fixed B is SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 3.0, 1.0, 3.0, 7.0])
    }

    #[test]
    fn index_and_row() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_matmul_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        let p = m.matmul(&m.transpose());
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
        assert!(p.is_symmetric(0.0));
    }

    #[test]
    fn identity_is_neutral() {
        let m = spd3();
        let i = Matrix::identity(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn cholesky_solve() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, −1
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn incremental_extend_matches_batch() {
        let a = spd3();
        let mut inc = Cholesky::empty();
        inc.extend(&[], a[(0, 0)]).unwrap();
        inc.extend(&[a[(1, 0)]], a[(1, 1)]).unwrap();
        inc.extend(&[a[(2, 0)], a[(2, 1)]], a[(2, 2)]).unwrap();
        let batch = Cholesky::factor(&a).unwrap();
        assert!(inc.factor_matrix().max_abs_diff(batch.factor_matrix()) < 1e-12);
    }

    #[test]
    fn log_det_matches_direct() {
        // det of spd3 via cofactor expansion:
        // 5(42-9) - 2(14-3) + 1(6-6) = 165 - 22 + 0 = 143
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!((ch.log_det() - 143.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_lower_and_transpose() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![3.0, 1.0, 2.0];
        let y = ch.solve_lower(&b);
        // L y = b
        let l = ch.factor_matrix();
        let back = l.matvec(&y);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
        let z = ch.solve_lower_t(&b);
        let back2 = l.transpose().matvec(&z);
        for (u, v) in back2.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
