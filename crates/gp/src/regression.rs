//! Exact Gaussian-process regression (Eq. 17 of the paper).
//!
//! A [`GpRegressor`] owns a kernel, a noise variance σ², a constant prior
//! mean, and the observation history `(x_t, c_t)`. After each new
//! observation the Cholesky factor of `K_t + σ² I` is *extended* in O(t²)
//! ([`crate::linalg::Cholesky::extend`]), which is what makes the online
//! setting (one observation per 10-minute decision slot, hundreds of slots)
//! cheap.
//!
//! Both posterior moments are computed from the *same* triangular solve
//! `v = L⁻¹ k_x`: with `w = L⁻¹ (y − m)` maintained incrementally,
//! `μ = m + vᵀw` and `σ² = k(x,x) − vᵀv`. Queries on a **fixed grid** (the
//! acquisition grid of the UCB layer is always `1..=K`) can skip the solve
//! entirely: a [`GridCache`] keeps the solved column `L⁻¹ K(X, g)` per grid
//! point and extends it by one entry per observation — the
//! forward-substitution prefix property guarantees existing entries never
//! change — so a full-grid posterior costs O(t·G) per slot instead of
//! O(t²·G), and is bit-identical to the uncached path.

use crate::error::GpError;
use crate::kernel::Kernel;
use crate::linalg::{dot, Cholesky};

/// Posterior mean and variance of the latent function at one query point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpPosterior {
    /// Posterior mean `μ_t(x)`.
    pub mean: f64,
    /// Posterior variance `σ_t²(x)` of the *latent* function (noise-free).
    pub var: f64,
}

impl GpPosterior {
    /// Posterior standard deviation.
    pub fn std(&self) -> f64 {
        self.var.max(0.0).sqrt()
    }

    /// Upper confidence bound `μ + β^{1/2} σ` (the classic GP-UCB index).
    pub fn ucb(&self, beta: f64) -> f64 {
        self.mean + beta.sqrt() * self.std()
    }

    /// Lower confidence bound `μ − β^{1/2} σ`.
    pub fn lcb(&self, beta: f64) -> f64 {
        self.mean - beta.sqrt() * self.std()
    }
}

/// Exact GP regression with a constant prior mean.
///
/// ```
/// use dragster_gp::{GpRegressor, SquaredExp};
///
/// let mut gp = GpRegressor::new(SquaredExp::new(1.0), 1e-6);
/// gp.observe(&[0.0], 1.0).unwrap();
/// gp.observe(&[2.0], 3.0).unwrap();
/// let p = gp.posterior(&[1.0]);
/// assert!(p.mean > 1.0 && p.mean < 3.0); // interpolates
/// assert!(p.var < 1.0);                  // less uncertain than the prior
/// ```
pub struct GpRegressor<K: Kernel> {
    kernel: K,
    noise_var: f64,
    prior_mean: f64,
    xs: Vec<Vec<f64>>,
    /// Centered targets `c_t − prior_mean`.
    ys_centered: Vec<f64>,
    chol: Cholesky,
    /// `w = L⁻¹ (y − m)` for the current factor. Append-only: extending
    /// the factor appends one entry and never changes existing ones
    /// (forward-substitution prefix property), so maintaining it costs
    /// O(t) per observation.
    wy: Vec<f64>,
    /// Fixed-grid posterior cache (attached via
    /// [`GpRegressor::set_grid`]), serving O(t) grid queries.
    grid: Option<GridCache>,
}

/// Incrementally maintained posterior cache for a *fixed* query grid.
///
/// Per grid point `g` it holds the cross-covariance column
/// `kg[g][i] = k(x_i, g)` and the solved column `vg[g] = L⁻¹ kg[g]`
/// against the regressor's incremental Cholesky factor, plus the prior
/// diagonal `k(g, g)`. Each [`GpRegressor::observe`] appends exactly one
/// entry to every column in O(t·G); no entry is ever rewritten, so cached
/// grid posteriors are bit-identical to [`GpRegressor::posterior`] at the
/// same point. The cache is an opaque token outside the regression layer —
/// move it between regressors with [`GpRegressor::take_grid`] /
/// [`GpRegressor::install_grid`] to reuse its allocations across refits.
pub struct GridCache {
    /// The fixed query points.
    pts: Vec<Vec<f64>>,
    /// `k(g, g)` per grid point, under the owning regressor's kernel.
    diag: Vec<f64>,
    /// Cross-covariance columns `K(X, g)`.
    kg: Vec<Vec<f64>>,
    /// Solved columns `L⁻¹ K(X, g)`.
    vg: Vec<Vec<f64>>,
}

impl GridCache {
    /// Index of the grid point bit-identical to `x`, if any.
    fn find(&self, x: &[f64]) -> Option<usize> {
        self.pts.iter().position(|p| {
            p.len() == x.len()
                && p.iter()
                    .zip(x.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
    }
}

impl<K: Kernel> GpRegressor<K> {
    /// Create an empty regressor.
    ///
    /// # Panics
    /// If `noise_var <= 0` (exact GP regression needs a jitter anyway; pass
    /// the paper's observation noise σ²).
    pub fn new(kernel: K, noise_var: f64) -> GpRegressor<K> {
        assert!(noise_var > 0.0, "noise variance must be positive");
        GpRegressor {
            kernel,
            noise_var,
            prior_mean: 0.0,
            xs: Vec::new(),
            ys_centered: Vec::new(),
            chol: Cholesky::empty(),
            wy: Vec::new(),
            grid: None,
        }
    }

    /// Set a constant prior mean (e.g. a rough capacity guess); affects
    /// predictions away from data. Clears nothing — may be called before
    /// the first observation only.
    ///
    /// # Panics
    /// If observations have already been added.
    pub fn with_prior_mean(mut self, m: f64) -> GpRegressor<K> {
        assert!(self.xs.is_empty(), "set the prior mean before observing");
        self.prior_mean = m;
        self
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The observation noise variance σ².
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Borrow the kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// Borrow the observed inputs.
    pub fn observed_inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Add one observation `(x, c)` where `c = y(x) + ε` and refresh the
    /// factorization incrementally — O(t²) in general, O(t·G) when `x`
    /// bit-equals a cached grid point (the solved column the extension
    /// needs is then already in the cache).
    ///
    /// # Errors
    /// [`GpError::NotPositiveDefinite`] if extending the factor of
    /// `K + σ²I` fails — which happens only with NaN inputs or a kernel
    /// whose diagonal plus noise is not strictly positive. The regressor is
    /// left unchanged on error.
    pub fn observe(&mut self, x: &[f64], c: f64) -> Result<(), GpError> {
        let t = self.xs.len();
        let diag = self.kernel.diag(x) + self.noise_var;
        // Fast path: if `x` bit-equals a grid point, the cached solved
        // column *is* `L⁻¹ b` for the new Gram column `b` (same kernel
        // evaluations, same forward substitution), so the factor extends
        // in O(t) with no re-solve and a bit-identical result.
        let hit = self.grid.as_ref().and_then(|g| g.find(x));
        if let (Some(gi), Some(g)) = (hit, self.grid.as_ref()) {
            self.chol.extend_with_solved(&g.vg[gi], diag)?;
        } else {
            let b: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
            self.chol.extend(&b, diag)?;
        }
        self.xs.push(x.to_vec());
        self.ys_centered.push(c - self.prior_mean);
        // `w = L⁻¹(y − m)` and every cached grid column gain one entry
        // from the new factor row; existing entries are untouched
        // (forward-substitution prefix property), so each append is O(t).
        let row = self.chol.row(t);
        let mut s = c - self.prior_mean;
        for (lk, wk) in row.iter().zip(self.wy.iter()) {
            s -= lk * wk;
        }
        self.wy.push(s / row[t]);
        if let Some(g) = self.grid.as_mut() {
            for ((pt, kcol), vcol) in g.pts.iter().zip(g.kg.iter_mut()).zip(g.vg.iter_mut()) {
                let kxg = self.kernel.eval(x, pt);
                let mut s = kxg;
                for (lk, vk) in row.iter().zip(vcol.iter()) {
                    s -= lk * vk;
                }
                kcol.push(kxg);
                vcol.push(s / row[t]);
            }
        }
        Ok(())
    }

    /// Posterior mean and latent variance at `x` (Eq. 17). With no
    /// observations this is the prior: `(prior_mean, k(x,x))`.
    ///
    /// Both moments come from the single triangular solve `v = L⁻¹ k_x`:
    /// `μ = m + vᵀ L⁻¹(y−m)` and `σ² = k(x,x) − vᵀv`.
    pub fn posterior(&self, x: &[f64]) -> GpPosterior {
        if self.xs.is_empty() {
            return GpPosterior {
                mean: self.prior_mean,
                var: self.kernel.diag(x).max(0.0),
            };
        }
        let kx = self.kernel.cross(&self.xs, x);
        let v = self.chol.solve_lower(&kx);
        let mean = self.prior_mean + dot(&v, &self.wy);
        let var = (self.kernel.diag(x) - dot(&v, &v)).max(0.0);
        GpPosterior { mean, var }
    }

    /// Posterior at grid point `gi` of the attached grid, served from the
    /// cached solved column in O(t) — bit-identical to
    /// [`GpRegressor::posterior`] at the same point (the final dot
    /// products run over cached columns whose entries match the uncached
    /// solve exactly). `None` when no grid is attached or `gi` is out of
    /// range.
    pub fn posterior_grid(&self, gi: usize) -> Option<GpPosterior> {
        let g = self.grid.as_ref()?;
        let diag = *g.diag.get(gi)?;
        if self.xs.is_empty() {
            return Some(GpPosterior {
                mean: self.prior_mean,
                var: diag.max(0.0),
            });
        }
        let v = g.vg.get(gi)?;
        let mean = self.prior_mean + dot(v, &self.wy);
        let var = (diag - dot(v, v)).max(0.0);
        Some(GpPosterior { mean, var })
    }

    /// Posterior at many points, sharing one `(k_x, v)` workspace across
    /// the whole batch instead of allocating per query point.
    pub fn posterior_batch(&self, xs: &[Vec<f64>]) -> Vec<GpPosterior> {
        let mut kx = Vec::new();
        let mut v = Vec::new();
        xs.iter()
            .map(|x| self.posterior_into(x, &mut kx, &mut v))
            .collect()
    }

    /// One posterior query through caller-provided scratch buffers.
    fn posterior_into(&self, x: &[f64], kx: &mut Vec<f64>, v: &mut Vec<f64>) -> GpPosterior {
        if self.xs.is_empty() {
            return GpPosterior {
                mean: self.prior_mean,
                var: self.kernel.diag(x).max(0.0),
            };
        }
        kx.clear();
        kx.extend(self.xs.iter().map(|xi| self.kernel.eval(xi, x)));
        self.chol.solve_lower_into(kx, v);
        let mean = self.prior_mean + dot(v, &self.wy);
        let var = (self.kernel.diag(x) - dot(v, v)).max(0.0);
        GpPosterior { mean, var }
    }

    /// Posterior covariance between two points,
    /// `k_t(x, x') = k(x,x') − k_t(x)ᵀ (K+σ²I)⁻¹ k_t(x')` (Eq. 17).
    pub fn posterior_cov(&self, x: &[f64], y: &[f64]) -> f64 {
        if self.xs.is_empty() {
            return self.kernel.eval(x, y);
        }
        let kx = self.kernel.cross(&self.xs, x);
        let ky = self.kernel.cross(&self.xs, y);
        let vx = self.chol.solve_lower(&kx);
        let vy = self.chol.solve_lower(&ky);
        self.kernel.eval(x, y) - dot(&vx, &vy)
    }

    /// Joint posterior over a set of query points: mean vector and (dense)
    /// covariance matrix `k_t(x, x')` (Eq. 17). The covariance is returned
    /// with a small jitter added to the diagonal so it is always usable
    /// for sampling.
    pub fn posterior_joint(&self, xs: &[Vec<f64>]) -> (Vec<f64>, crate::linalg::Matrix) {
        let n = xs.len();
        let mean: Vec<f64> = self
            .posterior_batch(xs)
            .into_iter()
            .map(|p| p.mean)
            .collect();
        let mut cov = crate::linalg::Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let c = self.posterior_cov(&xs[i], &xs[j]);
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
            cov[(i, i)] += 1e-9;
        }
        (mean, cov)
    }

    /// Draw one sample from the joint posterior at `xs`, using caller-
    /// provided standard-normal variates (`normals` must yield at least
    /// `xs.len()` values). This is the Thompson-sampling primitive: the
    /// sampled function is a coherent hypothesis about the whole capacity
    /// curve, not independent per-point noise.
    ///
    /// # Errors
    /// [`GpError::NotPositiveDefinite`] if the jittered posterior
    /// covariance cannot be factorized (NaN query points or a broken
    /// kernel).
    pub fn sample_posterior(
        &self,
        xs: &[Vec<f64>],
        mut normals: impl FnMut() -> f64,
    ) -> Result<Vec<f64>, GpError> {
        let n = xs.len();
        let (mean, cov) = self.posterior_joint(xs);
        let chol = crate::linalg::Cholesky::factor(&cov)?;
        let z: Vec<f64> = (0..n).map(|_| normals()).collect();
        Ok((0..n)
            .map(|i| {
                let mut v = mean[i];
                for (lik, zk) in chol.row(i).iter().zip(z.iter()) {
                    v += lik * zk;
                }
                v
            })
            .collect())
    }

    /// Log marginal likelihood of the observed data:
    /// `−½ yᵀ K⁻¹ y − ½ log det(K + σ²I) − n/2 · log 2π`, where the fit
    /// term is `−½ wᵀw` for the maintained `w = L⁻¹(y − m)`.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.xs.len();
        if n == 0 {
            return 0.0;
        }
        let fit = -0.5 * dot(&self.wy, &self.wy);
        let complexity = -0.5 * self.chol.log_det();
        let norm = -(n as f64) * 0.5 * (2.0 * std::f64::consts::PI).ln();
        fit + complexity + norm
    }

    /// Drop all observations, keeping kernel, noise settings, and the
    /// attached grid (its columns are truncated back to empty but the
    /// allocations and prior diagonal survive).
    pub fn reset(&mut self) {
        self.xs.clear();
        self.ys_centered.clear();
        self.wy.clear();
        self.chol.clear();
        if let Some(g) = self.grid.as_mut() {
            for col in g.kg.iter_mut() {
                col.clear();
            }
            for col in g.vg.iter_mut() {
                col.clear();
            }
        }
    }

    /// Attach a fixed query grid, replacing any existing cache. The cache
    /// is populated from the current history (O(t²·G) once; every later
    /// [`GpRegressor::observe`] maintains it in O(t·G)).
    pub fn set_grid(&mut self, pts: Vec<Vec<f64>>) {
        let n = pts.len();
        self.grid = Some(GridCache {
            diag: pts.iter().map(|p| self.kernel.diag(p)).collect(),
            kg: vec![Vec::new(); n],
            vg: vec![Vec::new(); n],
            pts,
        });
        self.rebuild_grid();
    }

    /// Detach the grid cache, e.g. to carry it to a replacement regressor
    /// across a hyper-parameter refit without reallocating.
    pub fn take_grid(&mut self) -> Option<GridCache> {
        self.grid.take()
    }

    /// Re-attach a cache detached with [`GpRegressor::take_grid`],
    /// refreshing its prior diagonal under this regressor's kernel and
    /// rebuilding its columns against this regressor's history.
    pub fn install_grid(&mut self, mut cache: GridCache) {
        cache.diag.clear();
        cache
            .diag
            .extend(cache.pts.iter().map(|p| self.kernel.diag(p)));
        self.grid = Some(cache);
        self.rebuild_grid();
    }

    /// The attached grid's query points, if any.
    pub fn grid_points(&self) -> Option<&[Vec<f64>]> {
        self.grid.as_ref().map(|g| g.pts.as_slice())
    }

    /// Recompute every cached column against the current kernel, history,
    /// and factor. Columns are rebuilt in place, reusing their buffers.
    fn rebuild_grid(&mut self) {
        let Some(g) = self.grid.as_mut() else {
            return;
        };
        for ((pt, kcol), vcol) in g.pts.iter().zip(g.kg.iter_mut()).zip(g.vg.iter_mut()) {
            kcol.clear();
            kcol.extend(self.xs.iter().map(|xi| self.kernel.eval(xi, pt)));
            self.chol.solve_lower_into(kcol, vcol);
        }
    }
}

/// Grid-search hyper-parameter fitting for the squared-exponential kernel:
/// pick `(length_scale, signal_var)` maximizing the log marginal likelihood
/// on a fixed dataset. This mirrors what `sklearn` does with its L-BFGS
/// restarts, at the fidelity the 10-point-per-dimension config grids of the
/// paper need.
pub struct GpHyperFit {
    /// Candidate length scales.
    pub length_scales: Vec<f64>,
    /// Candidate signal variances.
    pub signal_vars: Vec<f64>,
}

impl Default for GpHyperFit {
    fn default() -> Self {
        GpHyperFit {
            length_scales: vec![0.5, 1.0, 2.0, 3.0, 5.0],
            signal_vars: vec![0.25, 1.0, 4.0, 16.0],
        }
    }
}

impl GpHyperFit {
    /// Fit on `(xs, cs)` with the given noise variance; returns the best
    /// `(length_scale, signal_var, lml)`.
    ///
    /// Candidate hyper-parameter settings whose Gram matrix turns out
    /// numerically indefinite are skipped rather than aborting the grid
    /// search.
    ///
    /// # Errors
    /// [`GpError::NotPositiveDefinite`] if *every* candidate fails — the
    /// data itself is degenerate (NaNs, or exact duplicates with zero
    /// noise).
    pub fn fit_se(
        &self,
        xs: &[Vec<f64>],
        cs: &[f64],
        noise_var: f64,
    ) -> Result<(f64, f64, f64), GpError> {
        assert_eq!(xs.len(), cs.len());
        let mut best: Option<(f64, f64, f64)> = None;
        let mut last_err = GpError::NotPositiveDefinite { pivot: 0 };
        for &l in &self.length_scales {
            for &s in &self.signal_vars {
                let mut gp =
                    GpRegressor::new(crate::kernel::SquaredExp::with_signal(l, s), noise_var);
                let mut ok = true;
                for (x, &c) in xs.iter().zip(cs.iter()) {
                    if let Err(e) = gp.observe(x, c) {
                        last_err = e;
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                let lml = gp.log_marginal_likelihood();
                if best.is_none_or(|b| lml > b.2) {
                    best = Some((l, s, lml));
                }
            }
        }
        best.ok_or(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExp;

    fn make_gp() -> GpRegressor<SquaredExp> {
        GpRegressor::new(SquaredExp::new(1.0), 1e-6)
    }

    #[test]
    fn prior_before_data() {
        let gp = make_gp();
        let p = gp.posterior(&[0.3]);
        assert_eq!(p.mean, 0.0);
        assert_eq!(p.var, 1.0);
        assert!(gp.is_empty());
    }

    #[test]
    fn interpolates_at_low_noise() {
        let mut gp = make_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        gp.observe(&[1.0], 2.0).unwrap();
        gp.observe(&[2.0], 0.5).unwrap();
        for (x, y) in [(0.0, 1.0), (1.0, 2.0), (2.0, 0.5)] {
            let p = gp.posterior(&[x]);
            assert!((p.mean - y).abs() < 1e-3, "x={x} mean={}", p.mean);
            assert!(p.var < 1e-3);
        }
    }

    #[test]
    fn variance_shrinks_near_data_grows_far() {
        let mut gp = make_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        let near = gp.posterior(&[0.1]);
        let far = gp.posterior(&[5.0]);
        assert!(near.var < 0.1);
        assert!(far.var > 0.9);
    }

    #[test]
    fn posterior_matches_hand_computed_single_point() {
        // One observation at x₀ with SE kernel (l=1, s=1), noise σ².
        // μ(x) = k(x,x₀)/(1+σ²)·y ; σ²(x) = 1 − k(x,x₀)²/(1+σ²).
        let noise = 0.25;
        let mut gp = GpRegressor::new(SquaredExp::new(1.0), noise);
        gp.observe(&[0.0], 2.0).unwrap();
        let x = [0.7];
        let kxx0 = (-0.49f64 / 2.0).exp();
        let p = gp.posterior(&x);
        assert!((p.mean - kxx0 / (1.0 + noise) * 2.0).abs() < 1e-12);
        assert!((p.var - (1.0 - kxx0 * kxx0 / (1.0 + noise))).abs() < 1e-12);
    }

    #[test]
    fn prior_mean_used_away_from_data() {
        let mut gp = GpRegressor::new(SquaredExp::new(0.5), 1e-6).with_prior_mean(10.0);
        gp.observe(&[0.0], 12.0).unwrap();
        let far = gp.posterior(&[100.0]);
        assert!((far.mean - 10.0).abs() < 1e-9);
    }

    #[test]
    fn posterior_cov_consistency() {
        let mut gp = make_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        gp.observe(&[2.0], -1.0).unwrap();
        let x = [0.5];
        let p = gp.posterior(&x);
        let c = gp.posterior_cov(&x, &x);
        assert!((p.var - c).abs() < 1e-10);
        // symmetry
        let y = [1.5];
        assert!((gp.posterior_cov(&x, &y) - gp.posterior_cov(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn lml_prefers_true_length_scale() {
        // Data drawn from a smooth function: a long length scale should fit
        // better than a tiny one.
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 * 0.4]).collect();
        let cs: Vec<f64> = xs.iter().map(|x| (x[0] * 0.5).sin()).collect();
        let mut smooth = GpRegressor::new(SquaredExp::new(2.0), 1e-4);
        let mut wiggly = GpRegressor::new(SquaredExp::new(0.05), 1e-4);
        for (x, &c) in xs.iter().zip(cs.iter()) {
            smooth.observe(x, c).unwrap();
            wiggly.observe(x, c).unwrap();
        }
        assert!(smooth.log_marginal_likelihood() > wiggly.log_marginal_likelihood());
    }

    #[test]
    fn hyper_fit_runs_and_picks_reasonable_scale() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.3]).collect();
        let cs: Vec<f64> = xs.iter().map(|x| (x[0] * 0.4).sin() * 2.0).collect();
        let fit = GpHyperFit::default();
        let (l, s, lml) = fit.fit_se(&xs, &cs, 1e-4).unwrap();
        assert!(l >= 0.5, "picked degenerate length scale {l}");
        assert!(s > 0.0);
        assert!(lml.is_finite());
    }

    #[test]
    fn ucb_lcb_bracket_mean() {
        let p = GpPosterior {
            mean: 3.0,
            var: 4.0,
        };
        assert_eq!(p.std(), 2.0);
        assert_eq!(p.ucb(1.0), 5.0);
        assert_eq!(p.lcb(1.0), 1.0);
        assert!(p.ucb(4.0) > p.ucb(1.0));
    }

    #[test]
    fn reset_clears_history() {
        let mut gp = make_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        assert_eq!(gp.len(), 1);
        gp.reset();
        assert!(gp.is_empty());
        let p = gp.posterior(&[0.0]);
        assert_eq!(p.mean, 0.0);
        assert_eq!(p.var, 1.0);
    }

    #[test]
    fn batch_matches_single() {
        let mut gp = make_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        gp.observe(&[1.0], 0.0).unwrap();
        let pts = vec![vec![0.25], vec![0.75]];
        let batch = gp.posterior_batch(&pts);
        for (p, x) in batch.iter().zip(pts.iter()) {
            let q = gp.posterior(x);
            assert_eq!(p, &q);
        }
    }

    #[test]
    fn posterior_joint_diag_matches_pointwise() {
        let mut gp = make_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        gp.observe(&[2.0], -1.0).unwrap();
        let xs = vec![vec![0.5], vec![1.5], vec![3.0]];
        let (mean, cov) = gp.posterior_joint(&xs);
        for (i, x) in xs.iter().enumerate() {
            let p = gp.posterior(x);
            assert!((mean[i] - p.mean).abs() < 1e-12);
            assert!((cov[(i, i)] - p.var).abs() < 1e-8);
        }
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn posterior_samples_have_right_moments() {
        let mut gp = GpRegressor::new(SquaredExp::new(1.0), 0.05);
        gp.observe(&[0.0], 1.0).unwrap();
        gp.observe(&[2.0], 3.0).unwrap();
        let xs = vec![vec![1.0], vec![4.0]];
        // deterministic pseudo-normals via Box–Muller on a simple LCG
        let mut state = 88172645463325252u64;
        let mut uni = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut spare = None;
        let mut normal = move || {
            if let Some(z) = spare.take() {
                return z;
            }
            let u1: f64 = 1.0 - uni();
            let u2: f64 = uni();
            let r = (-2.0 * u1.ln()).sqrt();
            let th = 2.0 * std::f64::consts::PI * u2;
            spare = Some(r * th.sin());
            r * th.cos()
        };
        let n = 4000;
        let mut sums = [0.0; 2];
        let mut sqs = [0.0; 2];
        for _ in 0..n {
            let s = gp.sample_posterior(&xs, &mut normal).unwrap();
            for i in 0..2 {
                sums[i] += s[i];
                sqs[i] += s[i] * s[i];
            }
        }
        let (mean, cov) = gp.posterior_joint(&xs);
        for i in 0..2 {
            let m = sums[i] / n as f64;
            let v = sqs[i] / n as f64 - m * m;
            assert!((m - mean[i]).abs() < 0.05, "mean {m} vs {}", mean[i]);
            assert!((v - cov[(i, i)]).abs() < 0.08, "var {v} vs {}", cov[(i, i)]);
        }
    }

    #[test]
    fn samples_interpolate_data_under_low_noise() {
        let mut gp = make_gp();
        gp.observe(&[1.0], 5.0).unwrap();
        let xs = vec![vec![1.0]];
        let mut k = 0.0;
        let mut fake_normal = move || {
            k += 1.0;
            (k % 3.0) - 1.0
        };
        let s = gp.sample_posterior(&xs, &mut fake_normal).unwrap();
        assert!((s[0] - 5.0).abs() < 0.05, "{}", s[0]);
    }

    #[test]
    fn observation_noise_smooths() {
        // With large noise, the posterior mean at an observed point shrinks
        // toward the prior instead of interpolating.
        let mut gp = GpRegressor::new(SquaredExp::new(1.0), 1.0);
        gp.observe(&[0.0], 2.0).unwrap();
        let p = gp.posterior(&[0.0]);
        assert!((p.mean - 1.0).abs() < 1e-12); // k/(k+σ²)·y = 1/2 · 2
        assert!(p.var > 0.4);
    }
}
