//! Bit-identity property tests for the fixed-grid posterior cache.
//!
//! The cache's contract is exact: a grid posterior served from the
//! incrementally maintained solved columns must match the naive path —
//! fresh kernel cross + triangular solve on a regressor that never had a
//! grid attached — **bitwise**, not approximately. The histories are
//! random (xorshift64*, fixed seeds), mix on-grid and off-grid inputs,
//! and exercise every invalidation path: `reset` + replay (the scale-
//! growth refit pattern), `take_grid`/`install_grid` under a changed
//! kernel (the hyper-refit pattern), and a fresh-regressor replay of the
//! same history (the checkpoint export→import→replay pattern).

// Integration tests may panic freely; the workspace deny only guards
// library code paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dragster_gp::{GpPosterior, GpRegressor, SquaredExp};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const GRID: usize = 10;

fn grid_points() -> Vec<Vec<f64>> {
    (1..=GRID).map(|x| vec![x as f64]).collect()
}

/// A random observation: mostly on-grid task counts (the production
/// pattern — `OperatorGp` clamps to `1..=max_tasks`), occasionally an
/// off-grid point to prove the slow path coexists with the cache.
fn random_history(rng: &mut Rng, len: usize) -> Vec<(Vec<f64>, f64)> {
    (0..len)
        .map(|_| {
            let x = if rng.below(8) == 0 {
                vec![1.0 + rng.unit() * (GRID - 1) as f64]
            } else {
                vec![(rng.below(GRID) + 1) as f64]
            };
            let y = rng.unit() * 4.0 - 2.0;
            (x, y)
        })
        .collect()
}

fn replay(gp: &mut GpRegressor<SquaredExp>, history: &[(Vec<f64>, f64)]) {
    for (x, y) in history {
        gp.observe(x, *y).unwrap();
    }
}

fn assert_bit_identical(a: GpPosterior, b: GpPosterior, what: &str) {
    assert_eq!(
        a.mean.to_bits(),
        b.mean.to_bits(),
        "{what}: mean {} vs {}",
        a.mean,
        b.mean
    );
    assert_eq!(
        a.var.to_bits(),
        b.var.to_bits(),
        "{what}: var {} vs {}",
        a.var,
        b.var
    );
}

/// Cached grid posteriors vs a grid-free regressor over the same history,
/// checked after *every* observation (the cache must never lag or lead).
fn check_against_naive(cached: &GpRegressor<SquaredExp>, naive: &GpRegressor<SquaredExp>) {
    let pts = grid_points();
    for (gi, pt) in pts.iter().enumerate() {
        let c = cached.posterior_grid(gi).expect("grid attached");
        assert_bit_identical(c, naive.posterior(pt), "cached vs naive at grid point");
        // The cached regressor's own uncached path must agree too: the
        // fast-path factor extension is bit-identical to the full solve.
        assert_bit_identical(c, cached.posterior(pt), "cached grid vs own solve");
    }
}

#[test]
fn cached_grid_posterior_is_bit_identical_to_naive() {
    let trials = if cfg!(miri) { 2 } else { 24 };
    let steps = if cfg!(miri) { 8 } else { 40 };
    for trial in 0..trials {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (trial as u64 + 1));
        let history = random_history(&mut rng, steps);
        let mut cached = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        cached.set_grid(grid_points());
        let mut naive = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        for (x, y) in &history {
            cached.observe(x, *y).unwrap();
            naive.observe(x, *y).unwrap();
            check_against_naive(&cached, &naive);
            // off-grid queries take the solve path on both and must agree
            let q = vec![0.5 + (x[0] * 0.37) % (GRID as f64)];
            assert_bit_identical(cached.posterior(&q), naive.posterior(&q), "off-grid query");
        }
        assert_eq!(
            cached.log_marginal_likelihood().to_bits(),
            naive.log_marginal_likelihood().to_bits(),
            "log marginal likelihood"
        );
    }
}

#[test]
fn reset_and_replay_matches_fresh_fit() {
    // The scale-growth refit pattern: `reset` keeps the grid attached and
    // a full replay must land bit-identical to a fresh cached regressor.
    let trials = if cfg!(miri) { 1 } else { 12 };
    let steps = if cfg!(miri) { 6 } else { 30 };
    for trial in 0..trials {
        let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D ^ (trial as u64 + 1));
        let history = random_history(&mut rng, steps);
        let mut recycled = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        recycled.set_grid(grid_points());
        replay(&mut recycled, &history);
        recycled.reset();
        assert!(recycled.is_empty());
        replay(&mut recycled, &history);
        let mut naive = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        replay(&mut naive, &history);
        check_against_naive(&recycled, &naive);
    }
}

#[test]
fn grid_survives_kernel_swap_via_take_install() {
    // The hyper-refit pattern: move the cache to a regressor with new
    // hyper-parameters, replay the raw history, and the rebuilt columns
    // must serve posteriors bit-identical to a grid-free regressor that
    // only ever knew the new kernel.
    let trials = if cfg!(miri) { 1 } else { 12 };
    let steps = if cfg!(miri) { 6 } else { 30 };
    for trial in 0..trials {
        let mut rng = Rng(0x1234_5678_9ABC_DEF0 ^ (trial as u64 + 1));
        let history = random_history(&mut rng, steps);
        let mut old = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        old.set_grid(grid_points());
        replay(&mut old, &history);
        let cache = old.take_grid().expect("grid was attached");
        let mut refit = GpRegressor::new(SquaredExp::with_signal(1.5, 0.25), 1e-2);
        refit.install_grid(cache);
        assert_eq!(refit.grid_points().map(|p| p.len()), Some(GRID));
        replay(&mut refit, &history);
        let mut naive = GpRegressor::new(SquaredExp::with_signal(1.5, 0.25), 1e-2);
        replay(&mut naive, &history);
        check_against_naive(&refit, &naive);
    }
}

#[test]
fn fresh_replay_matches_checkpointed_history() {
    // The checkpoint export→import→replay pattern: controller restores
    // rebuild GP state by replaying raw history through a fresh model, so
    // a fresh cached regressor fed the same history must be bit-identical
    // to the long-lived one — posteriors and marginal likelihood alike.
    let trials = if cfg!(miri) { 1 } else { 12 };
    let steps = if cfg!(miri) { 6 } else { 30 };
    for trial in 0..trials {
        let mut rng = Rng(0x0F1E_2D3C_4B5A_6978 ^ (trial as u64 + 1));
        let history = random_history(&mut rng, steps);
        let mut live = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        live.set_grid(grid_points());
        replay(&mut live, &history);
        let mut restored = GpRegressor::new(SquaredExp::new(3.0), 1e-2);
        restored.set_grid(grid_points());
        replay(&mut restored, &history);
        for gi in 0..GRID {
            assert_bit_identical(
                live.posterior_grid(gi).unwrap(),
                restored.posterior_grid(gi).unwrap(),
                "live vs restored",
            );
        }
        assert_eq!(
            live.log_marginal_likelihood().to_bits(),
            restored.log_marginal_likelihood().to_bits()
        );
    }
}

#[test]
fn batch_shares_workspace_and_matches_single() {
    // `posterior_batch` reuses one scratch pair across the batch; results
    // must still be exactly the single-query ones.
    let mut rng = Rng(0xA5A5_5A5A_F0F0_0F0F);
    let history = random_history(&mut rng, if cfg!(miri) { 6 } else { 25 });
    let mut gp = GpRegressor::new(SquaredExp::new(2.0), 1e-2);
    replay(&mut gp, &history);
    let queries: Vec<Vec<f64>> = (0..15).map(|_| vec![rng.unit() * 12.0]).collect();
    let batch = gp.posterior_batch(&queries);
    for (p, q) in batch.iter().zip(queries.iter()) {
        assert_bit_identical(*p, gp.posterior(q), "batch vs single");
    }
}
