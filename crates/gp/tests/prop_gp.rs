//! Property tests for the GP stack: kernel PSD-ness, posterior invariants,
//! incremental-vs-batch agreement, information-gain monotonicity.

// Integration tests may panic freely; the workspace deny only guards
// library code paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dragster_gp::linalg::{Cholesky, Matrix};
use dragster_gp::{
    information_gain, GpRegressor, Kernel, LinearKernel, Matern52, ProductKernel, SquaredExp,
    SumKernel, WhiteKernel,
};
use proptest::prelude::*;

fn arb_points(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, dim), 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn se_gram_is_psd(xs in arb_points(10, 2), l in 0.3..3.0f64) {
        let k = SquaredExp::new(l);
        let mut g = k.gram(&xs);
        for i in 0..xs.len() {
            g[(i, i)] += 1e-8; // jitter: PSD → PD
        }
        prop_assert!(Cholesky::factor(&g).is_ok());
    }

    #[test]
    fn matern_gram_is_psd(xs in arb_points(10, 1), l in 0.3..3.0f64) {
        let k = Matern52::new(l);
        let mut g = k.gram(&xs);
        for i in 0..xs.len() {
            g[(i, i)] += 1e-8;
        }
        prop_assert!(Cholesky::factor(&g).is_ok());
    }

    #[test]
    fn kernel_combinators_remain_psd(xs in arb_points(8, 1), l in 0.3..3.0f64) {
        let sum = SumKernel(SquaredExp::new(l), WhiteKernel { noise_var: 0.1 });
        let prod = ProductKernel(SquaredExp::new(l), LinearKernel::new(0.5, 0.2));
        for gram in [sum.gram(&xs), prod.gram(&xs)] {
            let mut g = gram;
            for i in 0..xs.len() {
                g[(i, i)] += 1e-8;
            }
            prop_assert!(Cholesky::factor(&g).is_ok());
        }
    }

    #[test]
    fn matern_posterior_interpolates_like_se(
        xs in proptest::collection::vec(-4.0..4.0f64, 2..6),
    ) {
        // well-separated points, tiny noise: both kernels interpolate
        let mut pts: Vec<f64> = xs.clone();
        pts.sort_by(f64::total_cmp);
        pts.dedup_by(|a, b| (*a - *b).abs() < 0.5);
        prop_assume!(pts.len() >= 2);
        let mut gp = GpRegressor::new(Matern52::new(1.0), 1e-8);
        for (i, &x) in pts.iter().enumerate() {
            gp.observe(&[x], i as f64).unwrap();
        }
        for (i, &x) in pts.iter().enumerate() {
            let p = gp.posterior(&[x]);
            prop_assert!((p.mean - i as f64).abs() < 1e-2);
        }
    }

    #[test]
    fn posterior_variance_never_exceeds_prior(
        xs in arb_points(8, 1),
        q in -5.0..5.0f64,
        noise in 0.01..1.0f64,
    ) {
        let k = SquaredExp::new(1.0);
        let mut gp = GpRegressor::new(k, noise);
        for (i, x) in xs.iter().enumerate() {
            gp.observe(x, (i as f64).sin()).unwrap();
        }
        let p = gp.posterior(&[q]);
        prop_assert!(p.var <= 1.0 + 1e-9, "posterior var {} > prior", p.var);
        prop_assert!(p.var >= 0.0);
    }

    #[test]
    fn more_data_never_increases_variance_at_fixed_point(
        xs in arb_points(8, 1),
        q in -5.0..5.0f64,
    ) {
        // Exact GPs: conditioning on more data cannot increase posterior
        // variance anywhere.
        let mut gp = GpRegressor::new(SquaredExp::new(1.0), 0.1);
        let mut prev = f64::INFINITY;
        for (i, x) in xs.iter().enumerate() {
            gp.observe(x, (i as f64) * 0.1).unwrap();
            let v = gp.posterior(&[q]).var;
            prop_assert!(v <= prev + 1e-9, "variance rose from {prev} to {v}");
            prev = v;
        }
    }

    #[test]
    fn incremental_equals_batch_solve(
        xs in arb_points(8, 2),
        noise in 0.05..0.5f64,
    ) {
        // Posterior computed through incremental Cholesky extension equals
        // the one computed by factoring the full Gram matrix at the end.
        let k = SquaredExp::new(1.0);
        let ys: Vec<f64> = (0..xs.len()).map(|i| (i as f64 * 0.7).cos()).collect();

        let mut inc = GpRegressor::new(k, noise);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            inc.observe(x, y).unwrap();
        }

        // batch: full gram + cholesky
        let n = xs.len();
        let gram = k.gram(&xs);
        let mut m = gram.clone();
        for i in 0..n {
            m[(i, i)] += noise;
        }
        let ch = Cholesky::factor(&m).unwrap();
        let alpha = ch.solve(&ys);

        let q = [0.3, -0.4];
        let kx: Vec<f64> = xs.iter().map(|x| k.eval(x, &q)).collect();
        let mean_batch: f64 = kx.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
        let p = inc.posterior(&q);
        prop_assert!((p.mean - mean_batch).abs() < 1e-8, "inc {} vs batch {}", p.mean, mean_batch);
    }

    #[test]
    fn info_gain_submodular_increment(xs in arb_points(8, 1)) {
        // Marginal gains are non-negative (monotone set function).
        let k = SquaredExp::new(1.0);
        let mut prev = 0.0;
        for i in 1..=xs.len() {
            let g = information_gain(&k, &xs[..i], 0.1).unwrap();
            prop_assert!(g >= prev - 1e-9);
            prev = g;
        }
    }

    #[test]
    fn cholesky_solve_random_spd(n in 1usize..7, seed in 0u64..1000) {
        // Build SPD A = BᵀB + I from a seeded pseudo-random B.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.transpose().matmul(&b);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::factor(&a).unwrap();
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = ch.solve(&rhs);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(rhs.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn posterior_mean_bounded_by_data_under_low_noise(
        ys in proptest::collection::vec(-3.0..3.0f64, 2..6),
    ) {
        // At an observed point with tiny noise, the posterior mean is close
        // to the observed value regardless of the other data.
        let mut gp = GpRegressor::new(SquaredExp::new(0.5), 1e-8);
        for (i, &y) in ys.iter().enumerate() {
            gp.observe(&[i as f64 * 3.0], y).unwrap(); // well separated
        }
        for (i, &y) in ys.iter().enumerate() {
            let p = gp.posterior(&[i as f64 * 3.0]);
            prop_assert!((p.mean - y).abs() < 1e-3);
        }
    }
}
