//! Interprocedural interval abstract interpretation (L13–L15): a forward
//! interpreter over the token model that *proves bounds* on the values
//! flowing through the controller, where L5 reasons syntactically and
//! L9–L12 reason about taint.
//!
//! The engine mirrors the `dataflow.rs` shape: per-function summaries
//! (here: the interval of the returned value) iterated to a fixpoint over
//! the call graph, then a final reporting pass per body. Within a body it
//! is a real abstract interpreter: statements execute over an environment
//! of [`Interval`]s, `if`/`else` joins refined arms, loops run to a local
//! fixpoint with widening at the head and one narrowing pass, and branch
//! conditions refine operand ranges (`if x > 0.0` narrows `x` to
//! `(0, +∞]` — and clears may-NaN, because a NaN comparison is false).
//!
//! **Where knowledge comes from.** Declared `[domains]` entries in
//! `lint.toml` (bound to identifiers by the same unit-suffix rule as L7),
//! parameter/let type annotations (`usize` is `[0, 2^64]`, integer and
//! never NaN), literals, and callee summaries. Everything else is TOP.
//!
//! **Alarm policy.** Checks fire only on intervals with *knowledge* (at
//! least one finite bound): a TOP divisor stays with L5's reachability
//! rule instead of producing an alarm storm, while a divisor *proven*
//! nonzero suppresses L5's finding at that site (the guarded-divisor
//! false positive L5 cannot avoid syntactically). Declared domains are
//! trusted assumptions — the analysis proves the controller's
//! postconditions *relative to them*, which is exactly the shape of
//! Theorem 1 ("the regret bound holds provided the inputs respect the
//! stated ranges").
//!
//! The summary fixpoint starts every unknown callee at TOP and descends:
//! each pass re-evaluates bodies against the previous pass's summaries.
//! Descending Kleene iteration from TOP over-approximates the least
//! fixpoint at every step, so truncating at a fixed pass count (3) is
//! sound — it only costs precision, never soundness.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::domain::{next_down, next_up, Interval};
use crate::model::{Model, Tok};
use crate::taint::Pattern;
use crate::Finding;

/// Declared value domains, keyed by identifier suffix (L7's binding
/// rule): `rate_tps` matches the `tps` entry unless a longer `rate_tps`
/// entry exists; an exact-name match always wins.
#[derive(Clone, Debug)]
pub struct DomainsTable {
    entries: Vec<(String, Interval)>,
}

impl DomainsTable {
    /// Compiled-in defaults, mirrored by the `[domains]` table in
    /// `lint.toml` (the file may override or extend them).
    pub fn defaults() -> DomainsTable {
        let mut t = DomainsTable {
            entries: Vec::new(),
        };
        for (k, lo, hi) in [
            ("slots", 0.0, 4096.0),
            ("tasks", 0.0, 65536.0),
            ("pods", 0.0, 65536.0),
            ("budget", 0.0, 1e9),
            ("usd", 0.0, 1e9),
            ("tps", 0.0, 1e8),
            ("rate_tps", 0.0, 1e8),
            ("secs", 0.0, 1e7),
            ("tuples", 0.0, 1e12),
            ("selectivity", 0.0, 1.0),
        ] {
            t.set(k, lo, hi);
        }
        t
    }

    /// An empty table (no assumptions at all).
    pub fn empty() -> DomainsTable {
        DomainsTable {
            entries: Vec::new(),
        }
    }

    /// Inserts or replaces a domain entry.
    pub fn set(&mut self, key: &str, lo: f64, hi: f64) {
        let iv = Interval::range(lo, hi);
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = iv;
        } else {
            self.entries.push((key.to_string(), iv));
        }
    }

    /// Exact-key lookup (used to resolve symbolic contract bounds).
    pub fn exact(&self, key: &str) -> Option<Interval> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, iv)| *iv)
    }

    /// The declared domain for an identifier: exact match, else the
    /// longest suffix entry matching at an `_` boundary.
    pub fn domain_of(&self, ident: &str) -> Option<Interval> {
        if let Some(iv) = self.exact(ident) {
            return Some(iv);
        }
        let mut best: Option<(usize, Interval)> = None;
        for (k, iv) in &self.entries {
            if ident.len() > k.len() && ident.ends_with(k.as_str()) {
                let boundary = ident.as_bytes()[ident.len() - k.len() - 1] == b'_';
                if boundary && best.is_none_or(|(l, _)| k.len() > l) {
                    best = Some((k.len(), *iv));
                }
            }
        }
        best.map(|(_, iv)| iv)
    }
}

/// One controller postcondition: values produced at the contracted point
/// must stay inside `required`. The key is a `::`-path; the last segment
/// may name a *binding* inside the function (`SaddleState::dual_update::
/// lam`), and the whole key is also tried as a function pattern whose
/// return interval is checked (scalar-returning functions only — a
/// struct-returning `project_to_budget` is covered by L11 instead).
#[derive(Clone, Debug)]
pub struct Contract {
    /// The key as written (for messages and allowlisting).
    pub key: String,
    /// Full-key pattern: matches an item's qualified path (fn-level).
    full_pat: Pattern,
    /// Prefix pattern + binding name (binding-level), for keys with ≥ 2
    /// segments.
    binding_pat: Option<(Pattern, String)>,
    /// The required output interval.
    pub required: Interval,
}

impl Contract {
    /// Builds a contract from a parsed key and resolved bounds.
    pub fn new(key: &str, required: Interval) -> Result<Contract, String> {
        let full_pat = Pattern::parse(key).map_err(|e| format!("[contracts] {e}"))?;
        let binding_pat = match key.rsplit_once("::") {
            Some((prefix, last)) if !prefix.is_empty() => {
                let p = Pattern::parse(prefix).map_err(|e| format!("[contracts] {e}"))?;
                Some((p, last.to_string()))
            }
            _ => None,
        };
        Ok(Contract {
            key: key.to_string(),
            full_pat,
            binding_pat,
            required,
        })
    }
}

/// Compiled-in contracts, mirrored by `[contracts]` in `lint.toml`: the
/// paper's Theorem-1 preconditions that are locally provable.
pub fn default_contracts(domains: &DomainsTable) -> Vec<Contract> {
    let budget_hi = domains.exact("budget").map_or(1e9, |iv| iv.hi);
    let mut out = Vec::new();
    for (key, lo, hi) in [
        // Eq. 18: the projected decision lands in the budget box.
        ("project_to_budget", 0.0, budget_hi),
        // Eq. 15: dual variables stay nonnegative.
        ("SaddleState::dual_update::lam", 0.0, f64::INFINITY),
        // Eq. 17: the GP posterior variance is nonnegative.
        ("GpRegressor::posterior::var", 0.0, f64::INFINITY),
    ] {
        if let Ok(c) = Contract::new(key, Interval::range(lo, hi)) {
            out.push(c);
        }
    }
    out
}

/// Full configuration for the interval passes.
#[derive(Clone, Debug)]
pub struct AbsintConfig {
    pub domains: DomainsTable,
    pub contracts: Vec<Contract>,
}

impl Default for AbsintConfig {
    fn default() -> Self {
        let domains = DomainsTable::defaults();
        let contracts = default_contracts(&domains);
        AbsintConfig { domains, contracts }
    }
}

/// Result of the workspace interval pass.
pub struct AbsintOutcome {
    pub findings: Vec<Finding>,
    /// Division/modulo sites the intervals *resolved*: either proven
    /// nonzero (suppresses L5's DivRem finding there) or claimed by an
    /// L13 finding (avoids a double report). Keys are
    /// `(file label, line, divisor token)` — L5's dedupe key.
    pub resolved_divs: BTreeSet<(String, usize, String)>,
    /// Per-function return intervals, keyed by qualified name. Public so
    /// the soundness property test can compare against concrete runs.
    pub summaries: BTreeMap<String, Interval>,
}

/// Number of descending summary passes (see module docs: truncation is
/// sound, it only costs precision).
const SUMMARY_PASSES: usize = 3;
/// Loop-head widening iterations before declaring the local fixpoint.
const LOOP_ITERS: usize = 8;

/// Runs the interval passes (L13/L14/L15) over a built model.
pub fn interval_analysis(model: &Model, cfg: &AbsintConfig) -> AbsintOutcome {
    let n = model.items.len();
    let mut summaries: BTreeMap<usize, Interval> = BTreeMap::new();
    let mut findings = Vec::new();
    let mut resolved = BTreeSet::new();
    for pass in 0..SUMMARY_PASSES {
        let report = pass == SUMMARY_PASSES - 1;
        let mut next: BTreeMap<usize, Interval> = BTreeMap::new();
        for idx in 0..n {
            if model.items[idx].body.is_none() {
                continue;
            }
            let mut fa = FnAnalyzer::new(model, cfg, idx, &summaries, report);
            fa.run();
            if !fa.ret.is_bottom() {
                next.insert(idx, fa.ret);
            }
            if report {
                findings.extend(fa.findings);
                let label = &model.files[model.items[idx].file_idx].label;
                for (line, tok) in fa.resolved_divs {
                    resolved.insert((label.clone(), line, tok));
                }
            }
        }
        summaries = next;
    }
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.code).cmp(&(b.file.clone(), b.line, b.code)));
    let by_name = summaries
        .iter()
        .map(|(&i, iv)| (model.items[i].qualified(), *iv))
        .collect();
    AbsintOutcome {
        findings,
        resolved_divs: resolved,
        summaries: by_name,
    }
}

/// Convenience for tests: build a one-file model and return the interval
/// summaries under the default configuration.
pub fn summaries_for_source(label: &str, source: &str) -> BTreeMap<String, Interval> {
    let model = Model::build(vec![(
        label.to_string(),
        "fixture".to_string(),
        crate::prep::prepare(source),
    )]);
    interval_analysis(&model, &AbsintConfig::default()).summaries
}

// ---------------------------------------------------------------------------
// The per-function interpreter.
// ---------------------------------------------------------------------------

type Env = BTreeMap<String, Interval>;

/// Where a name's current value came from (for derivation chains).
#[derive(Clone, Debug)]
struct DefRec {
    line: usize,
    text: String,
    deps: Vec<String>,
    iv: Interval,
}

/// Output of executing a block: its tail value, whether control falls
/// through the end, and the environments at any `break` inside it (owed
/// to the nearest enclosing loop).
struct BlockOut {
    value: Interval,
    falls: bool,
    breaks: Vec<Env>,
    conts: Vec<Env>,
}

struct FnAnalyzer<'a> {
    model: &'a Model,
    cfg: &'a AbsintConfig,
    idx: usize,
    toks: &'a [Tok],
    body: (usize, usize),
    summaries: &'a BTreeMap<usize, Interval>,
    /// Whether this is the reporting pass.
    report: bool,
    /// Nonzero while inside a non-final loop-fixpoint iteration: checks and
    /// recordings are muted there and fire on the post-stabilization run.
    mute: usize,
    findings: Vec<Finding>,
    dedupe: BTreeSet<(&'static str, usize, String)>,
    /// `(line, divisor token)` pairs resolved at div/rem sites.
    resolved_divs: BTreeSet<(usize, String)>,
    /// Joined return interval (BOTTOM until a `return`/tail is seen).
    ret: Interval,
    /// Identifiers feeding the returned value (chain seeds).
    ret_deps: Vec<String>,
    defs: BTreeMap<String, DefRec>,
    /// Contract-relevant binding occurrences: (name, line) -> (interval,
    /// deps). Overwritten per site, so loop sites keep the stabilized
    /// value from the final execution.
    bindings: BTreeMap<(String, usize), (Interval, Vec<String>)>,
}
/// Integer-typed range helpers (all values exactly representable except
/// the 64-bit maxima, which round *up* — conservative for upper bounds).
const U64_MAX_F: f64 = 1.8446744073709552e19;
const I64_MAX_F: f64 = 9.223372036854776e18;
/// Largest f64 with an exact integer successor — the cap above which a
/// float→usize conversion silently loses integer precision (L14).
const F64_EXACT_INT_MAX: f64 = 9007199254740992.0;

/// The numeric range implied by a primitive-type token, if any.
fn type_range(ty: &str) -> Option<Interval> {
    let mut iv = match ty {
        "usize" | "u64" => Interval::range(0.0, U64_MAX_F),
        "u32" => Interval::range(0.0, 4294967295.0),
        "u16" => Interval::range(0.0, 65535.0),
        "u8" => Interval::range(0.0, 255.0),
        "isize" | "i64" => Interval::range(-I64_MAX_F, I64_MAX_F),
        "i32" => Interval::range(-2147483648.0, 2147483647.0),
        "i16" => Interval::range(-32768.0, 32767.0),
        "i8" => Interval::range(-128.0, 127.0),
        _ => return None,
    };
    iv.int = true;
    Some(iv)
}

fn is_int_type(ty: &str) -> bool {
    type_range(ty).is_some()
}

/// True when the interval carries no information beyond a declared
/// integer type — exactly `[T::MIN, T::MAX]` for some primitive `T`.
/// Dividing by such a value is L5's business (panic reachability from
/// the public API), not L13's: the intervals have proven nothing.
fn is_bare_type_range(iv: &Interval) -> bool {
    ["u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"]
        .iter()
        .any(|t| type_range(t).is_some_and(|tr| tr.lo == iv.lo && tr.hi == iv.hi))
}

fn is_float_type(ty: &str) -> bool {
    ty == "f64" || ty == "f32"
}

/// Whether the item's return type mentions a scalar numeric primitive —
/// the gate for fn-level L15 contracts and for publishing a summary
/// worth consuming (struct-returning functions summarize as TOP anyway).
fn returns_scalar(toks: &[Tok], sig_end: usize, body_start: usize) -> bool {
    toks[sig_end..body_start]
        .iter()
        .any(|t| is_int_type(&t.text) || is_float_type(&t.text))
}

/// Joins two environments pointwise; a name known on only one side joins
/// with TOP (we know nothing about it on the other path).
fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        let j = match b.get(k) {
            Some(vb) => va.join(vb),
            None => va.join(&Interval::TOP),
        };
        out.insert(k.clone(), j);
    }
    for (k, vb) in b {
        if !a.contains_key(k) {
            out.insert(k.clone(), vb.join(&Interval::TOP));
        }
    }
    out
}

impl<'a> FnAnalyzer<'a> {
    fn new(
        model: &'a Model,
        cfg: &'a AbsintConfig,
        idx: usize,
        summaries: &'a BTreeMap<usize, Interval>,
        report: bool,
    ) -> FnAnalyzer<'a> {
        let item = &model.items[idx];
        let toks = &model.files[item.file_idx].tokens;
        FnAnalyzer {
            model,
            cfg,
            idx,
            toks,
            body: item.body.unwrap_or((0, 0)),
            summaries,
            report,
            mute: 0,
            findings: Vec::new(),
            dedupe: BTreeSet::new(),
            resolved_divs: BTreeSet::new(),
            ret: Interval::BOTTOM,
            ret_deps: Vec::new(),
            defs: BTreeMap::new(),
            bindings: BTreeMap::new(),
        }
    }

    fn item(&self) -> &'a crate::model::Item {
        &self.model.items[self.idx]
    }

    fn file_label(&self) -> &str {
        &self.model.files[self.item().file_idx].label
    }

    fn run(&mut self) {
        let mut env = Env::new();
        self.seed_params(&mut env);
        // `body` is the token range *inside* the braces, `[start, end)`.
        let (lo, hi) = self.body;
        let out = self.exec_block(&mut env, lo, hi);
        if out.falls {
            self.accumulate_return(out.value, Vec::new());
        }
        if self.ret.is_bottom() {
            // Unit functions / bodies we could not follow: publish TOP so
            // callers at least know "some value" came back.
            self.ret = Interval::TOP;
        }
        if self.report {
            self.check_contracts();
        }
    }

    /// Seeds parameter intervals from type annotations meet declared
    /// domains. `sig` is the token range *inside* the parens, `[start, end)`.
    fn seed_params(&mut self, env: &mut Env) {
        let item = self.item();
        let (slo, shi) = item.sig;
        let mut j = slo;
        while j < shi {
            // Each parameter: pattern `name : Type` up to a top-level `,`.
            let start = j;
            let mut depth = 0i32;
            let mut colon = None;
            while j < shi {
                match self.toks[j].text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    ":" if depth == 0 && colon.is_none() => colon = Some(j),
                    "," if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(c) = colon {
                // Take the last plain ident before the colon as the name
                // (skips `mut`, `&`, `ref`).
                let name = self.toks[start..c]
                    .iter()
                    .rev()
                    .find(|t| is_ident(&t.text) && t.text != "mut" && t.text != "ref")
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    let mut iv = Interval::TOP;
                    let mut scalar = false;
                    for t in &self.toks[c + 1..j.min(shi)] {
                        if let Some(tr) = type_range(&t.text) {
                            iv = iv.meet(&tr);
                            scalar = true;
                            break;
                        }
                        if is_float_type(&t.text) {
                            scalar = true;
                            break;
                        }
                    }
                    if let Some(dom) = self.cfg.domains.domain_of(&name) {
                        iv = iv.meet(&dom);
                        scalar = true;
                    }
                    if scalar && !iv.is_top() {
                        env.insert(name.clone(), iv);
                        self.defs.insert(
                            name.clone(),
                            DefRec {
                                line: item.line,
                                text: format!(
                                    "parameter, seeded {} from type/[domains]",
                                    iv.render()
                                ),
                                deps: Vec::new(),
                                iv,
                            },
                        );
                    } else if scalar {
                        // Unbounded scalar (e.g. a bare f64): recorded so
                        // derivation chains can name where the uncertainty
                        // enters, but not seeded into the environment.
                        self.defs.insert(
                            name.clone(),
                            DefRec {
                                line: item.line,
                                text: "parameter (unbounded)".to_string(),
                                deps: Vec::new(),
                                iv: Interval::TOP,
                            },
                        );
                    }
                }
            }
            j += 1; // past the comma
        }
    }

    fn accumulate_return(&mut self, v: Interval, deps: Vec<String>) {
        self.ret = self.ret.join(&v);
        for d in deps {
            if !self.ret_deps.contains(&d) {
                self.ret_deps.push(d);
            }
        }
    }

    /// Looks up a name: environment first (flow-sensitive), then field /
    /// free-ident fallback to the declared domain table.
    fn lookup(&self, env: &Env, name: &str) -> Interval {
        if let Some(iv) = env.get(name) {
            return *iv;
        }
        // `self.field` composite names fall back on the field suffix.
        let tail = name.rsplit('.').next().unwrap_or(name);
        if let Some(dom) = self.cfg.domains.domain_of(tail) {
            return dom;
        }
        Interval::TOP
    }

    // -- findings ----------------------------------------------------------

    fn emit(
        &mut self,
        code: &'static str,
        line: usize,
        token: &str,
        message: String,
        seeds: &[String],
        env: &Env,
    ) {
        if self.mute > 0 || !self.report {
            return;
        }
        if !self.dedupe.insert((code, line, token.to_string())) {
            return;
        }
        let chain = self.build_chain(seeds, env);
        self.findings.push(Finding {
            file: self.file_label().to_string(),
            line,
            code,
            token: token.to_string(),
            message,
            chain,
            fix: None,
        });
    }

    /// BFS through the def records from the seed identifiers, producing a
    /// derivation chain in L9's style.
    fn build_chain(&self, seeds: &[String], env: &Env) -> Vec<String> {
        let mut chain = vec![format!("fn {}", self.item().qualified())];
        let mut seen = BTreeSet::new();
        let mut q: VecDeque<String> = seeds.iter().cloned().collect();
        while let Some(name) = q.pop_front() {
            if chain.len() >= 7 || !seen.insert(name.clone()) {
                continue;
            }
            if let Some(def) = self.defs.get(&name) {
                let iv = env.get(&name).copied().unwrap_or(def.iv);
                chain.push(format!(
                    "{} = {} @ line {} -> {}",
                    name,
                    def.text,
                    def.line,
                    iv.render()
                ));
                for d in &def.deps {
                    q.push_back(d.clone());
                }
            } else if let Some(iv) = env.get(&name) {
                chain.push(format!("{} -> {}", name, iv.render()));
            } else {
                // Unseeded input (e.g. an unbounded f64 parameter): still
                // worth naming — it is where the uncertainty enters.
                chain.push(format!("{name} -> (no recorded bounds)"));
            }
        }
        chain
    }

    /// L15: after the final body execution, match contracts against the
    /// return summary and recorded bindings.
    fn check_contracts(&mut self) {
        let qualified = self.item().qualified();
        let item = self.item();
        let scalar_ret = item
            .body
            .map(|(b, _)| returns_scalar(self.toks, item.sig.1, b))
            .unwrap_or(false);
        let contracts = self.cfg.contracts.clone();
        for c in &contracts {
            // Fn-level: the whole key matches this item's path.
            if scalar_ret && c.full_pat.matches_qualified(&qualified) && !self.ret.is_bottom() {
                let ok = self.ret.within(&c.required);
                if !ok {
                    let seeds = self.ret_deps.clone();
                    let msg = format!(
                        "`{}` violates contract `{}` = {}: computed return interval {}",
                        qualified,
                        c.key,
                        c.required.render(),
                        self.ret.render()
                    );
                    let env = Env::new();
                    self.emit("L15", item.line, &item.name, msg, &seeds, &env);
                }
            }
            // Binding-level: prefix matches the item, last segment names a
            // binding recorded during execution.
            if let Some((prefix, bind)) = &c.binding_pat {
                if prefix.matches_qualified(&qualified) {
                    let hits: Vec<(usize, Interval, Vec<String>)> = self
                        .bindings
                        .iter()
                        .filter(|((n, _), _)| {
                            n == bind || n.rsplit('.').next() == Some(bind.as_str())
                        })
                        .map(|((_, line), (iv, deps))| (*line, *iv, deps.clone()))
                        .collect();
                    for (line, iv, deps) in hits {
                        if !iv.is_bottom() && !iv.within(&c.required) {
                            let msg = format!(
                                "binding `{}` in `{}` violates contract `{}` = {}: computed {}",
                                bind,
                                qualified,
                                c.key,
                                c.required.render(),
                                iv.render()
                            );
                            let env = Env::new();
                            self.emit("L15", line, bind, msg, &deps, &env);
                        }
                    }
                }
            }
        }
    }

    // -- statement walker --------------------------------------------------

    /// Executes the token range `[lo, hi)` as a statement sequence.
    fn exec_block(&mut self, env: &mut Env, lo: usize, hi: usize) -> BlockOut {
        let mut j = lo;
        let mut value = Interval::TOP;
        let mut value_deps: Vec<String> = Vec::new();
        let mut falls = true;
        let mut breaks: Vec<Env> = Vec::new();
        let mut conts: Vec<Env> = Vec::new();
        while j < hi {
            let text = self.toks[j].text.clone();
            match text.as_str() {
                ";" => {
                    j += 1;
                }
                "let" => {
                    j = self.exec_let(env, j, hi);
                }
                "if" => {
                    let (out, next) = self.exec_if(env, j, hi);
                    breaks.extend(out.breaks);
                    conts.extend(out.conts);
                    if !out.falls {
                        falls = false;
                        break;
                    }
                    value = out.value;
                    value_deps.clear();
                    j = next;
                }
                "while" | "loop" | "for" => {
                    let (loop_falls, next) = self.exec_loop(env, j, hi);
                    if !loop_falls {
                        falls = false;
                        break;
                    }
                    value = Interval::TOP;
                    j = next;
                }
                "match" => {
                    j = self.exec_match(env, j, hi);
                    value = Interval::TOP;
                    value_deps.clear();
                }
                "return" => {
                    let end = stmt_end_abs(self.toks, j + 1, hi);
                    let v = if end > j + 1 {
                        self.eval_range(env, j + 1, end)
                    } else {
                        Interval::TOP
                    };
                    let deps = self.deps_in_range(env, j + 1, end);
                    if self.mute == 0 {
                        self.accumulate_return(v, deps);
                    }
                    falls = false;
                    break;
                }
                "break" => {
                    breaks.push(env.clone());
                    falls = false;
                    break;
                }
                "continue" => {
                    conts.push(env.clone());
                    falls = false;
                    break;
                }
                "assert" | "debug_assert" => {
                    // `assert!(cond, "...")` — execute as an assumption.
                    if j + 2 < hi && self.toks[j + 1].text == "!" && self.toks[j + 2].text == "(" {
                        let close = matching_close(self.toks, j + 2, hi);
                        let cend = top_level_comma(self.toks, j + 3, close).unwrap_or(close);
                        self.eval_range(env, j + 3, cend);
                        self.refine_cond(env, j + 3, cend, true);
                        j = stmt_end_abs(self.toks, close, hi);
                    } else {
                        j = stmt_end_abs(self.toks, j + 1, hi);
                    }
                }
                "{" => {
                    let close = matching_close(self.toks, j, hi);
                    let out = self.exec_block(env, j + 1, close);
                    breaks.extend(out.breaks);
                    conts.extend(out.conts);
                    if !out.falls {
                        falls = false;
                        break;
                    }
                    value = out.value;
                    value_deps.clear();
                    j = close + 1;
                }
                _ => {
                    let end = stmt_end_abs(self.toks, j, hi);
                    if let Some((name, op, rhs_from)) = self.parse_assignment(j, end) {
                        let rhs = self.eval_range(env, rhs_from, end);
                        let mut deps = self.deps_in_range(env, rhs_from, end);
                        let line = self.toks[j].line;
                        let new = match op {
                            None => rhs,
                            Some(o) => {
                                let old = self.lookup(env, &name);
                                if !deps.contains(&name) {
                                    deps.push(name.clone());
                                }
                                self.apply_binop(env, o, old, rhs, j, end)
                            }
                        };
                        if let Some(name) = name_if_bindable(&name) {
                            self.record_binding(env, &name, new, line, rhs_from, end, deps);
                        }
                        j = end + 1;
                    } else {
                        let v = self.eval_range(env, j, end);
                        if end >= hi && !self.toks[end.min(hi) - 1].text.eq(";") {
                            value = v;
                            value_deps = self.deps_in_range(env, j, end);
                        }
                        j = end + 1;
                    }
                }
            }
        }
        if falls && !value_deps.is_empty() {
            // Tail expression: its deps seed the return chain.
            for d in value_deps {
                if !self.ret_deps.contains(&d) {
                    self.ret_deps.push(d);
                }
            }
        }
        BlockOut {
            value,
            falls,
            breaks,
            conts,
        }
    }

    /// `let` statement: binds pattern names; single-name patterns get the
    /// evaluated rhs (meet type annotation), multi-name patterns get TOP.
    fn exec_let(&mut self, env: &mut Env, j: usize, hi: usize) -> usize {
        let end = stmt_end_abs(self.toks, j, hi);
        // Find `=` and `:` at depth 0 within the let head.
        let mut depth = 0i32;
        let mut eq = None;
        let mut colon = None;
        let mut k = j + 1;
        while k < end {
            match self.toks[k].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 && colon.is_none() && eq.is_none() => colon = Some(k),
                "=" if depth == 0
                    && eq.is_none()
                    && self.toks[k + 1].text != "="
                    && !matches!(self.toks[k - 1].text.as_str(), "=" | "<" | ">" | "!") =>
                {
                    eq = Some(k)
                }
                _ => {}
            }
            k += 1;
        }
        let pat_end = colon.or(eq).unwrap_or(end);
        let names: Vec<String> = self.toks[j + 1..pat_end]
            .iter()
            .filter(|t| is_ident(&t.text) && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone())
            .collect();
        let Some(eq) = eq else {
            for n in names {
                Self::purge_fields(env, &n);
                env.insert(n, Interval::TOP);
            }
            return end + 1;
        };
        let rhs = self.eval_range(env, eq + 1, end);
        if names.len() == 1 {
            let name = names[0].clone();
            let mut iv = rhs;
            if let Some(c) = colon {
                for t in &self.toks[c + 1..eq] {
                    if let Some(tr) = type_range(&t.text) {
                        iv = iv.meet(&tr);
                        break;
                    }
                }
            }
            let deps = self.deps_in_range(env, eq + 1, end);
            let line = self.toks[j].line;
            self.record_binding(env, &name, iv, line, eq + 1, end, deps);
        } else {
            for n in names {
                Self::purge_fields(env, &n);
                env.insert(n, Interval::TOP);
            }
        }
        end + 1
    }

    /// Drops keys rooted at `name` (`name.len()`, `name.field`): rebinding
    /// the base invalidates every fact recorded about its parts.
    fn purge_fields(env: &mut Env, name: &str) {
        env.retain(|k, _| {
            !(k.len() > name.len() && k.starts_with(name) && k.as_bytes()[name.len()] == b'.')
        });
    }

    /// Binds `name` to `iv`, recording the def text (for chains) and the
    /// binding site (for contracts).
    #[allow(clippy::too_many_arguments)]
    fn record_binding(
        &mut self,
        env: &mut Env,
        name: &str,
        iv: Interval,
        line: usize,
        rhs_from: usize,
        rhs_to: usize,
        deps: Vec<String>,
    ) {
        Self::purge_fields(env, name);
        env.insert(name.to_string(), iv);
        if self.mute == 0 {
            let text = render_range(self.toks, rhs_from, rhs_to, 12);
            self.defs.insert(
                name.to_string(),
                DefRec {
                    line,
                    text,
                    deps: deps.clone(),
                    iv,
                },
            );
            self.bindings.insert((name.to_string(), line), (iv, deps));
        }
    }

    /// `if`/`if let` as statement or expression; returns the joined
    /// fall-through state in `env` and the arm-value join.
    fn exec_if(&mut self, env: &mut Env, j: usize, hi: usize) -> (BlockOut, usize) {
        let is_if_let = self.toks.get(j + 1).map(|t| t.text.as_str()) == Some("let");
        let Some(brace) = find_block_open(self.toks, j + 1, hi) else {
            return (
                BlockOut {
                    value: Interval::TOP,
                    falls: true,
                    breaks: Vec::new(),
                    conts: Vec::new(),
                },
                stmt_end_abs(self.toks, j, hi) + 1,
            );
        };
        let close = matching_close(self.toks, brace, hi);
        let (clo, chi) = (j + 1, brace);
        self.eval_range(env, clo, chi);
        let mut then_env = env.clone();
        let mut else_env = env.clone();
        if !is_if_let {
            self.refine_cond(&mut then_env, clo, chi, true);
            self.refine_cond(&mut else_env, clo, chi, false);
        }
        let then_out = self.exec_block(&mut then_env, brace + 1, close);
        let mut breaks = then_out.breaks;
        let mut conts = then_out.conts;
        let mut next = close + 1;
        let (else_out_value, else_falls) =
            if self.toks.get(next).map(|t| t.text.as_str()) == Some("else") {
                if self.toks.get(next + 1).map(|t| t.text.as_str()) == Some("if") {
                    let (out, n2) = self.exec_if(&mut else_env, next + 1, hi);
                    breaks.extend(out.breaks);
                    conts.extend(out.conts);
                    next = n2;
                    (out.value, out.falls)
                } else if let Some(eb) = find_block_open(self.toks, next + 1, hi) {
                    let eclose = matching_close(self.toks, eb, hi);
                    let out = self.exec_block(&mut else_env, eb + 1, eclose);
                    breaks.extend(out.breaks);
                    conts.extend(out.conts);
                    next = eclose + 1;
                    (out.value, out.falls)
                } else {
                    (Interval::TOP, true)
                }
            } else {
                (Interval::TOP, true)
            };
        let (value, falls) = match (then_out.falls, else_falls) {
            (true, true) => {
                *env = join_env(&then_env, &else_env);
                (then_out.value.join(&else_out_value), true)
            }
            (true, false) => {
                *env = then_env;
                (then_out.value, true)
            }
            (false, true) => {
                *env = else_env;
                (else_out_value, true)
            }
            (false, false) => (Interval::BOTTOM, false),
        };
        (
            BlockOut {
                value,
                falls,
                breaks,
                conts,
            },
            next,
        )
    }

    /// `match`: havoc every assigned name in the arms (we do not follow
    /// arm control flow), conservatively widen the return accumulator if
    /// any arm returns, and continue after the closing brace.
    fn exec_match(&mut self, env: &mut Env, j: usize, hi: usize) -> usize {
        let Some(brace) = find_block_open(self.toks, j + 1, hi) else {
            return stmt_end_abs(self.toks, j, hi) + 1;
        };
        let close = matching_close(self.toks, brace, hi);
        self.eval_range(env, j + 1, brace);
        self.havoc_region(env, brace + 1, close);
        if self.mute == 0
            && self.toks[brace + 1..close]
                .iter()
                .any(|t| t.text == "return")
        {
            self.accumulate_return(Interval::TOP, Vec::new());
        }
        let mut next = close + 1;
        if self.toks.get(next).map(|t| t.text.as_str()) == Some(";") {
            next += 1;
        }
        next
    }

    /// Sets every name assigned anywhere in `[lo, hi)` to TOP.
    fn havoc_region(&mut self, env: &mut Env, lo: usize, hi: usize) {
        let mut k = lo;
        while k + 1 < hi {
            let t = &self.toks[k].text;
            if t == "="
                && self.toks[k + 1].text != "="
                && !matches!(self.toks[k - 1].text.as_str(), "=" | "<" | ">" | "!")
                && self.toks.get(k + 1).map(|t| t.text.as_str()) != Some(">")
            {
                // Walk back over `name`, `self . name`, `* name`, compound op.
                let mut b = k - 1;
                if matches!(self.toks[b].text.as_str(), "+" | "-" | "*" | "/" | "%") && b > lo {
                    b -= 1;
                }
                if is_ident(&self.toks[b].text) {
                    Self::purge_fields(env, &self.toks[b].text);
                    env.insert(self.toks[b].text.clone(), Interval::TOP);
                    if b >= 2 && self.toks[b - 1].text == "." && is_ident(&self.toks[b - 2].text) {
                        let composite = format!("{}.{}", self.toks[b - 2].text, self.toks[b].text);
                        env.insert(composite, Interval::TOP);
                    }
                }
            }
            if t == "let" {
                // Arm-local lets shadow; conservatively havoc their names.
                let end = stmt_end_abs(self.toks, k, hi);
                for tk in &self.toks[k + 1..end.min(hi)] {
                    if tk.text == "=" {
                        break;
                    }
                    if is_ident(&tk.text) && tk.text != "mut" && tk.text != "ref" {
                        Self::purge_fields(env, &tk.text);
                        env.insert(tk.text.clone(), Interval::TOP);
                    }
                }
            }
            k += 1;
        }
    }

    /// `while`/`loop`/`for`: widening fixpoint at the head, one narrowing
    /// pass, then a final reporting execution. Returns (falls, next idx).
    fn exec_loop(&mut self, env: &mut Env, j: usize, hi: usize) -> (bool, usize) {
        let kind = self.toks[j].text.clone();
        let Some(brace) = find_block_open(self.toks, j + 1, hi) else {
            return (true, stmt_end_abs(self.toks, j, hi) + 1);
        };
        let close = matching_close(self.toks, brace, hi);
        let after = close + 1;
        let plain_while =
            kind == "while" && self.toks.get(j + 1).map(|t| t.text.as_str()) != Some("let");
        let (clo, chi) = (j + 1, brace);
        let for_bind = if kind == "for" {
            self.parse_for_binding(env, j + 1, brace)
        } else {
            None
        };

        let mut head = env.clone();
        self.mute += 1;
        for it in 0..LOOP_ITERS {
            let mut cur = head.clone();
            if let Some(binds) = &for_bind {
                for (n, iv) in binds {
                    cur.insert(n.clone(), *iv);
                }
            }
            if plain_while {
                self.refine_cond(&mut cur, clo, chi, true);
            }
            let out = self.exec_block(&mut cur, brace + 1, close);
            let mut new_head = head.clone();
            if out.falls {
                new_head = join_env(&new_head, &cur);
            }
            for c in &out.conts {
                new_head = join_env(&new_head, c);
            }
            if it >= 1 {
                for (k, v) in new_head.iter_mut() {
                    if let Some(old) = head.get(k) {
                        *v = old.widen(v);
                    }
                }
            }
            if new_head == head {
                break;
            }
            head = new_head;
        }
        // One narrowing pass recovers bounds widening threw away where the
        // body immediately re-establishes them.
        {
            let mut cur = head.clone();
            if let Some(binds) = &for_bind {
                for (n, iv) in binds {
                    cur.insert(n.clone(), *iv);
                }
            }
            if plain_while {
                self.refine_cond(&mut cur, clo, chi, true);
            }
            let out = self.exec_block(&mut cur, brace + 1, close);
            if out.falls {
                let mut post = env.clone();
                post = join_env(&post, &cur);
                for c in &out.conts {
                    post = join_env(&post, c);
                }
                for (k, v) in head.iter_mut() {
                    if let Some(p) = post.get(k) {
                        *v = v.narrow(p);
                    }
                }
            }
        }
        self.mute -= 1;
        // Final, unmuted execution: checks and bindings fire against the
        // stabilized head.
        let mut fin = head.clone();
        if let Some(binds) = &for_bind {
            for (n, iv) in binds {
                fin.insert(n.clone(), *iv);
            }
        }
        self.eval_range(&fin, clo, chi);
        if plain_while {
            self.refine_cond(&mut fin, clo, chi, true);
        }
        let out = self.exec_block(&mut fin, brace + 1, close);
        let mut exit = head.clone();
        if plain_while {
            self.refine_cond(&mut exit, clo, chi, false);
        }
        let mut reachable = kind != "loop";
        for b in &out.breaks {
            exit = join_env(&exit, b);
            reachable = true;
        }
        if !reachable {
            return (false, after);
        }
        *env = exit;
        (true, after)
    }

    /// `for NAME in a..b` binds NAME to the (integer) range; any other
    /// iterator binds the pattern names to TOP. When the range end is a
    /// plain ident, a second binding refines it: the body only runs when
    /// the range is non-empty, so `end > a.lo` (or `>=` for `..=`) holds
    /// inside.
    fn parse_for_binding(
        &mut self,
        env: &Env,
        lo: usize,
        brace: usize,
    ) -> Option<Vec<(String, Interval)>> {
        let in_pos = (lo..brace).find(|&k| self.toks[k].text == "in")?;
        let name = self.toks[lo..in_pos]
            .iter()
            .find(|t| is_ident(&t.text) && t.text != "mut" && t.text != "ref")?
            .text
            .clone();
        // Range iterator: `a .. b` / `a ..= b` at depth 0.
        let mut depth = 0i32;
        for k in in_pos + 1..brace.saturating_sub(1) {
            match self.toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "." if depth == 0 && self.toks[k + 1].text == "." => {
                    let a = if k > in_pos + 1 {
                        self.eval_range(env, in_pos + 1, k)
                    } else {
                        Interval::TOP
                    };
                    let mut r = k + 2;
                    let inclusive = self.toks.get(r).map(|t| t.text.as_str()) == Some("=");
                    if inclusive {
                        r += 1;
                    }
                    let b = if r < brace {
                        self.eval_range(env, r, brace)
                    } else {
                        Interval::TOP
                    };
                    let mut iv = Interval::TOP;
                    iv.int = true;
                    iv.nan = false;
                    if !a.is_bottom() {
                        iv.lo = a.lo.floor();
                    }
                    if !b.is_bottom() {
                        // b.hi is a sound cap for `..` and `..=` alike: the
                        // exclusive form only tightens it by one.
                        iv.hi = b.hi;
                    }
                    if iv.lo > iv.hi {
                        iv = Interval::TOP;
                    }
                    let mut binds = vec![(name, iv)];
                    if brace - r == 1
                        && is_ident(&self.toks[r].text)
                        && !crate::model::is_reserved_word(&self.toks[r].text)
                        && !a.is_bottom()
                        && a.lo.is_finite()
                    {
                        // Non-emptiness: concrete end > concrete start
                        // >= a.lo, so end >= a.lo + 1 (ints) inside the
                        // body; `..=` only needs end >= a.lo.
                        let lo_req = if inclusive { a.lo } else { a.lo + 1.0 };
                        let end_iv = b.meet(&Interval::range(lo_req, f64::INFINITY));
                        if !end_iv.is_bottom() {
                            binds.push((self.toks[r].text.clone(), end_iv));
                        }
                    }
                    return Some(binds);
                }
                _ => {}
            }
        }
        Some(vec![(name, Interval::TOP)])
    }

    /// Detects `LHS =` / `LHS op=` at statement start. Returns the bound
    /// name (`""` if the LHS is unbindable, e.g. indexed), the compound
    /// operator, and the rhs start index.
    fn parse_assignment(&self, j: usize, end: usize) -> Option<(String, Option<char>, usize)> {
        let mut depth = 0i32;
        let mut k = j;
        let mut eq = None;
        while k < end {
            match self.toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && k > j => {
                    let next = self.toks.get(k + 1).map(|t| t.text.as_str());
                    let prev = self.toks[k - 1].text.as_str();
                    let shiftish =
                        (prev == "<" || prev == ">") && k >= 2 && self.toks[k - 2].text == prev;
                    if next != Some("=")
                        && next != Some(">")
                        && (!matches!(prev, "=" | "<" | ">" | "!") || shiftish)
                    {
                        eq = Some(k);
                        break;
                    }
                    // Skip the second half of `==`/`<=`/`>=`/`!=`.
                }
                _ => {}
            }
            k += 1;
        }
        let eq = eq?;
        let prev = self.toks[eq - 1].text.as_str();
        let (op, lhs_end) = match prev {
            "+" | "-" | "*" | "/" | "%" if eq - 1 > j => {
                (Some(prev.chars().next().unwrap_or('+')), eq - 1)
            }
            "<" | ">" => (Some('s'), eq.saturating_sub(2)), // shift-assign: havoc
            _ => (None, eq),
        };
        let lhs = &self.toks[j..lhs_end];
        let name = match lhs {
            [a] if is_ident(&a.text) => a.text.clone(),
            [s, a] if s.text == "*" && is_ident(&a.text) => a.text.clone(),
            [a, d, b] if is_ident(&a.text) && d.text == "." && is_ident(&b.text) => {
                format!("{}.{}", a.text, b.text)
            }
            _ => String::new(),
        };
        Some((name, op, eq + 1))
    }

    /// Applies a compound-assignment operator with the div/overflow checks.
    fn apply_binop(
        &mut self,
        env: &Env,
        op: char,
        a: Interval,
        b: Interval,
        rhs_from: usize,
        rhs_to: usize,
    ) -> Interval {
        let line = self.toks[rhs_from.min(self.toks.len() - 1)].line;
        match op {
            '+' => {
                let r = a.add(&b);
                self.check_overflow(env, line, &a, &b, &r, rhs_from, rhs_to, "+");
                r
            }
            '-' => {
                let r = a.sub(&b);
                self.check_overflow(env, line, &a, &b, &r, rhs_from, rhs_to, "-");
                r
            }
            '*' => {
                let r = a.mul(&b);
                self.check_overflow(env, line, &a, &b, &r, rhs_from, rhs_to, "*");
                r
            }
            '/' => {
                self.check_div(env, line, &a, &b, rhs_from, rhs_to);
                a.div(&b)
            }
            '%' => {
                self.check_div(env, line, &a, &b, rhs_from, rhs_to);
                a.rem(&b)
            }
            _ => {
                // Shift-assign and anything exotic: give up precisely.
                let mut t = Interval::TOP;
                t.nan = false;
                t.int = a.int;
                t
            }
        }
    }

    // -- branch-condition refinement ---------------------------------------

    /// Refines `env` under the condition `[lo, hi)` being `polarity`.
    fn refine_cond(&mut self, env: &mut Env, mut lo: usize, mut hi: usize, polarity: bool) {
        if lo >= hi {
            return;
        }
        // Strip a fully-wrapping paren layer.
        while self.toks[lo].text == "(" && matching_close(self.toks, lo, hi) == hi - 1 {
            lo += 1;
            hi -= 1;
            if lo >= hi {
                return;
            }
        }
        // Conjunction/disjunction split (`&&` / `||` are doubled tokens).
        // This runs before the `!` strip: `!` binds tighter than the
        // connectives, so `!a || b` splits at `||` first.
        let mut depth = 0i32;
        let mut k = lo;
        while k + 1 < hi {
            match self.toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "&" if depth == 0 && self.toks[k + 1].text == "&" => {
                    if polarity {
                        self.refine_cond(env, lo, k, true);
                        self.refine_cond(env, k + 2, hi, true);
                    }
                    return;
                }
                "|" if depth == 0 && self.toks[k + 1].text == "|" => {
                    if !polarity {
                        self.refine_cond(env, lo, k, false);
                        self.refine_cond(env, k + 2, hi, false);
                    }
                    return;
                }
                _ => {}
            }
            k += 1;
        }
        if self.toks[lo].text == "!" {
            self.refine_cond(env, lo + 1, hi, !polarity);
            return;
        }
        // Method-style predicates.
        if hi - lo >= 5
            && self.toks[hi - 1].text == ")"
            && self.toks[hi - 2].text == "("
            && self.toks[hi - 3].text == "is_nan"
            && self.toks[hi - 4].text == "."
        {
            if let Some(name) = self.cond_side_name(lo, hi - 4) {
                let cur = self.lookup(env, &name);
                let refined = if polarity {
                    // NaN-only.
                    Interval {
                        lo: f64::INFINITY,
                        hi: f64::NEG_INFINITY,
                        nan: true,
                        int: false,
                    }
                } else {
                    Interval { nan: false, ..cur }
                };
                env.insert(name, refined);
            }
            return;
        }
        if hi - lo >= 5
            && self.toks[hi - 1].text == ")"
            && self.toks[hi - 2].text == "("
            && self.toks[hi - 3].text == "is_empty"
            && self.toks[hi - 4].text == "."
        {
            if let Some(name) = self.cond_side_name(lo, hi - 4) {
                // Record the container's length under a synthetic key so a
                // later `name.len()` in the same region sees the fact.
                let mut iv = if polarity {
                    Interval::range(0.0, 0.0)
                } else {
                    Interval::range(1.0, U64_MAX_F)
                };
                iv.int = true;
                iv.nan = false;
                env.insert(format!("{name}.len()"), iv);
            }
            return;
        }
        if hi - lo >= 5
            && self.toks[hi - 1].text == ")"
            && self.toks[hi - 2].text == "("
            && self.toks[hi - 3].text == "is_finite"
            && self.toks[hi - 4].text == "."
            && polarity
        {
            if let Some(name) = self.cond_side_name(lo, hi - 4) {
                let cur = self.lookup(env, &name);
                env.insert(
                    name,
                    Interval {
                        nan: false,
                        ..cur.meet(&Interval::range(-f64::MAX, f64::MAX))
                    },
                );
            }
            return;
        }
        // Comparison `A op B`.
        let mut depth = 0i32;
        let mut cmp = None;
        let mut k = lo;
        while k < hi {
            let t = self.toks[k].text.as_str();
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "=" if depth == 0 && self.toks.get(k + 1).map(|t| t.text.as_str()) == Some("=") => {
                    cmp = Some(("==", k, k + 2));
                    break;
                }
                "!" if depth == 0 && self.toks.get(k + 1).map(|t| t.text.as_str()) == Some("=") => {
                    cmp = Some(("!=", k, k + 2));
                    break;
                }
                "<" | ">" if depth == 0 => {
                    // Skip shifts and generics heuristically: `<<`/`>>`.
                    if self.toks.get(k + 1).map(|t| t.text.as_str()) == Some(t) {
                        k += 2;
                        continue;
                    }
                    if self.toks.get(k + 1).map(|t| t.text.as_str()) == Some("=") {
                        cmp = Some((if t == "<" { "<=" } else { ">=" }, k, k + 2));
                    } else {
                        cmp = Some((if t == "<" { "<" } else { ">" }, k, k + 1));
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some((op, opk, rhs_at)) = cmp else {
            return;
        };
        let lhs_iv = self.eval_range(env, lo, opk);
        let rhs_iv = self.eval_range(env, rhs_at, hi);
        let eff = if polarity { op } else { negate_cmp(op) };
        // NaN clearing: a *taken* ordered comparison implies neither side
        // is NaN; `!=` is the exception (NaN != x is true).
        let clears_nan = (polarity && op != "!=") || (!polarity && op == "!=");
        if let Some(name) = self.cond_side_name(lo, opk) {
            self.refine_by_cmp(env, &name, eff, &rhs_iv, clears_nan);
        }
        if let Some(name) = self.cond_side_name(rhs_at, hi) {
            self.refine_by_cmp(env, &name, flip_cmp(eff), &lhs_iv, clears_nan);
        }
    }

    /// The refinable name of one comparison side: a single identifier,
    /// `*x`, or a two-segment field path.
    fn cond_side_name(&self, lo: usize, hi: usize) -> Option<String> {
        let side = &self.toks[lo..hi];
        match side {
            [a] if is_ident(&a.text) => Some(a.text.clone()),
            [s, a] if s.text == "*" && is_ident(&a.text) => Some(a.text.clone()),
            [a, d, b] if is_ident(&a.text) && d.text == "." && is_ident(&b.text) => {
                Some(format!("{}.{}", a.text, b.text))
            }
            _ => None,
        }
    }

    /// Meets `name` with the bound implied by `name eff_op rhs`.
    fn refine_by_cmp(
        &self,
        env: &mut Env,
        name: &str,
        eff: &str,
        rhs: &Interval,
        clears_nan: bool,
    ) {
        if rhs.is_bottom() {
            return;
        }
        let cur = self.lookup(env, name);
        let strict_lt = |b: f64| {
            if !b.is_finite() {
                b
            } else if cur.int {
                b - 1.0
            } else {
                next_down(b)
            }
        };
        let strict_gt = |b: f64| {
            if !b.is_finite() {
                b
            } else if cur.int {
                b + 1.0
            } else {
                next_up(b)
            }
        };
        let mut bound = match eff {
            "<" => Interval::range(f64::NEG_INFINITY, strict_lt(rhs.hi)),
            "<=" => Interval::range(f64::NEG_INFINITY, rhs.hi),
            ">" => Interval::range(strict_gt(rhs.lo), f64::INFINITY),
            ">=" => Interval::range(rhs.lo, f64::INFINITY),
            "==" => {
                let mut b = *rhs;
                b.nan = false;
                b
            }
            "!=" => {
                // Only endpoint trimming is sound.
                let mut b = cur;
                if rhs.lo == rhs.hi && rhs.lo.is_finite() {
                    if b.lo == rhs.lo {
                        b.lo = strict_gt(b.lo);
                    }
                    if b.hi == rhs.lo {
                        b.hi = strict_lt(b.hi);
                    }
                }
                b
            }
            _ => return,
        };
        if !clears_nan {
            bound.nan = true;
        }
        let mut refined = cur.meet(&bound);
        if clears_nan {
            refined.nan = false;
        }
        env.insert(name.to_string(), refined);
    }

    // -- expression evaluation ---------------------------------------------

    /// Evaluates `[lo, hi)` as an expression. If the parser cannot consume
    /// the whole range it keeps walking (so checks still fire on the rest)
    /// but returns TOP — a partial parse must never produce a narrow value.
    fn eval_range(&mut self, env: &Env, lo: usize, hi: usize) -> Interval {
        if lo >= hi {
            return Interval::TOP;
        }
        let (v, np) = self.expr_bp(env, lo, hi, 0);
        if np >= hi {
            return v;
        }
        let mut pos = np.max(lo + 1);
        while pos < hi {
            let (_, q) = self.expr_bp(env, pos, hi, 0);
            pos = q.max(pos + 1);
        }
        Interval::TOP
    }

    /// Pratt parser over the token range; returns (value, next index).
    fn expr_bp(&mut self, env: &Env, pos: usize, end: usize, min_bp: u8) -> (Interval, usize) {
        if pos >= end {
            return (Interval::TOP, pos);
        }
        let t = self.toks[pos].text.clone();
        // Track the name of a plain variable/field path so `.field` access
        // and comparisons can key the environment.
        let mut cur_name: Option<String> = None;
        let (mut value, mut p) = match t.as_str() {
            "(" => {
                let close = matching_close(self.toks, pos, end);
                let v = if top_level_comma(self.toks, pos + 1, close).is_some() {
                    self.eval_range(env, pos + 1, close);
                    Interval::TOP
                } else {
                    self.eval_range(env, pos + 1, close)
                };
                (v, close + 1)
            }
            "-" => {
                let (v, np) = self.expr_bp(env, pos + 1, end, 25);
                (v.neg(), np)
            }
            "!" => {
                let (_, np) = self.expr_bp(env, pos + 1, end, 25);
                let mut b = Interval::TOP;
                b.nan = false;
                (b, np)
            }
            "*" | "&" => {
                // Deref / borrow are numerically transparent. (`&&x` shows
                // up as two `&` tokens and recurses.)
                return self.expr_bp(env, pos + 1, end, min_bp);
            }
            "if" => {
                let mut e2 = env.clone();
                let (out, np) = self.exec_if(&mut e2, pos, end);
                (out.value, np)
            }
            "match" => {
                let mut e2 = env.clone();
                let np = self.exec_match(&mut e2, pos, end);
                (Interval::TOP, np)
            }
            "move" | "|" => {
                // Closure: opaque.
                return (Interval::TOP, end);
            }
            _ if t.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                self.parse_number(pos, end)
            }
            _ if is_ident(&t) => {
                let (v, np, name) = self.eval_path(env, pos, end);
                cur_name = name;
                (v, np)
            }
            _ => {
                return (Interval::TOP, pos);
            }
        };
        // Postfix / infix loop.
        loop {
            if p >= end {
                break;
            }
            let op = self.toks[p].text.clone();
            match op.as_str() {
                "." => {
                    let next = self
                        .toks
                        .get(p + 1)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    if next == "." {
                        break; // range operator `..`
                    }
                    if next.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                        value = Interval::TOP; // tuple index
                        cur_name = None;
                        p += 2;
                        continue;
                    }
                    if self.toks.get(p + 2).map(|t| t.text.as_str()) == Some("(") {
                        let close = matching_close(self.toks, p + 2, end);
                        let args = self.eval_args(env, p + 3, close);
                        let line = self.toks[p + 1].line;
                        value = self.apply_method(env, &next, value, &args, line, p + 3, close);
                        if next == "len" {
                            if let Some(base) = &cur_name {
                                // `x.is_empty()` refinements live under this
                                // synthetic key (see refine_cond).
                                if let Some(known) = env.get(&format!("{base}.len()")) {
                                    value = value.meet(known);
                                }
                            }
                        }
                        cur_name = None;
                        p = close + 1;
                        continue;
                    }
                    // Field access.
                    cur_name = cur_name.map(|base| format!("{base}.{next}"));
                    value = match &cur_name {
                        Some(full) if env.contains_key(full) => env[full],
                        Some(full) => {
                            let tail = full.rsplit('.').next().unwrap_or(full);
                            self.cfg.domains.domain_of(tail).unwrap_or(Interval::TOP)
                        }
                        None => self.cfg.domains.domain_of(&next).unwrap_or(Interval::TOP),
                    };
                    p += 2;
                }
                "?" => {
                    p += 1;
                }
                "as" => {
                    if min_bp > 27 {
                        break;
                    }
                    let mut q = p + 1;
                    let mut ty = String::new();
                    while q < end && (is_ident(&self.toks[q].text) || self.toks[q].text == ":") {
                        if is_ident(&self.toks[q].text) {
                            ty = self.toks[q].text.clone();
                        }
                        q += 1;
                    }
                    let line = self.toks[p].line;
                    if let Some(tr) = type_range(&ty) {
                        self.check_int_cast(env, line, &value, &ty, &tr, pos, p);
                        value = value.cast_to_int(tr.lo, tr.hi);
                    } else if is_float_type(&ty) {
                        value = value.cast_to_float();
                    } else {
                        value = Interval::TOP;
                    }
                    cur_name = None;
                    p = q;
                }
                "[" => {
                    let close = matching_close(self.toks, p, end);
                    self.eval_range(env, p + 1, close);
                    value = Interval::TOP;
                    cur_name = None;
                    p = close + 1;
                }
                "+" | "-" | "*" | "/" | "%" => {
                    let (lbp, rbp) = if matches!(op.as_str(), "+" | "-") {
                        (10, 11)
                    } else {
                        (20, 21)
                    };
                    if lbp <= min_bp {
                        break;
                    }
                    let rhs_from = p + 1;
                    let line = self.toks[p].line;
                    let (rhs, np) = self.expr_bp(env, rhs_from, end, rbp);
                    value = self.apply_infix(
                        env,
                        op.chars().next().unwrap_or('+'),
                        value,
                        rhs,
                        line,
                        rhs_from,
                        np,
                    );
                    cur_name = None;
                    p = np;
                }
                "<" | ">" | "=" | "&" | "|" => {
                    // Shifts: value becomes an unknown integer.
                    if (op == "<" || op == ">")
                        && self.toks.get(p + 1).map(|t| t.text.as_str()) == Some(op.as_str())
                    {
                        if 15 <= min_bp {
                            break;
                        }
                        let (_, np) = self.expr_bp(env, p + 2, end, 16);
                        let mut v = Interval::TOP;
                        v.nan = false;
                        v.int = true;
                        value = v;
                        cur_name = None;
                        p = np;
                        continue;
                    }
                    // Logical / comparison: evaluate the rest for checks;
                    // the result is boolean-ish [0, 1].
                    let doubled = (op == "&" || op == "|")
                        && self.toks.get(p + 1).map(|t| t.text.as_str()) == Some(op.as_str());
                    let cmp_eq = self.toks.get(p + 1).map(|t| t.text.as_str()) == Some("=");
                    if op == "=" && !cmp_eq {
                        break; // plain `=`: not an expression operator
                    }
                    if 5 <= min_bp {
                        break;
                    }
                    let skip = if doubled || cmp_eq { 2 } else { 1 };
                    let (_, np) = self.expr_bp(env, p + skip, end, 6);
                    let mut b = Interval::range(0.0, 1.0);
                    b.int = true;
                    value = b;
                    cur_name = None;
                    p = np;
                }
                _ => break,
            }
        }
        (value, p)
    }

    /// Infix arithmetic with the L13/L14 checks attached.
    #[allow(clippy::too_many_arguments)]
    fn apply_infix(
        &mut self,
        env: &Env,
        op: char,
        a: Interval,
        b: Interval,
        line: usize,
        rhs_from: usize,
        rhs_to: usize,
    ) -> Interval {
        match op {
            '/' => {
                self.check_div(env, line, &a, &b, rhs_from, rhs_to);
                a.div(&b)
            }
            '%' => {
                self.check_div(env, line, &a, &b, rhs_from, rhs_to);
                a.rem(&b)
            }
            '+' => {
                let r = a.add(&b);
                self.check_overflow(env, line, &a, &b, &r, rhs_from, rhs_to, "+");
                r
            }
            '-' => {
                let r = a.sub(&b);
                self.check_overflow(env, line, &a, &b, &r, rhs_from, rhs_to, "-");
                r
            }
            '*' => {
                let r = a.mul(&b);
                self.check_overflow(env, line, &a, &b, &r, rhs_from, rhs_to, "*");
                r
            }
            _ => Interval::TOP,
        }
    }

    /// Evaluates a path expression: variable, constant, call, or struct
    /// literal. Returns (value, next, refinable-name).
    fn eval_path(
        &mut self,
        env: &Env,
        pos: usize,
        end: usize,
    ) -> (Interval, usize, Option<String>) {
        let mut segs: Vec<String> = vec![self.toks[pos].text.clone()];
        let mut p = pos + 1;
        while p + 1 < end && self.toks[p].text == ":" && self.toks[p + 1].text == ":" {
            // Skip turbofish generics.
            if self.toks.get(p + 2).map(|t| t.text.as_str()) == Some("<") {
                let close = matching_close_angle(self.toks, p + 2, end);
                p = close + 1;
                continue;
            }
            if let Some(t) = self.toks.get(p + 2) {
                if is_ident(&t.text) {
                    segs.push(t.text.clone());
                    p += 3;
                    continue;
                }
            }
            break;
        }
        let last = segs.last().cloned().unwrap_or_default();
        // Known numeric constants.
        if segs.len() >= 2 {
            if let Some(c) = path_constant(&segs) {
                return (c, p, None);
            }
        }
        // Call?
        if self.toks.get(p).map(|t| t.text.as_str()) == Some("(") {
            let close = matching_close(self.toks, p, end);
            let line = self.toks[pos].line;
            match last.as_str() {
                "Ok" | "Some" => {
                    let v = self.eval_range(env, p + 1, close);
                    return (v, close + 1, None);
                }
                "Err" | "None" => {
                    self.eval_range(env, p + 1, close);
                    return (Interval::BOTTOM, close + 1, None);
                }
                _ => {}
            }
            let args = self.eval_args(env, p + 1, close);
            if last == "f64_to_usize_saturating" {
                if let Some(x) = args.first() {
                    self.check_sat_cast(env, line, x, p + 1, close);
                }
                let mut r = Interval::range(0.0, U64_MAX_F);
                r.int = true;
                return (r, close + 1, None);
            }
            if last == "usize_to_f64" {
                // Audited helper (`crate::convert`): a plain `usize as f64`.
                // Passing the call-site interval through keeps this
                // context-sensitive — the function summary would collapse
                // every call to the parameter's full domain.
                let v = args.first().copied().unwrap_or(Interval::TOP);
                let mut r = v.cast_to_float();
                r.nan = false;
                if r.lo < 0.0 {
                    r.lo = 0.0; // the argument is usize
                }
                return (r, close + 1, None);
            }
            let call = crate::model::CallRef {
                name: last.clone(),
                qualifier: if segs.len() >= 2 {
                    segs.get(segs.len() - 2).cloned()
                } else {
                    None
                },
                is_method: false,
            };
            let mut v = Interval::BOTTOM;
            let mut resolved = false;
            for idx in self.model.resolve(&call) {
                if let Some(s) = self.summaries.get(&idx) {
                    v = v.join(s);
                    resolved = true;
                }
            }
            let v = if resolved { v } else { Interval::TOP };
            return (v, close + 1, None);
        }
        // Struct literal? `UpperCamel { field: expr, .. }`
        if self.toks.get(p).map(|t| t.text.as_str()) == Some("{")
            && last.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            let close = matching_close(self.toks, p, end);
            self.eval_struct_literal(env, p + 1, close);
            return (Interval::TOP, close + 1, None);
        }
        if segs.len() == 1 && !crate::model::is_reserved_word(&last) {
            let v = self.lookup(env, &last);
            return (v, p, Some(last));
        }
        (Interval::TOP, p, None)
    }

    /// Struct-literal fields are contract binding sites (`GpPosterior {
    /// var: ... }`): evaluate each initializer and record it.
    fn eval_struct_literal(&mut self, env: &Env, lo: usize, hi: usize) {
        let mut k = lo;
        while k < hi {
            let field_at = k;
            // field ident followed by `:` (not `::`).
            if is_ident(&self.toks[k].text)
                && self.toks.get(k + 1).map(|t| t.text.as_str()) == Some(":")
                && self.toks.get(k + 2).map(|t| t.text.as_str()) != Some(":")
            {
                let name = self.toks[k].text.clone();
                let line = self.toks[k].line;
                let vstart = k + 2;
                let vend = top_level_comma(self.toks, vstart, hi).unwrap_or(hi);
                let iv = self.eval_range(env, vstart, vend);
                if self.mute == 0 {
                    let deps = self.deps_in_range(env, vstart, vend);
                    self.bindings.insert((name, line), (iv, deps));
                }
                k = vend + 1;
            } else if is_ident(&self.toks[k].text)
                && matches!(
                    self.toks.get(k + 1).map(|t| t.text.as_str()),
                    Some(",") | None
                )
            {
                // Shorthand `field,`.
                let name = self.toks[k].text.clone();
                let line = self.toks[k].line;
                let iv = self.lookup(env, &name);
                if self.mute == 0 {
                    self.bindings.insert((name.clone(), line), (iv, vec![name]));
                }
                k += 2;
            } else {
                let _ = field_at;
                k += 1;
            }
        }
    }

    /// Evaluates comma-separated call arguments.
    fn eval_args(&mut self, env: &Env, lo: usize, hi: usize) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut k = lo;
        while k < hi {
            let next = top_level_comma(self.toks, k, hi).unwrap_or(hi);
            out.push(self.eval_range(env, k, next));
            k = next + 1;
        }
        out
    }

    /// Numeric-method transfer function.
    #[allow(clippy::too_many_arguments)]
    fn apply_method(
        &mut self,
        env: &Env,
        name: &str,
        recv: Interval,
        args: &[Interval],
        line: usize,
        arg_lo: usize,
        arg_hi: usize,
    ) -> Interval {
        let a0 = args.first().copied().unwrap_or(Interval::TOP);
        match name {
            "max" => recv.max_of(&a0),
            "min" => recv.min_of(&a0),
            "clamp" => {
                let a1 = args.get(1).copied().unwrap_or(Interval::TOP);
                recv.clamp_to(&a0, &a1)
            }
            "abs" => recv.abs(),
            "sqrt" => {
                self.check_sqrt(env, line, &recv, arg_lo, arg_hi);
                recv.sqrt()
            }
            "ln" | "log2" | "log10" => {
                self.check_ln(env, line, &recv, name, arg_lo, arg_hi);
                let l = recv.ln();
                if name == "ln" {
                    l
                } else {
                    let base = if name == "log2" {
                        std::f64::consts::LN_2
                    } else {
                        std::f64::consts::LN_10
                    };
                    let scale = Interval::range(next_down(1.0 / base), next_up(1.0 / base));
                    l.mul(&scale)
                }
            }
            "exp" => recv.exp(),
            "recip" => {
                self.check_div(env, line, &Interval::constant(1.0), &recv, arg_lo, arg_hi);
                Interval::constant(1.0).div(&recv)
            }
            "powi" => {
                if a0.lo == a0.hi && a0.lo.is_finite() && a0.lo >= 0.0 && a0.lo <= 8.0 {
                    let k = a0.lo as u32;
                    let mut r = Interval::constant(1.0);
                    for _ in 0..k {
                        r = r.mul(&recv);
                    }
                    r
                } else {
                    Interval::TOP
                }
            }
            "floor" | "ceil" | "round" | "trunc" => {
                if recv.is_bottom() {
                    recv
                } else {
                    let (lo, hi) = match name {
                        "floor" => (recv.lo.floor(), recv.hi.floor()),
                        "ceil" => (recv.lo.ceil(), recv.hi.ceil()),
                        "trunc" => (recv.lo.trunc(), recv.hi.trunc()),
                        _ => (recv.lo.floor(), recv.hi.ceil()), // round: 1 wide is sound
                    };
                    let mut r = Interval::range(lo.min(hi), hi.max(lo));
                    r.int = true;
                    r.nan = recv.nan;
                    r
                }
            }
            "mul_add" => {
                let a1 = args.get(1).copied().unwrap_or(Interval::TOP);
                recv.mul(&a0).add(&a1)
            }
            "copied" | "cloned" | "to_owned" => recv,
            "len" => {
                let mut r = Interval::range(0.0, U64_MAX_F);
                r.int = true;
                r
            }
            "signum" => Interval {
                lo: -1.0,
                hi: 1.0,
                nan: recv.nan,
                int: recv.int,
            },
            "saturating_sub" => {
                let mut r = recv.sub(&a0).max_of(&Interval::constant(0.0));
                r.int = true;
                r.nan = false;
                r
            }
            "saturating_add" => {
                let mut r = recv.add(&a0).min_of(&Interval::constant(U64_MAX_F));
                r.int = true;
                r.nan = false;
                r
            }
            "is_nan" | "is_finite" | "is_infinite" | "is_sign_positive" | "is_sign_negative"
            | "is_empty" | "contains" => {
                let mut b = Interval::range(0.0, 1.0);
                b.int = true;
                b
            }
            _ => Interval::TOP,
        }
    }

    /// Reassembles a (possibly multi-token) numeric literal.
    fn parse_number(&self, pos: usize, end: usize) -> (Interval, usize) {
        let mut text = self.toks[pos].text.clone();
        let mut p = pos + 1;
        // `1.5` tokenizes as `1` `.` `5`; `1.0e-3` as `1` `.` `0e` `-` `3`.
        if p + 1 < end
            && self.toks[p].text == "."
            && self.toks[p + 1]
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        {
            text.push('.');
            text.push_str(&self.toks[p + 1].text);
            p += 2;
        }
        if (text.ends_with('e') || text.ends_with('E'))
            && p + 1 < end
            && matches!(self.toks[p].text.as_str(), "+" | "-")
            && self.toks[p + 1]
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        {
            text.push_str(&self.toks[p].text);
            text.push_str(&self.toks[p + 1].text);
            p += 2;
        }
        (literal_interval(&text), p)
    }

    // -- checks (L13/L14) --------------------------------------------------

    /// The display token for an operand range: its identifier if it is
    /// one, else a rendered snippet.
    fn range_token(&self, mut lo: usize, mut hi: usize) -> String {
        while hi > lo + 2
            && self.toks[lo].text == "("
            && matching_close(self.toks, lo, hi) == hi - 1
        {
            lo += 1;
            hi -= 1;
        }
        if hi == lo + 1 && is_ident(&self.toks[lo].text) {
            return self.toks[lo].text.clone();
        }
        render_range(self.toks, lo, hi, 6)
    }

    fn deps_in_range(&self, env: &Env, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in lo..hi.min(self.toks.len()) {
            let t = &self.toks[k].text;
            if !is_ident(t) || crate::model::is_reserved_word(t) {
                continue;
            }
            if k > 0 && self.toks[k - 1].text == "." {
                // Field/method: contribute the composite name if tracked.
                if let Some(prev) = self.toks.get(k.wrapping_sub(2)) {
                    let composite = format!("{}.{}", prev.text, t);
                    if (env.contains_key(&composite) || self.defs.contains_key(&composite))
                        && !out.contains(&composite)
                    {
                        out.push(composite);
                    }
                }
                continue;
            }
            if self.toks.get(k + 1).map(|t| t.text.as_str()) == Some("(") {
                continue; // call
            }
            if (env.contains_key(t) || self.defs.contains_key(t)) && !out.contains(t) {
                out.push(t.clone());
            }
        }
        out
    }

    /// L13 (division/modulo): a divisor proven nonzero suppresses L5's
    /// syntactic finding; a divisor with knowledge that still straddles
    /// zero is a proven hazard. TOP divisors stay with L5.
    fn check_div(
        &mut self,
        env: &Env,
        line: usize,
        _numer: &Interval,
        b: &Interval,
        rhs_from: usize,
        rhs_to: usize,
    ) {
        if self.mute > 0 || !self.report || b.is_bottom() {
            return;
        }
        let token = self.range_token(rhs_from, rhs_to);
        if b.excludes_zero() {
            self.resolved_divs.insert((line, token));
            return;
        }
        if b.has_knowledge() && !is_bare_type_range(b) && (b.contains_zero() || b.nan) {
            self.resolved_divs.insert((line, token.clone()));
            let seeds = self.deps_in_range(env, rhs_from, rhs_to);
            let msg = format!(
                "divisor `{}` has interval {} which contains zero{} — guard or clamp it before dividing",
                token,
                b.render(),
                if b.nan { " (and may be NaN)" } else { "" }
            );
            self.emit("L13", line, &token, msg, &seeds, env);
        }
    }

    /// L13 (`sqrt`): the operand may be proven negative.
    fn check_sqrt(&mut self, env: &Env, line: usize, recv: &Interval, lo: usize, hi: usize) {
        if recv.is_bottom() {
            return;
        }
        let may_neg = recv.lo.is_finite() && recv.lo < 0.0;
        let all_neg = recv.hi < 0.0;
        if may_neg || all_neg {
            let token = self.range_token(lo, hi);
            let seeds = self.deps_in_range(env, lo, hi);
            let msg = format!(
                "`sqrt` operand `{}` has interval {} which {} zero — the result {} NaN",
                token,
                recv.render(),
                if all_neg {
                    "lies entirely below"
                } else {
                    "extends below"
                },
                if all_neg { "is always" } else { "can be" },
            );
            self.emit("L13", line, &token, msg, &seeds, env);
        }
    }

    /// L13 (`ln`/`log2`/`log10`): the operand may be proven nonpositive.
    fn check_ln(
        &mut self,
        env: &Env,
        line: usize,
        recv: &Interval,
        method: &str,
        lo: usize,
        hi: usize,
    ) {
        if recv.is_bottom() {
            return;
        }
        let may_bad = recv.lo.is_finite() && recv.lo <= 0.0;
        let all_bad = recv.hi.is_finite() && recv.hi <= 0.0;
        if may_bad || all_bad {
            let token = self.range_token(lo, hi);
            let seeds = self.deps_in_range(env, lo, hi);
            let msg = format!(
                "`{}` operand `{}` has interval {} which {} nonpositive values — the result {} -inf/NaN",
                method,
                token,
                recv.render(),
                if all_bad { "contains only" } else { "reaches" },
                if all_bad { "is always" } else { "can be" },
            );
            self.emit("L13", line, &token, msg, &seeds, env);
        }
    }

    /// L14 (`f64_to_usize_saturating`): the audited helper saturates, but
    /// a value *proven* to leave `[0, 2^53]` means the saturation (or the
    /// integer-precision loss) actually happens.
    fn check_sat_cast(&mut self, env: &Env, line: usize, x: &Interval, lo: usize, hi: usize) {
        if x.is_bottom() || !x.has_knowledge() {
            return;
        }
        let bad_nan = x.nan;
        let bad_lo = x.lo.is_finite() && x.lo < 0.0;
        let bad_hi = x.hi > F64_EXACT_INT_MAX;
        if bad_nan || bad_lo || bad_hi {
            let token = self.range_token(lo, hi);
            let seeds = self.deps_in_range(env, lo, hi);
            let mut reasons = Vec::new();
            if bad_nan {
                reasons.push("may be NaN (clamps to 0)");
            }
            if bad_lo {
                reasons.push("may be negative (clamps to 0)");
            }
            if bad_hi {
                reasons.push("exceeds 2^53 (integer precision loss)");
            }
            let msg = format!(
                "`f64_to_usize_saturating({})` receives interval {}: {} — the saturation this helper exists to paper over is reachable here",
                token,
                x.render(),
                reasons.join("; ")
            );
            self.emit("L14", line, &token, msg, &seeds, env);
        }
    }

    /// L14 (`as` to an integer type): the source interval must be proven
    /// finite, NaN-free, and inside the target range.
    #[allow(clippy::too_many_arguments)]
    fn check_int_cast(
        &mut self,
        env: &Env,
        line: usize,
        v: &Interval,
        ty: &str,
        tr: &Interval,
        expr_lo: usize,
        expr_hi: usize,
    ) {
        if v.is_bottom() || !v.has_knowledge() {
            return;
        }
        // NaN casts to 0, which Rust defines; only flag it when 0 lies
        // outside the computed interval (a genuine discontinuity).
        let bad_nan = v.nan && !v.int && !v.contains(0.0);
        let below = v.lo < tr.lo;
        let above = v.hi > tr.hi;
        if bad_nan || below || above {
            let token = self.range_token(expr_lo, expr_hi);
            let seeds = self.deps_in_range(env, expr_lo, expr_hi);
            let mut reasons = Vec::new();
            if bad_nan {
                reasons.push("may be NaN (casts to 0)".to_string());
            }
            if below {
                reasons.push(format!("extends below {}::MIN (saturates)", ty));
            }
            if above {
                reasons.push(format!("extends above {}::MAX (saturates)", ty));
            }
            let msg = format!(
                "cast `{} as {}` from interval {}: {}",
                token,
                ty,
                v.render(),
                reasons.join("; ")
            );
            self.emit("L14", line, &token, msg, &seeds, env);
        }
    }

    /// L14 (counter arithmetic): integer `+`/`-`/`*` on *domain-bounded*
    /// operands whose result interval escapes the machine range. Operands
    /// whose only bound is the type range are exempt — the rule proves
    /// overflow-freedom *within declared domains*, it does not re-lint
    /// every unannotated `x + 1`.
    #[allow(clippy::too_many_arguments)]
    fn check_overflow(
        &mut self,
        env: &Env,
        line: usize,
        a: &Interval,
        b: &Interval,
        r: &Interval,
        rhs_from: usize,
        rhs_to: usize,
        op: &str,
    ) {
        if !(a.int && b.int) || r.is_bottom() {
            return;
        }
        let bounded = |iv: &Interval| iv.hi.is_finite() && iv.hi < U64_MAX_F && iv.lo.is_finite();
        if !(bounded(a) && bounded(b)) {
            return;
        }
        let over = r.hi.is_finite() && r.hi > U64_MAX_F;
        let under_i64 = r.lo.is_finite() && r.lo < -I64_MAX_F;
        let under_zero = op == "-" && a.lo >= 0.0 && r.lo < 0.0;
        if over || under_i64 || under_zero {
            let token = self.range_token(rhs_from, rhs_to);
            let seeds = self.deps_in_range(env, rhs_from, rhs_to);
            let what = if over {
                "may overflow the 64-bit range"
            } else if under_i64 {
                "may underflow the 64-bit range"
            } else {
                "may underflow below zero (panics in debug, wraps in release)"
            };
            let msg = format!(
                "integer `{}` with operand intervals {} {} {} has result interval {} which {}",
                op,
                a.render(),
                op,
                b.render(),
                r.render(),
                what
            );
            self.emit("L14", line, &token, msg, &seeds, env);
        }
    }
}

// ---------------------------------------------------------------------------
// Token-walking helpers (mirrors of dataflow.rs's private utilities).
// ---------------------------------------------------------------------------

fn is_ident(t: &str) -> bool {
    let mut chars = t.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Index of the matching close bracket for the open bracket at `open`;
/// clamps to `hi - 1` when unbalanced.
fn matching_close(toks: &[Tok], open: usize, hi: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(open) {
        if t.text == o {
            depth += 1;
        } else if t.text == c {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    hi.saturating_sub(1)
}

/// Matching `>` for a `<` at `open` (turbofish); unbalanced clamps.
fn matching_close_angle(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(open) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    hi.saturating_sub(1)
}

/// First `;` at depth 0 in `[from, hi)` (index of the `;`), else `hi`.
fn stmt_end_abs(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(from) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return k,
            _ => {}
        }
    }
    hi
}

/// First `,` at depth 0 in `[from, hi)`, if any.
fn top_level_comma(toks: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(from) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// First `{` at depth 0 in `[from, hi)` — a block opener after a
/// condition / loop header.
fn find_block_open(toks: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(from) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// Renders a token range for messages (capped, with smart spacing).
fn render_range(toks: &[Tok], lo: usize, hi: usize, max: usize) -> String {
    let mut out = String::new();
    let upper = hi.min(toks.len()).min(lo + max);
    for tok in toks.iter().take(upper).skip(lo) {
        let t = &tok.text;
        let no_space = t == "."
            || t == ","
            || t == "("
            || t == ")"
            || t == ";"
            || t == "?"
            || t == ":"
            || out.ends_with('.')
            || out.ends_with('(')
            || out.ends_with(':')
            || out.is_empty()
            || (is_ident_last(&out) && t == "(");
        if !no_space {
            out.push(' ');
        }
        out.push_str(t);
    }
    if hi.min(toks.len()) > upper {
        out.push('…');
    }
    out
}

fn is_ident_last(s: &str) -> bool {
    s.chars()
        .last()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn name_if_bindable(name: &str) -> Option<String> {
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}

fn negate_cmp(op: &str) -> &'static str {
    match op {
        "<" => ">=",
        "<=" => ">",
        ">" => "<=",
        ">=" => "<",
        "==" => "!=",
        _ => "==",
    }
}

fn flip_cmp(op: &str) -> &'static str {
    match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        "==" => "==",
        _ => "!=",
    }
}

/// Known numeric constants reachable through a `::` path.
fn path_constant(segs: &[String]) -> Option<Interval> {
    let last = segs.last()?.as_str();
    let owner = segs.get(segs.len().checked_sub(2)?)?.as_str();
    let int_const = |v: f64| {
        let mut iv = Interval::range(v, v);
        iv.int = true;
        Some(iv)
    };
    match (owner, last) {
        ("f64" | "f32", "INFINITY") => Some(Interval::range(f64::INFINITY, f64::INFINITY)),
        ("f64" | "f32", "NEG_INFINITY") => {
            Some(Interval::range(f64::NEG_INFINITY, f64::NEG_INFINITY))
        }
        ("f64" | "f32", "NAN") => Some(Interval::constant(f64::NAN)),
        ("f64", "MAX") => Some(Interval::constant(f64::MAX)),
        ("f64", "MIN") => Some(Interval::constant(f64::MIN)),
        ("f64", "MIN_POSITIVE") => Some(Interval::constant(f64::MIN_POSITIVE)),
        ("f64", "EPSILON") => Some(Interval::constant(f64::EPSILON)),
        ("usize" | "u64", "MAX") => int_const(U64_MAX_F),
        ("u32", "MAX") => int_const(4294967295.0),
        ("u16", "MAX") => int_const(65535.0),
        ("u8", "MAX") => int_const(255.0),
        ("i64" | "isize", "MAX") => int_const(I64_MAX_F),
        ("i64" | "isize", "MIN") => int_const(-I64_MAX_F),
        ("i32", "MAX") => int_const(2147483647.0),
        ("i32", "MIN") => int_const(-2147483648.0),
        (_, "MIN") | (_, "MAX") if owner.starts_with('u') || owner.starts_with('i') => None,
        ("consts", "PI") => Some(Interval::constant(std::f64::consts::PI)),
        ("consts", "E") => Some(Interval::constant(std::f64::consts::E)),
        ("consts", "LN_2") => Some(Interval::constant(std::f64::consts::LN_2)),
        ("consts", "LN_10") => Some(Interval::constant(std::f64::consts::LN_10)),
        ("consts", "SQRT_2") => Some(Interval::constant(std::f64::consts::SQRT_2)),
        _ => None,
    }
}

/// Parses a reassembled literal into an interval. Values whose integer
/// part exceeds 2^53 are widened one ulp outward (the f64 the compiler
/// produces may not be the written value).
fn literal_interval(text: &str) -> Interval {
    let mut s: String = text.chars().filter(|&c| c != '_').collect();
    let mut forced_float = false;
    for suf in [
        "usize", "isize", "f64", "f32", "u64", "u32", "u16", "i64", "i32", "i16", "u8", "i8",
    ] {
        if s.len() > suf.len() && s.ends_with(suf) {
            // Suffix must not bite into a hex literal's digits.
            let head = &s[..s.len() - suf.len()];
            let hexish = head.starts_with("0x") || head.starts_with("0X");
            if !hexish || suf.starts_with('u') || suf.starts_with('i') {
                forced_float = suf.starts_with('f');
                s = head.to_string();
                break;
            }
        }
    }
    let radix = if s.starts_with("0x") || s.starts_with("0X") {
        Some(16)
    } else if s.starts_with("0o") || s.starts_with("0O") {
        Some(8)
    } else if s.starts_with("0b") || s.starts_with("0B") {
        Some(2)
    } else {
        None
    };
    let (v, is_int) = if let Some(radix) = radix {
        match u128::from_str_radix(&s[2..], radix) {
            Ok(n) => (n as f64, true),
            Err(_) => return Interval::TOP,
        }
    } else {
        match s.parse::<f64>() {
            Ok(v) => (
                v,
                !forced_float && !s.contains('.') && !s.contains('e') && !s.contains('E'),
            ),
            Err(_) => return Interval::TOP,
        }
    };
    let mut iv = if is_int && v.abs() > F64_EXACT_INT_MAX {
        Interval::range(next_down(v), next_up(v))
    } else {
        Interval::constant(v)
    };
    if is_int {
        iv.int = true;
    }
    iv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> AbsintOutcome {
        let model = Model::build(vec![(
            "test.rs".to_string(),
            "fixture".to_string(),
            crate::prep::prepare(src),
        )]);
        interval_analysis(&model, &AbsintConfig::default())
    }

    fn summary(out: &AbsintOutcome, name: &str) -> Interval {
        *out.summaries
            .iter()
            .find(|(k, _)| k.ends_with(name))
            .map(|(_, v)| v)
            .unwrap_or(&Interval::TOP)
    }

    #[test]
    fn constant_body_summarizes_exactly() {
        let out = analyze("fn f() -> f64 { 1.5 }\n");
        let s = summary(&out, "::f");
        assert_eq!((s.lo, s.hi, s.nan), (1.5, 1.5, false));
    }

    #[test]
    fn branch_refinement_and_join() {
        let out = analyze("fn f(x: f64) -> f64 { if x > 0.0 { x } else { 0.0 } }\n");
        let s = summary(&out, "::f");
        assert_eq!(s.lo, 0.0);
        assert_eq!(s.hi, f64::INFINITY);
        assert!(
            !s.nan,
            "taken comparison clears NaN; else-arm is a constant"
        );
    }

    #[test]
    fn guarded_divisor_is_resolved_not_reported() {
        let out = analyze("fn f(x: f64) -> f64 { let d = x.max(1.0); 1.0 / d }\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(
            out.resolved_divs.iter().any(|(_, _, t)| t == "d"),
            "max(1.0) proves the divisor nonzero: {:?}",
            out.resolved_divs
        );
    }

    #[test]
    fn abs_divisor_still_contains_zero() {
        let out = analyze("fn g(eps: f64) -> f64 { let d = eps.abs(); 1.0 / d }\n");
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].code, "L13");
        assert_eq!(out.findings[0].token, "d");
        assert!(
            out.findings[0].chain.iter().any(|c| c.contains("d = ")),
            "chain should carry the derivation: {:?}",
            out.findings[0].chain
        );
    }

    #[test]
    fn assert_refines_integer_divisor() {
        let out = analyze("fn f(n: usize) -> f64 { assert!(n > 0); 1.0 / (n as f64) }\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn negative_reaching_cast_is_l14() {
        let out = analyze(
            "fn h(x: f64) -> usize { let y = x.clamp(-5.0, 10.0); y as usize }\n\
             fn ok(x: f64) -> usize { let y = x.clamp(0.0, 10.0); y as usize }\n",
        );
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].code, "L14");
        assert_eq!(out.findings[0].token, "y");
    }

    #[test]
    fn loop_widens_then_exits() {
        let out = analyze("fn f() -> f64 { let mut s = 0.0; for i in 0..10 { s = s + 1.0; } s }\n");
        let s = summary(&out, "::f");
        assert_eq!(s.lo, 0.0);
        assert!(s.hi >= 10.0);
        assert!(!s.nan);
    }

    #[test]
    fn while_condition_bounds_the_counter() {
        let out = analyze(
            "fn f(n: usize) -> usize { let mut i = 0usize; while i < n { i = i + 1; } i }\n",
        );
        let s = summary(&out, "::f");
        assert_eq!(s.lo, 0.0);
        assert!(s.int);
    }

    #[test]
    fn fn_contract_violation_is_l15() {
        let out = analyze("pub fn project_to_budget(x: f64, budget: f64) -> f64 { x }\n");
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].code, "L15");
        assert!(out.findings[0].message.contains("project_to_budget"));
    }

    #[test]
    fn fn_contract_satisfied_by_clamp() {
        let out = analyze(
            "pub fn project_to_budget(x: f64, budget: f64) -> f64 { x.clamp(0.0, budget) }\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn binding_contract_checks_struct_literal_fields() {
        let cfg = AbsintConfig {
            contracts: vec![
                Contract::new("Post::make::var", Interval::range(0.0, f64::INFINITY))
                    .unwrap_or_else(|e| panic!("{e}")),
            ],
            ..AbsintConfig::default()
        };
        let src = "struct Post { var: f64 }\n\
                   impl Post { fn make(x: f64) -> Post { Post { var: x } } }\n\
                   impl Post { fn make_ok(x: f64) -> Post { Post { var: x.max(0.0) } } }\n";
        let model = Model::build(vec![(
            "test.rs".to_string(),
            "fixture".to_string(),
            crate::prep::prepare(src),
        )]);
        let out = interval_analysis(&model, &cfg);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].code, "L15");
        assert_eq!(out.findings[0].token, "var");
    }

    #[test]
    fn callee_summary_feeds_caller() {
        let out = analyze(
            "fn one() -> f64 { 1.0 }\n\
             fn f() -> f64 { let d = one(); 2.0 / d }\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(out.resolved_divs.iter().any(|(_, _, t)| t == "d"));
    }

    #[test]
    fn domain_seeding_applies_by_suffix() {
        let out = analyze("fn f(max_slots: usize) -> usize { max_slots }\n");
        let s = summary(&out, "::f");
        assert_eq!((s.lo, s.hi), (0.0, 4096.0));
    }

    #[test]
    fn match_havocs_assigned_names() {
        let out = analyze(
            "fn f(k: usize) -> f64 { let mut x = 1.0; match k { 0 => { x = -3.0; } _ => {} } x }\n",
        );
        let s = summary(&out, "::f");
        assert!(s.is_top() || s.lo == f64::NEG_INFINITY, "{}", s.render());
    }
}
