//! L16/L17/L19: the static hot-path cost model.
//!
//! Theorem 1's regret bound silently assumes the controller's per-slot
//! work is negligible next to the slot length. These passes make that
//! assumption checkable: every function reachable (via the L5 call
//! graph) from a per-slot root — `FluidSim::run_slot`, `DesSim::run`,
//! `*::decide`, `MetricSanitizer::sanitize`, the journal append/encode
//! path — is *hot*, and hot code must
//!
//! * **L16** not allocate (`Vec::new`/`with_capacity`, `vec!`, `clone`,
//!   `collect`, `format!`, `to_string`/`to_vec`/`to_owned`, `Box::new`,
//!   growth `push` onto a fresh vector) unless allowlisted — findings
//!   carry the full root→callee chain;
//! * **L17** only loop with a derivable bound: `for … in` iterates a
//!   finite collection, counter `while` loops with a monotone update are
//!   interval-boundable (the L13 engine's for-range rule), `while let`
//!   over `.next()`/`.pop*()` drains a finite structure. Anything else
//!   (bare `loop`, condition-polling `while`, retry loops) needs a
//!   declared `[bounds]` measure in `lint.toml` or is a finding;
//! * **L19** keep syntactic loop-nesting depth within the per-function
//!   `[complexity]` budget (default 2) — nested loops over
//!   operator/task-sized collections are how per-slot work goes
//!   superlinear.
//!
//! The same scan also produces the machine-readable per-function
//! [`CostReport`] (`--cost-report`): raw allocation-site and loop-depth
//! counts *before* the allowlist, FNV-fingerprinted and ratcheted
//! against `cost-baseline.json` exactly like `lint-baseline.json` — the
//! allowlist can justify debt, but the ratchet stops it growing.

use crate::model::{Model, Tok};
use crate::taint::Pattern;
use crate::Finding;
use std::collections::{BTreeMap, VecDeque};

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// Configuration for the cost passes: `[cost]`, `[bounds]`, and
/// `[complexity]` in `lint.toml`.
#[derive(Clone, Debug)]
pub struct CostConfig {
    /// Per-slot entry points; everything reachable from them is hot.
    pub hot_roots: Vec<Pattern>,
    /// Declared loop-bound measures: a function matching the pattern has
    /// a human-proved termination measure (the string documents it) and
    /// is exempt from L17.
    pub bounds: Vec<(Pattern, String)>,
    /// Loop-nesting budget for hot functions without an override.
    pub default_budget: usize,
    /// Per-function budget overrides (first match wins).
    pub budgets: Vec<(Pattern, usize)>,
}

fn pats(texts: &[&str]) -> Vec<Pattern> {
    texts
        .iter()
        .filter_map(|t| Pattern::parse(t).ok())
        .collect()
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            hot_roots: pats(&[
                "FluidSim::run_slot",
                "DesSim::run",
                "*::decide",
                "MetricSanitizer::sanitize",
                "DecisionJournal::append",
            ]),
            bounds: Vec::new(),
            default_budget: 2,
            budgets: Vec::new(),
        }
    }
}

impl CostConfig {
    /// Applies one `[cost]` key from `lint.toml`.
    pub fn set_key(&mut self, key: &str, values: &[String]) -> Result<(), String> {
        match key {
            "hot_roots" => {
                self.hot_roots = crate::taint::parse_patterns(values)?;
                Ok(())
            }
            other => Err(format!("[cost] key `{other}` is not `hot_roots`")),
        }
    }

    /// Adds one `[bounds]` entry (`"Type::fn" = "measure"`).
    pub fn add_bound(&mut self, key: &str, measure: &str) -> Result<(), String> {
        if measure.trim().is_empty() {
            return Err(format!("[bounds] `{key}` needs a non-empty measure"));
        }
        let p = Pattern::parse(key)?;
        self.bounds.push((p, measure.to_string()));
        Ok(())
    }

    /// Adds one `[complexity]` entry (`default = 2` or `"Type::fn" = 3`).
    pub fn add_budget(&mut self, key: &str, value: &str) -> Result<(), String> {
        let n: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("[complexity] `{key}` must be a small integer"))?;
        if n == 0 {
            return Err(format!("[complexity] `{key}` must be >= 1"));
        }
        if key == "default" {
            self.default_budget = n;
        } else {
            self.budgets.push((Pattern::parse(key)?, n));
        }
        Ok(())
    }

    fn budget_for(&self, qualified: &str) -> usize {
        for (p, n) in &self.budgets {
            if p.matches_qualified(qualified) {
                return *n;
            }
        }
        self.default_budget
    }

    fn bound_declared(&self, qualified: &str) -> Option<&str> {
        self.bounds
            .iter()
            .find(|(p, _)| p.matches_qualified(qualified))
            .map(|(_, m)| m.as_str())
    }
}

// ---------------------------------------------------------------------------
// Hot-path reachability (the L5 BFS, seeded from the per-slot roots).
// ---------------------------------------------------------------------------

struct HotSet {
    hot: Vec<bool>,
    parent: Vec<Option<usize>>,
}

fn hot_reachability(model: &Model, roots: &[Pattern]) -> HotSet {
    let n = model.items.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, item) in model.items.iter().enumerate() {
        for call in model.calls_of(item) {
            for cand in model.resolve(&call) {
                if cand != i && !adj[i].contains(&cand) {
                    adj[i].push(cand);
                }
            }
        }
    }
    let mut hot = vec![false; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, item) in model.items.iter().enumerate() {
        let q = item.qualified();
        if roots.iter().any(|p| p.matches_qualified(&q)) {
            hot[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !hot[v] {
                hot[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    HotSet { hot, parent }
}

/// Root → … → item chain of qualified names.
fn chain_to(model: &Model, hot: &HotSet, item_idx: usize) -> Vec<String> {
    let mut rev = vec![item_idx];
    let mut cur = item_idx;
    while let Some(p) = hot.parent[cur] {
        rev.push(p);
        cur = p;
    }
    rev.iter()
        .rev()
        .map(|&i| model.items[i].qualified())
        .collect()
}

// ---------------------------------------------------------------------------
// L16: allocation sites in hot bodies.
// ---------------------------------------------------------------------------

/// Types whose `::new`/`::with_capacity`/`::from` construct heap storage.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "BTreeMap", "BTreeSet", "VecDeque", "HashMap", "HashSet", "Rc", "Arc",
];

/// Method calls that allocate a fresh owned value.
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_string", "to_vec", "to_owned"];

/// Allocating macros (`name !`).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

struct AllocSite {
    line: usize,
    token: String,
}

fn alloc_sites(toks: &[Tok], start: usize, end: usize) -> Vec<AllocSite> {
    let end = end.min(toks.len());
    let mut sites = Vec::new();
    // Vectors let-bound from a growable constructor in this body: a
    // `push` onto them is growth (re-allocation), not a pre-sized write.
    let mut grow_vars: Vec<String> = Vec::new();
    for j in start..end {
        if toks[j].text != "let" {
            continue;
        }
        let mut k = j + 1;
        if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
            k += 1;
        }
        let Some(name) = toks.get(k) else { continue };
        if toks.get(k + 1).map(|t| t.text.as_str()) != Some("=") {
            continue;
        }
        let a = toks.get(k + 2).map(|t| t.text.as_str());
        let b = toks.get(k + 3).map(|t| t.text.as_str());
        // `let x = Vec::new()` / `let x = vec![...]`
        let growable = (a == Some("Vec") && b == Some(":")) || (a == Some("vec") && b == Some("!"));
        if growable {
            grow_vars.push(name.text.clone());
        }
    }

    for j in start..end {
        let w = toks[j].text.as_str();
        let next = |o: usize| toks.get(j + o).map(|t| t.text.as_str());
        let prev = if j > start {
            Some(toks[j - 1].text.as_str())
        } else {
            None
        };
        // `Vec::new(` / `String::with_capacity(` / `String::from(` …
        if ALLOC_TYPES.contains(&w) && next(1) == Some(":") && next(2) == Some(":") {
            if let Some(m) = next(3) {
                let ctor = m == "new" || m == "with_capacity" || (m == "from" && w == "String");
                if ctor && next(4) == Some("(") {
                    sites.push(AllocSite {
                        line: toks[j].line,
                        token: format!("{w}::{m}"),
                    });
                }
            }
            continue;
        }
        // `vec!` / `format!`
        if ALLOC_MACROS.contains(&w) && next(1) == Some("!") {
            sites.push(AllocSite {
                line: toks[j].line,
                token: format!("{w}!"),
            });
            continue;
        }
        // `.clone()` / `.collect()` / `.to_string()` … (`clone_from`
        // reuses the destination's storage and is the fix idiom, so it
        // is a distinct token and never matches here.)
        if ALLOC_METHODS.contains(&w) && prev == Some(".") && next(1) == Some("(") {
            sites.push(AllocSite {
                line: toks[j].line,
                token: w.to_string(),
            });
            continue;
        }
        // Growth push: `x.push(` where `x` was bound from `Vec::new()` /
        // `vec![]` in this body.
        if w == "push" && prev == Some(".") && next(1) == Some("(") && j >= start + 2 {
            let recv = toks[j - 2].text.as_str();
            if grow_vars.iter().any(|v| v == recv) {
                sites.push(AllocSite {
                    line: toks[j].line,
                    token: format!("{recv}.push"),
                });
            }
        }
    }
    sites
}

// ---------------------------------------------------------------------------
// L17 + L19: loop bounds and nesting depth.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LoopInfo {
    line: usize,
    /// `for` / `while` / `while let` / `loop`.
    kind: &'static str,
    bounded: bool,
}

struct LoopScan {
    loops: Vec<LoopInfo>,
    max_depth: usize,
}

/// Whether a counter `while` is interval-boundable: the condition
/// compares a variable and the body steps that variable monotonically
/// (`i += …`, `i -= …`, `i = i + …`) — the same shape the L13 engine
/// bounds for `for`-ranges.
fn counter_bounded(cond: &[&str], body: &[&str]) -> bool {
    let is_ident = |w: &str| {
        w.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    };
    // Identifiers compared by `<` / `>` / `<=` / `>=` in the condition.
    let mut compared: Vec<&str> = Vec::new();
    for k in 0..cond.len() {
        let t = cond[k];
        if t != "<" && t != ">" {
            continue;
        }
        // Exclude `<<` / `>>` / `->` shapes.
        if k > 0 && matches!(cond[k - 1], "<" | ">" | "-") {
            continue;
        }
        if k + 1 < cond.len() && matches!(cond[k + 1], "<" | ">") {
            continue;
        }
        if k > 0 && is_ident(cond[k - 1]) {
            compared.push(cond[k - 1]);
        }
        // Right-hand side, skipping the `=` of `<=`/`>=`.
        let r = if cond.get(k + 1) == Some(&"=") {
            k + 2
        } else {
            k + 1
        };
        if r < cond.len() && is_ident(cond[r]) {
            compared.push(cond[r]);
        }
    }
    for v in compared {
        for k in 0..body.len() {
            if body[k] != v {
                continue;
            }
            let a = body.get(k + 1).copied();
            let b = body.get(k + 2).copied();
            // `v += e` / `v -= e` (tokens: v + = e) or `v = v + e`.
            if (a == Some("+") || a == Some("-")) && b == Some("=") {
                return true;
            }
            if a == Some("=") && b == Some(v) {
                let c = body.get(k + 3).copied();
                if c == Some("+") || c == Some("-") {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether a `while let` drains a finite structure: the scrutinee calls
/// `.next()`, `.pop()`, `.pop_front()`, or `.pop_back()`.
fn drain_bounded(cond: &[&str]) -> bool {
    cond.windows(2)
        .any(|w| w[0] == "." && matches!(w[1], "next" | "pop" | "pop_front" | "pop_back"))
}

fn scan_loops(toks: &[Tok], start: usize, end: usize) -> LoopScan {
    let end = end.min(toks.len());
    let mut loops = Vec::new();
    let mut depth = 0usize;
    // Brace depths at which loop bodies opened (len = current nesting).
    let mut loop_stack: Vec<usize> = Vec::new();
    let mut max_depth = 0usize;
    // A loop keyword seen, waiting for its body's `{`.
    let mut pending: Option<usize> = None; // index into `loops`
    let mut j = start;
    while j < end {
        let w = toks[j].text.as_str();
        match w {
            "{" => {
                depth += 1;
                if let Some(idx) = pending.take() {
                    loop_stack.push(depth);
                    max_depth = max_depth.max(loop_stack.len());
                    let _ = idx;
                }
            }
            "}" => {
                if loop_stack.last() == Some(&depth) {
                    loop_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            "loop" => {
                loops.push(LoopInfo {
                    line: toks[j].line,
                    kind: "loop",
                    bounded: false,
                });
                pending = Some(loops.len() - 1);
            }
            "for" => {
                // `for x in xs {` — a loop only if `in` shows up before
                // the body brace (excludes `impl T for U` which cannot
                // appear inside a body anyway, and `for<'a>` bounds).
                let mut k = j + 1;
                let mut is_loop = false;
                while k < end && k < j + 64 {
                    match toks[k].text.as_str() {
                        "in" => {
                            is_loop = true;
                            break;
                        }
                        "{" | ";" => break,
                        _ => k += 1,
                    }
                }
                if is_loop {
                    loops.push(LoopInfo {
                        line: toks[j].line,
                        kind: "for",
                        bounded: true,
                    });
                    pending = Some(loops.len() - 1);
                }
            }
            "while" => {
                let is_let = toks.get(j + 1).map(|t| t.text.as_str()) == Some("let");
                // Condition tokens up to the body `{` (closure braces in
                // conditions are rare enough to ignore).
                let mut k = j + 1;
                let mut cond: Vec<&str> = Vec::new();
                while k < end && toks[k].text != "{" {
                    cond.push(toks[k].text.as_str());
                    k += 1;
                }
                // Body tokens: from the `{` to its matching close.
                let mut body: Vec<&str> = Vec::new();
                if k < end {
                    let mut d = 0usize;
                    let mut b = k;
                    while b < end {
                        match toks[b].text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        body.push(toks[b].text.as_str());
                        b += 1;
                    }
                }
                let (kind, bounded) = if is_let {
                    ("while let", drain_bounded(&cond))
                } else {
                    ("while", counter_bounded(&cond, &body))
                };
                loops.push(LoopInfo {
                    line: toks[j].line,
                    kind,
                    bounded,
                });
                pending = Some(loops.len() - 1);
            }
            _ => {}
        }
        j += 1;
    }
    LoopScan { loops, max_depth }
}

// ---------------------------------------------------------------------------
// The per-function cost report (+ ratchet).
// ---------------------------------------------------------------------------

/// Raw (pre-allowlist) cost facts for one hot function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnCost {
    pub qualified: String,
    pub file: String,
    /// Allocation sites in the body.
    pub allocs: usize,
    /// Loops in the body.
    pub loops: usize,
    /// Maximum syntactic loop-nesting depth.
    pub depth: usize,
}

impl FnCost {
    /// Stable identity: FNV-1a over the qualified name and file (line
    /// numbers drift; names don't).
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [self.qualified.as_str(), self.file.as_str()] {
            for b in part.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// The machine-readable cost report: every hot function with its raw
/// allocation and loop counts, sorted by qualified name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    pub functions: Vec<FnCost>,
}

impl CostReport {
    pub fn total_allocs(&self) -> usize {
        self.functions.iter().map(|f| f.allocs).sum()
    }

    /// Renders as JSON (the `cost-baseline.json` format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!(
            "  \"total_allocs\": {},\n  \"functions\": [\n",
            self.total_allocs()
        ));
        for (i, f) in self.functions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fingerprint\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \
                 \"allocs\": {}, \"loops\": {}, \"depth\": {}}}{}\n",
                f.fingerprint(),
                crate::report::esc(&f.qualified),
                crate::report::esc(&f.file),
                f.allocs,
                f.loops,
                f.depth,
                if i + 1 < self.functions.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON written by [`CostReport::to_json`].
    pub fn from_json(text: &str) -> Result<CostReport, String> {
        let j = crate::report::parse_json(text)?;
        let arr = j
            .get("functions")
            .and_then(|f| f.as_arr())
            .ok_or("cost baseline: missing `functions` array")?;
        let mut functions = Vec::new();
        for entry in arr {
            let s = |k: &str| -> Result<String, String> {
                entry
                    .get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("cost baseline: entry missing `{k}`"))
            };
            let n = |k: &str| -> Result<usize, String> {
                entry
                    .get(k)
                    .and_then(|v| v.as_usize())
                    .ok_or_else(|| format!("cost baseline: entry missing `{k}`"))
            };
            functions.push(FnCost {
                qualified: s("fn")?,
                file: s("file")?,
                allocs: n("allocs")?,
                loops: n("loops")?,
                depth: n("depth")?,
            });
        }
        Ok(CostReport { functions })
    }
}

/// Ratchet verdict: the cost model only turns one way.
#[derive(Clone, Debug, Default)]
pub struct CostRatchetOutcome {
    /// Hot functions not in the baseline that carry allocations.
    pub new_fns: Vec<(String, usize)>,
    /// Functions whose allocation count grew: (fn, was, now).
    pub grew: Vec<(String, usize, usize)>,
    /// Functions whose loop depth grew: (fn, was, now).
    pub deeper: Vec<(String, usize, usize)>,
    pub baseline_allocs: usize,
    pub current_allocs: usize,
}

impl CostRatchetOutcome {
    pub fn ok(&self) -> bool {
        self.new_fns.is_empty()
            && self.grew.is_empty()
            && self.deeper.is_empty()
            && self.current_allocs <= self.baseline_allocs
    }

    pub fn can_tighten(&self) -> bool {
        self.ok() && self.current_allocs < self.baseline_allocs
    }
}

/// Compares a current report against the committed baseline.
pub fn cost_ratchet(baseline: &CostReport, current: &CostReport) -> CostRatchetOutcome {
    let by_fp: BTreeMap<String, &FnCost> = baseline
        .functions
        .iter()
        .map(|f| (f.fingerprint(), f))
        .collect();
    let mut out = CostRatchetOutcome {
        baseline_allocs: baseline.total_allocs(),
        current_allocs: current.total_allocs(),
        ..Default::default()
    };
    for f in &current.functions {
        match by_fp.get(&f.fingerprint()) {
            None => {
                if f.allocs > 0 {
                    out.new_fns.push((f.qualified.clone(), f.allocs));
                }
            }
            Some(b) => {
                if f.allocs > b.allocs {
                    out.grew.push((f.qualified.clone(), b.allocs, f.allocs));
                }
                if f.depth > b.depth {
                    out.deeper.push((f.qualified.clone(), b.depth, f.depth));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The combined pass.
// ---------------------------------------------------------------------------

/// Findings plus the raw per-function cost report.
pub struct CostOutcome {
    pub findings: Vec<Finding>,
    pub report: CostReport,
}

/// Runs L16/L17/L19 over every hot function in the model.
pub fn cost_analysis(model: &Model, cfg: &CostConfig) -> CostOutcome {
    let hot = hot_reachability(model, &cfg.hot_roots);
    let mut findings = Vec::new();
    let mut functions = Vec::new();
    // Dedup sites that several items resolve onto.
    let mut seen: BTreeMap<(usize, usize, &'static str, String), ()> = BTreeMap::new();

    for (i, item) in model.items.iter().enumerate() {
        if !hot.hot[i] {
            continue;
        }
        let Some((start, end)) = item.body else {
            continue;
        };
        let toks = &model.files[item.file_idx].tokens;
        let file = model.files[item.file_idx].label.clone();
        let qualified = item.qualified();
        let chain = chain_to(model, &hot, i);
        let root = chain.first().cloned().unwrap_or_default();
        let via = chain.join(" -> ");

        // L16: allocations.
        let sites = alloc_sites(toks, start, end);
        for site in &sites {
            let key = (item.file_idx, site.line, "L16", site.token.clone());
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, ());
            findings.push(Finding {
                file: file.clone(),
                line: site.line,
                code: "L16",
                token: site.token.clone(),
                message: format!(
                    "allocation `{}` in per-slot hot path: reachable from `{root}` via {via}; \
                     hoist into a reusable scratch buffer (`clear`+`extend`, `clone_from`) or \
                     allowlist with justification",
                    site.token
                ),
                chain: chain.clone(),
                fix: None,
            });
        }

        // L17 + L19: loops.
        let scan = scan_loops(toks, start, end);
        if cfg.bound_declared(&qualified).is_none() {
            for l in scan.loops.iter().filter(|l| !l.bounded) {
                let key = (item.file_idx, l.line, "L17", l.kind.to_string());
                if seen.contains_key(&key) {
                    continue;
                }
                seen.insert(key, ());
                findings.push(Finding {
                    file: file.clone(),
                    line: l.line,
                    code: "L17",
                    token: l.kind.to_string(),
                    message: format!(
                        "`{}` loop in per-slot hot path has no derivable bound (reachable from \
                         `{root}` via {via}); iterate a finite collection, use a counted loop, \
                         or declare a `[bounds]` measure for `{qualified}` in lint.toml",
                        l.kind
                    ),
                    chain: chain.clone(),
                    fix: None,
                });
            }
        }
        let budget = cfg.budget_for(&qualified);
        if scan.max_depth > budget {
            findings.push(Finding {
                file: file.clone(),
                line: item.line,
                code: "L19",
                token: format!("depth {}", scan.max_depth),
                message: format!(
                    "`{qualified}` nests loops {} deep in the per-slot hot path (budget {budget}, \
                     reachable from `{root}` via {via}); per-slot work this shape goes \
                     superlinear in operators×tasks — restructure, or raise the budget in \
                     `[complexity]` with justification",
                    scan.max_depth
                ),
                chain: chain.clone(),
                fix: None,
            });
        }

        functions.push(FnCost {
            qualified,
            file,
            allocs: sites.len(),
            loops: scan.loops.len(),
            depth: scan.max_depth,
        });
    }
    functions.sort_by(|a, b| a.qualified.cmp(&b.qualified).then(a.file.cmp(&b.file)));
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.code).cmp(&(b.file.clone(), b.line, b.code)));
    CostOutcome {
        findings,
        report: CostReport { functions },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{model::Model, prep};

    fn model_of(src: &str) -> Model {
        Model::build(vec![(
            "t.rs".to_string(),
            "fixture".to_string(),
            prep::prepare(src),
        )])
    }

    fn run(src: &str) -> CostOutcome {
        cost_analysis(&model_of(src), &CostConfig::default())
    }

    #[test]
    fn allocation_in_hot_callee_carries_chain() {
        let src = "pub struct C;\nimpl C {\n  pub fn decide(&self, xs: &[f64]) -> f64 { \
                   self.expand(xs).iter().sum() }\n  fn expand(&self, xs: &[f64]) -> Vec<f64> { \
                   xs.to_vec() }\n}\n";
        let out = run(src);
        let l16: Vec<_> = out.findings.iter().filter(|f| f.code == "L16").collect();
        assert_eq!(l16.len(), 1, "{:#?}", out.findings);
        assert_eq!(l16[0].token, "to_vec");
        assert!(l16[0].chain.len() == 2, "{:?}", l16[0].chain);
    }

    #[test]
    fn cold_allocation_is_ignored() {
        let src = "pub fn setup() -> Vec<f64> { Vec::new() }\n";
        let out = run(src);
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
        assert!(out.report.functions.is_empty());
    }

    #[test]
    fn unbounded_while_is_l17_but_counter_is_not() {
        let src = "pub struct C;\nimpl C {\n  pub fn decide(&self, n: usize) -> usize {\n    \
                   let mut i = 0;\n    let mut acc = 0;\n    while i < n { acc += i; i += 1; }\n    \
                   while acc > 0 { }\n    acc\n  }\n}\n";
        let out = run(src);
        let l17: Vec<_> = out.findings.iter().filter(|f| f.code == "L17").collect();
        assert_eq!(l17.len(), 1, "{:#?}", out.findings);
    }

    #[test]
    fn declared_bound_discharges_l17() {
        let src = "pub struct C;\nimpl C {\n  pub fn decide(&self) { loop { } }\n}\n";
        let mut cfg = CostConfig::default();
        cfg.add_bound("C::decide", "terminates on convergence check")
            .expect("bound parses");
        let out = cost_analysis(&model_of(src), &cfg);
        assert!(
            out.findings.iter().all(|f| f.code != "L17"),
            "{:#?}",
            out.findings
        );
    }

    #[test]
    fn nesting_over_budget_is_l19() {
        let src = "pub struct C;\nimpl C {\n  pub fn decide(&self, xs: &[f64]) -> f64 {\n    \
                   let mut s = 0.0;\n    for a in xs { for b in xs { for c in xs { \
                   s += a * b * c; } } }\n    s\n  }\n}\n";
        let out = run(src);
        let l19: Vec<_> = out.findings.iter().filter(|f| f.code == "L19").collect();
        assert_eq!(l19.len(), 1, "{:#?}", out.findings);
        assert_eq!(out.report.functions[0].depth, 3);
    }

    #[test]
    fn ratchet_flags_growth_and_new_debt() {
        let base = CostReport {
            functions: vec![FnCost {
                qualified: "fixture::C::decide".into(),
                file: "t.rs".into(),
                allocs: 1,
                loops: 0,
                depth: 0,
            }],
        };
        let same = cost_ratchet(&base, &base);
        assert!(same.ok());
        let mut grown = base.clone();
        grown.functions[0].allocs = 2;
        assert!(!cost_ratchet(&base, &grown).ok());
        let mut extra = base.clone();
        extra.functions.push(FnCost {
            qualified: "fixture::C::other".into(),
            file: "t.rs".into(),
            allocs: 1,
            loops: 0,
            depth: 0,
        });
        assert!(!cost_ratchet(&base, &extra).ok());
    }

    #[test]
    fn report_roundtrips_through_json() {
        let src = "pub struct C;\nimpl C {\n  pub fn decide(&self, xs: &[f64]) -> Vec<f64> { \
                   xs.to_vec() }\n}\n";
        let out = run(src);
        let back = CostReport::from_json(&out.report.to_json()).expect("roundtrip");
        assert_eq!(back, out.report);
        assert!(cost_ratchet(&back, &out.report).ok());
    }
}
