//! L18: checkpoint state-coverage proofs.
//!
//! PR 7's crash-safe runtime created a bug class the type system cannot
//! see: add a field to learner state, forget it in `export_state` /
//! `import_state` / the journal codec, and recovery silently resumes
//! from a state that is *almost* the one that crashed. This pass proves
//! field-by-field coverage statically:
//!
//! 1. Items are classified by name into **encode** direction
//!    (`encode*`, `export_state`, `snapshot`) and **decode** direction
//!    (`decode*`, `import_state`, `from_snapshot`) — decode markers are
//!    checked first so `from_snapshot` never misclassifies as encode.
//! 2. A struct is **checked** when its name appears in the signature or
//!    body of any codec item (it travels through a checkpoint), and its
//!    definition is a named-field struct in the model.
//! 3. Every field of a checked struct must appear as a token in at
//!    least one encode-direction body *and* one decode-direction body.
//!    Encoders access `s.field`, decoders construct `Struct { field }`
//!    or bind `let field = …`, so the field identifier survives even
//!    though string-literal JSON keys are blanked by `prep`.
//!
//! A missing direction is an L18 finding at the struct definition with
//! token `Struct.field` (allowlistable, but the right fix is almost
//! always to encode the field).

use crate::model::Model;
use crate::Finding;
use std::collections::BTreeSet;

/// Configuration for the coverage pass (`[coverage]` in `lint.toml`).
#[derive(Clone, Debug)]
pub struct CoverageConfig {
    /// Name substrings classifying an item as encode-direction.
    pub encode_markers: Vec<String>,
    /// Name substrings classifying an item as decode-direction
    /// (checked before encode markers).
    pub decode_markers: Vec<String>,
    /// Structs to check even if no codec item names them.
    pub extra_structs: Vec<String>,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            encode_markers: vec![
                "encode".to_string(),
                "export_state".to_string(),
                "snapshot".to_string(),
            ],
            decode_markers: vec![
                "decode".to_string(),
                "import_state".to_string(),
                "from_snapshot".to_string(),
            ],
            extra_structs: Vec::new(),
        }
    }
}

impl CoverageConfig {
    /// Applies one `[coverage]` key from `lint.toml`.
    pub fn set_key(&mut self, key: &str, values: &[String]) -> Result<(), String> {
        let vals = values.to_vec();
        match key {
            "encode_markers" => self.encode_markers = vals,
            "decode_markers" => self.decode_markers = vals,
            "extra_structs" => self.extra_structs = vals,
            other => {
                return Err(format!(
                    "[coverage] key `{other}` is not one of encode_markers/decode_markers/extra_structs"
                ))
            }
        }
        Ok(())
    }
}

/// A named-field struct definition found in the model.
struct StructDef {
    name: String,
    file_idx: usize,
    line: usize,
    fields: Vec<String>,
}

fn is_ident(w: &str) -> bool {
    w.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Extracts named-field struct definitions from a file's token stream.
/// Tuple structs, unit structs, and enums are skipped — field coverage
/// is only meaningful for named fields.
fn structs_in_file(model: &Model, file_idx: usize, out: &mut Vec<StructDef>) {
    let toks = &model.files[file_idx].tokens;
    let mut j = 0usize;
    while j < toks.len() {
        if toks[j].text != "struct" {
            j += 1;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else {
            break;
        };
        if !is_ident(&name_tok.text) {
            j += 1;
            continue;
        }
        // Scan to the body opener, skipping generics: `(` → tuple struct,
        // `;` → unit struct (both skipped), `{` → named fields.
        let mut k = j + 2;
        let mut angle = 0i32;
        let mut open = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" | ";" if angle <= 0 => break,
                "{" if angle <= 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            j = k.max(j + 1);
            continue;
        };
        // Fields: `name :` at brace depth 1 (excluding `::` paths), where
        // the previous meaningful token ends a field boundary.
        let mut fields = Vec::new();
        let mut depth = 0i32;
        let mut b = open;
        while b < toks.len() {
            let t = toks[b].text.as_str();
            match t {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ if depth == 1 && is_ident(t) => {
                    let colon = toks.get(b + 1).map(|x| x.text.as_str()) == Some(":");
                    let double = toks.get(b + 2).map(|x| x.text.as_str()) == Some(":");
                    let prev = toks.get(b.wrapping_sub(1)).map(|x| x.text.as_str());
                    let boundary = matches!(
                        prev,
                        Some("{") | Some(",") | Some("pub") | Some(")") | Some("]")
                    );
                    if colon && !double && boundary && t != "pub" {
                        fields.push(t.to_string());
                    }
                }
                _ => {}
            }
            b += 1;
        }
        if !fields.is_empty() {
            out.push(StructDef {
                name: name_tok.text.clone(),
                file_idx,
                line: name_tok.line,
                fields,
            });
        }
        j = b.max(j + 1);
    }
}

enum Direction {
    Encode,
    Decode,
}

fn classify(name: &str, cfg: &CoverageConfig) -> Option<Direction> {
    // Decode first: `from_snapshot` contains `snapshot` and must not
    // land on the encode side.
    if cfg.decode_markers.iter().any(|m| name.contains(m.as_str())) {
        return Some(Direction::Decode);
    }
    if cfg.encode_markers.iter().any(|m| name.contains(m.as_str())) {
        return Some(Direction::Encode);
    }
    None
}

/// Runs the L18 coverage proof over the model.
pub fn coverage_analysis(model: &Model, cfg: &CoverageConfig) -> Vec<Finding> {
    // Collect struct definitions.
    let mut defs: Vec<StructDef> = Vec::new();
    for file_idx in 0..model.files.len() {
        structs_in_file(model, file_idx, &mut defs);
    }

    // Classify codec items and collect the token sets of each side.
    let mut encode_tokens: BTreeSet<String> = BTreeSet::new();
    let mut decode_tokens: BTreeSet<String> = BTreeSet::new();
    let mut codec_mentions: BTreeSet<String> = BTreeSet::new();
    for item in &model.items {
        let Some(dir) = classify(&item.name, cfg) else {
            continue;
        };
        let Some((bstart, bend)) = item.body else {
            continue;
        };
        let toks = &model.files[item.file_idx].tokens;
        // Signature tokens (parameter list through the body opener, which
        // covers the return type) count toward "mentions": a codec item
        // returning `EstimatorSnapshot` checks that struct.
        let (sstart, _) = item.sig;
        for tok in toks.iter().take(bstart.min(toks.len())).skip(sstart) {
            if is_ident(&tok.text) {
                codec_mentions.insert(tok.text.clone());
            }
        }
        let side = match dir {
            Direction::Encode => &mut encode_tokens,
            Direction::Decode => &mut decode_tokens,
        };
        for tok in toks.iter().take(bend.min(toks.len())).skip(bstart) {
            let t = &tok.text;
            if is_ident(t) {
                side.insert(t.clone());
                codec_mentions.insert(t.clone());
            }
        }
    }

    // Checked structs: named by a codec item or force-listed.
    let mut findings = Vec::new();
    for def in &defs {
        let checked = codec_mentions.contains(def.name.as_str())
            || cfg.extra_structs.iter().any(|s| s == &def.name);
        if !checked {
            continue;
        }
        for field in &def.fields {
            let enc = encode_tokens.contains(field.as_str());
            let dec = decode_tokens.contains(field.as_str());
            if enc && dec {
                continue;
            }
            let missing = match (enc, dec) {
                (false, false) => "either direction",
                (false, true) => "the encode direction",
                (true, false) => "the decode direction",
                (true, true) => unreachable!(),
            };
            findings.push(Finding {
                file: model.files[def.file_idx].label.clone(),
                line: def.line,
                code: "L18",
                token: format!("{}.{}", def.name, field),
                message: format!(
                    "checkpoint-carried struct `{}` has field `{field}` not mentioned in \
                     {missing}: a crash/restore would silently resurrect it from defaults; \
                     thread it through both the encode and decode paths (or allowlist with \
                     a proof it is derived state)",
                    def.name
                ),
                chain: Vec::new(),
                fix: None,
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.file.clone(), a.line, a.token.clone()).cmp(&(b.file.clone(), b.line, b.token.clone()))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{model::Model, prep};

    fn run(src: &str) -> Vec<Finding> {
        let model = Model::build(vec![(
            "t.rs".to_string(),
            "fixture".to_string(),
            prep::prepare(src),
        )]);
        coverage_analysis(&model, &CoverageConfig::default())
    }

    #[test]
    fn forgotten_field_in_decode_is_caught() {
        let src = "#[derive(Default)]\npub struct Snap { pub a: f64, pub b: f64, pub c: f64 }\n\
                   pub fn encode_snap(s: &Snap) -> f64 { s.a + s.b + s.c }\n\
                   pub fn decode_snap(x: f64) -> Snap { let a = x; let b = x; \
                   Snap { a, b, ..Default::default() } }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].code, "L18");
        assert_eq!(f[0].token, "Snap.c");
        assert!(f[0].message.contains("decode direction"));
    }

    #[test]
    fn fully_covered_struct_is_clean() {
        let src = "pub struct Snap { pub a: f64, pub b: f64 }\n\
                   pub fn encode_snap(s: &Snap) -> f64 { s.a + s.b }\n\
                   pub fn decode_snap(x: f64) -> Snap { let a = x; let b = x; Snap { a, b } }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn structs_not_touching_codecs_are_ignored() {
        let src = "pub struct Unrelated { pub z: f64 }\n\
                   pub fn encode_other(x: f64) -> f64 { x }\n\
                   pub fn decode_other(x: f64) -> f64 { x }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tuple_structs_are_skipped() {
        let src = "pub struct Wrap(pub f64);\n\
                   pub fn encode_wrap(w: &Wrap) -> f64 { w.0 }\n\
                   pub fn decode_wrap(x: f64) -> Wrap { Wrap(x) }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn from_snapshot_classifies_as_decode() {
        // `from_snapshot` contains the `snapshot` encode marker as a
        // substring; decode-first classification must win, so a field
        // only mentioned there is still missing on the encode side.
        let src = "pub struct St { pub w: f64 }\n\
                   pub fn from_snapshot(x: f64) -> St { St { w: x } }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("encode direction"));
    }
}
