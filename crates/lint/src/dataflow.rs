//! Interprocedural taint and dataflow passes (L9–L12) over the
//! token-stream workspace model.
//!
//! The engine is a forward taint propagation over [`crate::model::Model`]:
//! per-function summaries ("does this function return a tainted value,
//! and through which call chain?") are computed to a fixpoint, then a
//! final intraprocedural pass reports every sink call whose argument (or
//! receiver) carries unsanitized taint, with the full source→sink chain.
//!
//! Approximations, stated once:
//!
//! * Call resolution is name-based and over-approximate (inherited from
//!   [`crate::model::Model::resolve`]); a taint edge may exist that the
//!   real program lacks. Over-taint is accepted — it surfaces as an
//!   allowlistable finding, never as a missed violation on the paths the
//!   model does see.
//! * A sanitizer call anywhere in a binding's right-hand side (or in a
//!   sink's argument list) clears taint for that expression — wrapping is
//!   not distinguished from adjacency.
//! * Function parameters start untainted: taint is proven at the call
//!   boundary (the harness must sanitize before passing data down), so a
//!   callee may trust its inputs. This is exactly the §7 clean-gating
//!   contract: the seam between raw simulation output and the learning
//!   stack is the *only* place sanitization may happen, and it must.
//! * Dynamic dispatch through fn pointers/closures is invisible, as in
//!   the L5 pass.

use std::collections::BTreeMap;

use crate::model::{CallRef, Model, Tok};
use crate::taint::{FlowConfig, Pattern, TaintSpec};
use crate::{Finding, SEEDISH};

/// Runs every flow pass (L9 metric taint, L10 seed provenance, L11
/// projection discipline, L12 discarded fallibility) over a built model.
pub fn flow_analysis(model: &Model, cfg: &FlowConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(taint_pass(model, &cfg.metric));
    findings.extend(taint_pass(model, &cfg.decision));
    findings.extend(provenance_pass(model, &cfg.rng_ctors));
    findings.extend(discard_pass(model));
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.code).cmp(&(b.file.clone(), b.line, b.code)));
    findings
}

// ---------------------------------------------------------------------------
// Shared call-site helpers.
// ---------------------------------------------------------------------------

/// Reads a call site at token `j` (mirrors `Model::calls_of`): an ident
/// followed by `(`, classified as method / qualified / free by the tokens
/// before it. `low` bounds the lookback (start of the enclosing range).
fn call_at(toks: &[Tok], j: usize, low: usize) -> Option<CallRef> {
    let w = &toks[j].text;
    if !w
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        return None;
    }
    if crate::model::is_reserved_word(w) {
        return None;
    }
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let prev = if j > low {
        Some(toks[j - 1].text.as_str())
    } else {
        None
    };
    if prev == Some(".") {
        return Some(CallRef {
            name: w.clone(),
            qualifier: None,
            is_method: true,
        });
    }
    if prev == Some(":") && j >= low + 3 && toks[j - 2].text == ":" {
        let q = &toks[j - 3].text;
        let qualifier = if q
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            Some(q.clone())
        } else {
            None
        };
        return Some(CallRef {
            name: w.clone(),
            qualifier,
            is_method: false,
        });
    }
    Some(CallRef {
        name: w.clone(),
        qualifier: None,
        is_method: false,
    })
}

/// Whether a call site matches any pattern. Qualified calls
/// (`Owner::fn(..)`) match textually — the written qualifier is
/// authoritative, and name-based resolution's all-candidates fallback
/// would conflate `Vec::new` with `Rng::new`. Method and free calls use
/// resolution (suffix match on each candidate's qualified path), falling
/// back to a textual match when the name resolves to nothing.
fn call_matches(model: &Model, call: &CallRef, pats: &[Pattern]) -> bool {
    if call.qualifier.is_some() {
        return pats.iter().any(|p| p.matches_call(call));
    }
    let resolved = model.resolve(call);
    if resolved.is_empty() {
        return pats.iter().any(|p| p.matches_call(call));
    }
    resolved.iter().any(|&i| {
        let q = model.items[i].qualified();
        pats.iter().any(|p| p.matches_qualified(&q))
    })
}

/// Display name for a matched source call: the qualified path of the
/// first resolved item that matches, else the textual call name.
fn source_display(model: &Model, call: &CallRef, pats: &[Pattern]) -> String {
    for &i in &model.resolve(call) {
        let q = model.items[i].qualified();
        if pats.iter().any(|p| p.matches_qualified(&q)) {
            return q;
        }
    }
    call.name.clone()
}

/// Scans forward from `from` to the first `;` at relative bracket depth 0
/// (parens/brackets/braces all tracked), returning its index (or `to`).
fn stmt_end(toks: &[Tok], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < to {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    to
}

/// Index of the `)` matching the `(` at `open` (or `to`).
fn close_paren(toks: &[Tok], open: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < to {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    to
}

// ---------------------------------------------------------------------------
// L9 / L11 — source → sanitizer → sink taint.
// ---------------------------------------------------------------------------

/// Taint carried by a local or a function summary: the call chain from
/// the originating source (qualified names, source first).
type Chain = Vec<String>;

/// Taint of a token slice under the current local map: `None` when a
/// sanitizer call appears anywhere in the slice; otherwise the chain of
/// the first source call, summary-tainted callee, or tainted local.
fn slice_taint(
    model: &Model,
    spec: &TaintSpec,
    summaries: &[Option<Chain>],
    tainted: &BTreeMap<String, Chain>,
    toks: &[Tok],
    from: usize,
    to: usize,
) -> Option<Chain> {
    let mut found: Option<Chain> = None;
    for j in from..to {
        if let Some(call) = call_at(toks, j, from) {
            if call_matches(model, &call, &spec.sanitizers) {
                return None;
            }
            if found.is_none() {
                if call_matches(model, &call, &spec.sources) {
                    found = Some(vec![source_display(model, &call, &spec.sources)]);
                } else {
                    for &c in &model.resolve(&call) {
                        if let Some(ch) = &summaries[c] {
                            found = Some(ch.clone());
                            break;
                        }
                    }
                }
            }
        } else if found.is_none() {
            let w = &toks[j].text;
            // Skip field names (`x.field`): the receiver ident carries
            // the taint, the field name may collide with a local.
            let is_field = j > from && toks[j - 1].text == ".";
            if !is_field {
                if let Some(ch) = tainted.get(w) {
                    found = Some(ch.clone());
                }
            }
        }
    }
    found
}

/// One intraprocedural pass over an item's body: tracks tainted locals
/// through `let` bindings and reassignments, checks every sink call, and
/// returns the taint of the returned value (for the summary fixpoint).
/// When `findings` is `Some`, sink violations are appended to it.
fn analyze_body(
    model: &Model,
    idx: usize,
    spec: &TaintSpec,
    summaries: &[Option<Chain>],
    mut findings: Option<&mut Vec<Finding>>,
) -> Option<Chain> {
    let item = &model.items[idx];
    let (start, end) = item.body?;
    let toks = &model.files[item.file_idx].tokens;
    let end = end.min(toks.len());
    let mut tainted: BTreeMap<String, Chain> = BTreeMap::new();
    let mut ret_taint: Option<Chain> = None;
    let mut brace = 0i32;
    let mut last_stmt = start;
    let mut j = start;
    while j < end {
        let t = toks[j].text.as_str();
        match t {
            "{" => brace += 1,
            "}" => brace -= 1,
            ";" if brace == 0 => last_stmt = j + 1,
            "let" => {
                let (names, rhs) = parse_let(toks, j, end);
                if let Some((rf, rt)) = rhs {
                    let taint = slice_taint(model, spec, summaries, &tainted, toks, rf, rt);
                    for n in names {
                        match &taint {
                            Some(ch) => {
                                tainted.insert(n, ch.clone());
                            }
                            None => {
                                tainted.remove(&n);
                            }
                        }
                    }
                }
            }
            "return" => {
                let s_end = stmt_end(toks, j + 1, end);
                if let Some(ch) = slice_taint(model, spec, summaries, &tainted, toks, j + 1, s_end)
                {
                    ret_taint = Some(ch);
                }
            }
            _ => {
                // Plain reassignment `name = expr;` recomputes the taint
                // of `name` (compound ops and `==`/`=>` excluded).
                if is_plain_assignment(toks, j, start) {
                    let s_end = stmt_end(toks, j + 2, end);
                    let taint = slice_taint(model, spec, summaries, &tainted, toks, j + 2, s_end);
                    match taint {
                        Some(ch) => {
                            tainted.insert(t.to_string(), ch);
                        }
                        None => {
                            tainted.remove(t);
                        }
                    }
                }
            }
        }
        // Sink check at every call site, independent of statement kind.
        if let Some(f) = findings.as_deref_mut() {
            if let Some(call) = call_at(toks, j, start) {
                if call_matches(model, &call, &spec.sinks) {
                    let args_to = close_paren(toks, j + 1, end);
                    let mut arg_taint =
                        slice_taint(model, spec, summaries, &tainted, toks, j + 2, args_to);
                    if arg_taint.is_none() && call.is_method && j >= start + 2 {
                        // `receiver.sink(..)` with a tainted receiver.
                        arg_taint = tainted.get(&toks[j - 2].text).cloned();
                    }
                    if let Some(origin) = arg_taint {
                        let sink = sink_display(model, &call, &spec.sinks);
                        let mut chain = origin.clone();
                        chain.push(item.qualified());
                        chain.push(sink.clone());
                        let via = chain.join(" -> ");
                        f.push(Finding {
                            file: model.files[item.file_idx].label.clone(),
                            line: toks[j].line,
                            code: spec.code,
                            token: call.name.clone(),
                            message: format!(
                                "{} reaches sink `{sink}` without passing through {} (flow: {via})",
                                spec.what, spec.fix
                            ),
                            chain,
                            fix: None,
                        });
                    }
                }
            }
        }
        j += 1;
    }
    // Tail expression (tokens after the last top-level `;`).
    if last_stmt < end {
        if let Some(ch) = slice_taint(model, spec, summaries, &tainted, toks, last_stmt, end) {
            ret_taint = Some(ch);
        }
    }
    ret_taint
}

/// Display name for a matched sink call (same policy as sources).
fn sink_display(model: &Model, call: &CallRef, pats: &[Pattern]) -> String {
    source_display(model, call, pats)
}

/// Parses a `let` statement at `j`: returns the bound lowercase ident
/// names and the `[from, to)` token range of the initializer, if any.
fn parse_let(toks: &[Tok], j: usize, end: usize) -> (Vec<String>, Option<(usize, usize)>) {
    let mut names = Vec::new();
    let mut k = j + 1;
    let mut depth = 0i32;
    // Pattern part: collect binder idents until `=` / `:` / `;` at depth 0.
    while k < end {
        let t = toks[k].text.as_str();
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" | ":" | ";" if depth <= 0 => break,
            "mut" | "ref" | "_" => {}
            w if w
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                && !crate::model::is_reserved_word(w) =>
            {
                names.push(w.to_string());
            }
            _ => {}
        }
        k += 1;
    }
    // Skip a type annotation to the `=` (or give up at `;`).
    if k < end && toks[k].text == ":" {
        let mut angle = 0i32;
        while k < end {
            match toks[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "=" if angle <= 0 => break,
                ";" if angle <= 0 => return (names, None),
                _ => {}
            }
            k += 1;
        }
    }
    if k >= end || toks[k].text != "=" {
        return (names, None);
    }
    let rhs_from = k + 1;
    let rhs_to = stmt_end(toks, rhs_from, end);
    (names, Some((rhs_from, rhs_to)))
}

/// Whether token `j` is the left-hand side of a plain `=` assignment:
/// `name = expr` with `name` a local ident (not a field, not a `let`
/// binder — that path is handled separately) and the `=` not part of
/// `==`, `=>`, `<=`, `>=`, `!=`, or a compound assignment.
fn is_plain_assignment(toks: &[Tok], j: usize, low: usize) -> bool {
    let w = &toks[j].text;
    if !w
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        || crate::model::is_reserved_word(w)
    {
        return false;
    }
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("=") {
        return false;
    }
    match toks.get(j + 2).map(|t| t.text.as_str()) {
        Some("=") | Some(">") => return false,
        _ => {}
    }
    if j > low {
        let prev = toks[j - 1].text.as_str();
        if matches!(
            prev,
            "." | "let" | "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
        ) {
            return false;
        }
    }
    true
}

/// The full L9/L11 pass for one spec: summary fixpoint, then a reporting
/// sweep over every body.
fn taint_pass(model: &Model, spec: &TaintSpec) -> Vec<Finding> {
    let n = model.items.len();
    let mut is_source = vec![false; n];
    let mut is_sanitizer = vec![false; n];
    for (i, item) in model.items.iter().enumerate() {
        let q = item.qualified();
        is_source[i] = spec.sources.iter().any(|p| p.matches_qualified(&q));
        is_sanitizer[i] = spec.sanitizers.iter().any(|p| p.matches_qualified(&q));
    }
    let mut summaries: Vec<Option<Chain>> = vec![None; n];
    for i in 0..n {
        if is_source[i] && !is_sanitizer[i] {
            summaries[i] = Some(vec![model.items[i].qualified()]);
        }
    }
    // Taint only grows, so the fixpoint is reached in at most `n` rounds;
    // in practice two or three.
    loop {
        let mut changed = false;
        for i in 0..n {
            if is_source[i] || is_sanitizer[i] || summaries[i].is_some() {
                continue;
            }
            if let Some(origin) = analyze_body(model, i, spec, &summaries, None) {
                let mut chain = origin;
                chain.push(model.items[i].qualified());
                summaries[i] = Some(chain);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut findings = Vec::new();
    for (i, sanitizer) in is_sanitizer.iter().enumerate() {
        // Sanitizers are trusted: their internals may touch raw values.
        if *sanitizer {
            continue;
        }
        analyze_body(model, i, spec, &summaries, Some(&mut findings));
    }
    findings
}

// ---------------------------------------------------------------------------
// L10 — seed provenance for RNG construction.
// ---------------------------------------------------------------------------

fn is_seedish(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    SEEDISH.iter().any(|s| lower.contains(s))
}

fn is_const_name(word: &str) -> bool {
    word.len() >= 2
        && word
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && word.chars().any(|c| c.is_ascii_uppercase())
}

/// Whether a token slice contains a seed-derived value: a numeric
/// literal, an ALL_CAPS const, a local previously bound from a derived
/// value, or a seed-ish ident that has *not* been laundered (rebound from
/// a non-derived value). Dirty idents found are pushed to `laundered`.
fn slice_has_derived(
    toks: &[Tok],
    from: usize,
    to: usize,
    derived: &BTreeMap<String, ()>,
    dirty: &BTreeMap<String, ()>,
    laundered: &mut Vec<String>,
) -> bool {
    let mut ok = false;
    for tok in toks.iter().take(to).skip(from) {
        let w = tok.text.as_str();
        if w.chars().next().is_some_and(|c| c.is_ascii_digit())
            || is_const_name(w)
            || derived.contains_key(w)
        {
            ok = true;
        } else if is_seedish(w) {
            if dirty.contains_key(w) {
                laundered.push(w.to_string());
            } else {
                ok = true;
            }
        }
    }
    ok
}

/// L10: every RNG constructor argument must be data-derivable from a
/// seed. This strengthens the name-based L6 check into dataflow: a local
/// *named* `seed` that was bound from a non-derived value (clock,
/// entropy, unrelated computation) no longer counts.
fn provenance_pass(model: &Model, ctors: &[Pattern]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for item in &model.items {
        let Some((start, end)) = item.body else {
            continue;
        };
        let toks = &model.files[item.file_idx].tokens;
        let end = end.min(toks.len());
        let mut derived: BTreeMap<String, ()> = BTreeMap::new();
        let mut dirty: BTreeMap<String, ()> = BTreeMap::new();
        for j in start..end {
            if toks[j].text == "let" {
                let (names, rhs) = parse_let(toks, j, end);
                let Some((rf, rt)) = rhs else { continue };
                let mut scratch = Vec::new();
                let rhs_derived = slice_has_derived(toks, rf, rt, &derived, &dirty, &mut scratch);
                for n in names {
                    if rhs_derived {
                        dirty.remove(&n);
                        derived.insert(n, ());
                    } else {
                        derived.remove(&n);
                        if is_seedish(&n) {
                            dirty.insert(n, ());
                        }
                    }
                }
                continue;
            }
            let Some(call) = call_at(toks, j, start) else {
                continue;
            };
            if !call_matches(model, &call, ctors) {
                continue;
            }
            let args_to = close_paren(toks, j + 1, end);
            let mut laundered = Vec::new();
            if !slice_has_derived(toks, j + 2, args_to, &derived, &dirty, &mut laundered) {
                let detail = if laundered.is_empty() {
                    "no argument is a literal, const, or seed-derived value".to_string()
                } else {
                    format!(
                        "`{}` is seed-named but was bound from a non-derived value (laundering)",
                        laundered.join("`, `")
                    )
                };
                findings.push(Finding {
                    file: model.files[item.file_idx].label.clone(),
                    line: toks[j].line,
                    code: "L10",
                    token: call.name.clone(),
                    message: format!(
                        "RNG constructed in `{}` without seed provenance: {detail}; derive the \
                         stream from the master seed (e.g. `seed ^ STREAM_CONST`)",
                        item.qualified()
                    ),
                    chain: vec![item.qualified()],
                    fix: None,
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L12 — discarded fallibility.
// ---------------------------------------------------------------------------

/// Re-renders a token slice as source-ish text for suggested fixes.
/// Spacing is approximate (tokens don't retain the original whitespace),
/// so fixes built from this are advisory patches, never applied blindly.
fn render_toks(toks: &[crate::model::Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        let s = t.text.as_str();
        let no_space_before = matches!(s, ")" | "]" | "}" | "," | ";" | "." | "?" | "::" | "(");
        let no_space_after = out.ends_with(['(', '[', '.', '&', '!']) || out.ends_with("::");
        if !out.is_empty() && !no_space_before && !no_space_after {
            out.push(' ');
        }
        out.push_str(s);
    }
    out
}

/// L12: `let _ = call(..)` where the call resolves to a workspace item
/// returning `Result` silently swallows the error contract. Test code is
/// already stripped by `prep`, so every hit is library/harness code.
fn discard_pass(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for item in &model.items {
        let Some((start, end)) = item.body else {
            continue;
        };
        let toks = &model.files[item.file_idx].tokens;
        let end = end.min(toks.len());
        for j in start..end {
            if toks[j].text != "let"
                || toks.get(j + 1).map(|t| t.text.as_str()) != Some("_")
                || toks.get(j + 2).map(|t| t.text.as_str()) != Some("=")
            {
                continue;
            }
            let rhs_from = j + 3;
            let rhs_to = stmt_end(toks, rhs_from, end);
            // The discarded value is the outermost expression: take the
            // last call at relative paren depth 0 (method chains bind
            // left-to-right, so the last depth-0 call produced the value).
            let mut depth = 0i32;
            let mut culprit: Option<(CallRef, usize, String)> = None;
            for k in rhs_from..rhs_to {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {
                        if depth > 0 {
                            continue;
                        }
                        let Some(call) = call_at(toks, k, rhs_from) else {
                            continue;
                        };
                        let fallible = model.resolve(&call).iter().find_map(|&c| {
                            let it = &model.items[c];
                            it.returns_result.then(|| it.qualified())
                        });
                        if let Some(q) = fallible {
                            culprit = Some((call, toks[k].line, q));
                        }
                    }
                }
            }
            if let Some((call, line, callee)) = culprit {
                let rhs = render_toks(&toks[rhs_from..rhs_to]);
                let fix = item.returns_result.then(|| crate::FixIt {
                    description: "propagate the error with `?` (enclosing fn \
                                  returns Result)"
                        .to_string(),
                    original: format!("let _ = {rhs};"),
                    replacement: format!("{rhs}?;"),
                });
                findings.push(Finding {
                    file: model.files[item.file_idx].label.clone(),
                    line,
                    code: "L12",
                    token: call.name.clone(),
                    message: format!(
                        "`Result` from `{callee}` discarded with `let _ =` in `{}`; handle or \
                         propagate the error — the API is fallible by contract",
                        item.qualified()
                    ),
                    chain: vec![item.qualified(), callee],
                    fix,
                });
            }
        }
    }
    findings
}
