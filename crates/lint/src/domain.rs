//! The interval-and-sign abstract domain used by `absint.rs` (L13–L15).
//!
//! An [`Interval`] over-approximates the set of `f64` values a program
//! variable can hold: every concrete execution stays inside `[lo, hi]`,
//! and `nan` records whether `NaN` is possible. `int` records that the
//! value is provably integer-valued, which lets branch refinement use
//! unit steps (`x > 0` on an integer means `x ≥ 1`) and keeps integer
//! division sound under truncation.
//!
//! **Soundness discipline.** Every transfer function rounds its bounds
//! *outward* by one ulp (two for the transcendentals, whose libm
//! implementations are not guaranteed correctly rounded), so a concrete
//! evaluation with the same `f64` operations can never escape the
//! abstract bounds. The property test in `tests/interval_prop.rs` checks
//! exactly this: random straight-line programs, evaluated concretely,
//! must land inside the interval the interpreter computes.
//!
//! The lattice is the usual interval lattice with a `TOP` of
//! `([-∞, +∞], may-NaN)`; `BOTTOM` (unreachable / NaN-only) is encoded
//! as an empty range `lo > hi`. Widening jumps unstable bounds to the
//! nearest *threshold* (just `0.0` — the sign barrier the controller
//! proofs care about) before giving up to ±∞, so nonnegativity survives
//! loop fixpoints; narrowing then claws back finite bounds where a
//! post-pass can justify them.

/// One ulp towards −∞. `f64::next_down` is not available at our MSRV,
/// so this is the textbook bit-twiddling version.
pub(crate) fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

/// One ulp towards +∞.
pub(crate) fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// 2^53 — below this magnitude every integer is exact in f64, so proven-
/// integer arithmetic needs no outward rounding.
const EXACT_INT: f64 = 9007199254740992.0;

/// Outward-round a lower bound; NaN from inf−inf cancellation maps to −∞.
fn down(x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        next_down(x)
    }
}

/// Outward-round an upper bound; NaN maps to +∞.
fn up(x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else {
        next_up(x)
    }
}

/// An abstract value: the closed range `[lo, hi]` plus a may-NaN flag and
/// a proven-integer flag. `lo > hi` encodes BOTTOM (no finite value; the
/// value may still be NaN if `nan` is set — e.g. `sqrt` of a negative
/// range).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Least possible value (inclusive; may be −∞).
    pub lo: f64,
    /// Greatest possible value (inclusive; may be +∞).
    pub hi: f64,
    /// Whether the value may be NaN.
    pub nan: bool,
    /// Whether the value is provably integer-valued.
    pub int: bool,
}

impl Interval {
    /// The unknown value: anything, including NaN.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        nan: true,
        int: false,
    };

    /// No finite value at all (empty range, no NaN).
    pub const BOTTOM: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
        nan: false,
        int: false,
    };

    /// A single concrete constant.
    pub fn constant(v: f64) -> Interval {
        if v.is_nan() {
            return Interval {
                nan: true,
                ..Interval::BOTTOM
            };
        }
        Interval {
            lo: v,
            hi: v,
            nan: false,
            int: v.fract() == 0.0 && v.is_finite(),
        }
    }

    /// A finite declared domain `[lo, hi]` (no NaN by assumption).
    pub fn range(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            nan: false,
            int: false,
        }
    }

    /// Anything finite or infinite but never NaN (e.g. an integer cast).
    pub fn not_nan() -> Interval {
        Interval {
            nan: false,
            ..Interval::TOP
        }
    }

    /// The empty range (no representable float).
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// True when the range carries no information at all.
    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY && self.nan
    }

    /// Whether at least one bound is informative. Checks only fire on
    /// intervals with knowledge — a TOP operand stays with the syntactic
    /// rules (L4/L5/L8) instead of producing an alarm storm.
    pub fn has_knowledge(&self) -> bool {
        !self.is_bottom() && (self.lo.is_finite() || self.hi.is_finite())
    }

    /// Whether `v` is a possible value.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether zero is a possible value.
    pub fn contains_zero(&self) -> bool {
        self.contains(0.0)
    }

    /// Whether the range provably excludes zero (and NaN).
    pub fn excludes_zero(&self) -> bool {
        !self.is_bottom() && !self.nan && !self.contains_zero()
    }

    /// Range containment: every value of `self` lies in `other`
    /// (NaN is tracked separately by L14 and deliberately ignored here —
    /// contracts constrain magnitudes; NaN ingress is L3/L9's job).
    pub fn within(&self, other: &Interval) -> bool {
        self.is_bottom() || (self.lo >= other.lo && self.hi <= other.hi)
    }

    /// Least upper bound (set union, rounded to an interval).
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_bottom() {
            return Interval {
                nan: self.nan || other.nan,
                ..*other
            };
        }
        if other.is_bottom() {
            return Interval {
                nan: self.nan || other.nan,
                ..*self
            };
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            nan: self.nan || other.nan,
            int: self.int && other.int,
        }
    }

    /// Greatest lower bound (set intersection). Used by refinement:
    /// knowledge from both sides combines.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
            nan: self.nan && other.nan,
            int: self.int || other.int,
        }
    }

    /// Widening with a single threshold at the sign barrier: an unstable
    /// bound first snaps to `0.0` (if it still brackets the new value)
    /// and only then to ±∞. Guarantees loop fixpoints terminate while
    /// keeping nonnegativity proofs alive.
    pub fn widen(&self, next: &Interval) -> Interval {
        if self.is_bottom() {
            return *next;
        }
        if next.is_bottom() {
            return Interval {
                nan: self.nan || next.nan,
                ..*self
            };
        }
        let lo = if next.lo >= self.lo {
            self.lo
        } else if next.lo >= 0.0 {
            0.0
        } else {
            f64::NEG_INFINITY
        };
        let hi = if next.hi <= self.hi {
            self.hi
        } else if next.hi <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        Interval {
            lo,
            hi,
            nan: self.nan || next.nan,
            int: self.int && next.int,
        }
    }

    /// Narrowing: recover a finite bound where the widened value gave up
    /// to ±∞ but a descending re-evaluation found one.
    pub fn narrow(&self, refined: &Interval) -> Interval {
        if self.is_bottom() || refined.is_bottom() {
            return *self;
        }
        Interval {
            lo: if self.lo == f64::NEG_INFINITY {
                refined.lo
            } else {
                self.lo
            },
            hi: if self.hi == f64::INFINITY {
                refined.hi
            } else {
                self.hi
            },
            nan: self.nan && refined.nan,
            int: self.int,
        }
    }

    // ---- arithmetic transfer functions ----

    /// May this range take the value +∞?
    fn may_pos_inf(&self) -> bool {
        self.hi == f64::INFINITY
    }

    /// May this range take the value −∞?
    fn may_neg_inf(&self) -> bool {
        self.lo == f64::NEG_INFINITY
    }

    /// `self + other`. NaN can appear from `∞ + (−∞)`.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval {
                nan: self.nan || other.nan,
                ..Interval::BOTTOM
            };
        }
        let nan = self.nan
            || other.nan
            || (self.may_pos_inf() && other.may_neg_inf())
            || (self.may_neg_inf() && other.may_pos_inf());
        let int = self.int && other.int;
        // Integer sums below 2^53 are exact in f64 — no outward rounding,
        // so `x - 1` on `x: [1, n]` stays provably nonnegative.
        let exact = |v: f64| int && v.abs() <= EXACT_INT;
        let rlo = self.lo + other.lo;
        let rhi = self.hi + other.hi;
        Interval {
            lo: if exact(rlo) { rlo } else { down(rlo) },
            hi: if exact(rhi) { rhi } else { up(rhi) },
            nan,
            int,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// `-self`.
    pub fn neg(&self) -> Interval {
        if self.is_bottom() {
            return *self;
        }
        Interval {
            lo: -self.hi,
            hi: -self.lo,
            nan: self.nan,
            int: self.int,
        }
    }

    /// `self * other`. NaN can appear from `0 · ±∞`.
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval {
                nan: self.nan || other.nan,
                ..Interval::BOTTOM
            };
        }
        let a_inf = self.may_pos_inf() || self.may_neg_inf();
        let b_inf = other.may_pos_inf() || other.may_neg_inf();
        let nan = self.nan
            || other.nan
            || (self.contains_zero() && b_inf)
            || (other.contains_zero() && a_inf);
        let int = self.int && other.int;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &[self.lo, self.hi] {
            for &y in &[other.lo, other.hi] {
                let p = x * y;
                if p.is_nan() {
                    // 0 · ∞ at an endpoint: the nearby products cover
                    // every finite limit, and the NaN flag is already set.
                    continue;
                }
                if (int && p.abs() <= EXACT_INT) || x == 0.0 || y == 0.0 {
                    // Exact: integer products below 2^53, and products
                    // with a zero endpoint (0 · finite is exact 0 in
                    // IEEE; 0 · ∞ was skipped as NaN above).
                    lo = lo.min(p);
                    hi = hi.max(p);
                } else {
                    lo = lo.min(down(p));
                    hi = hi.max(up(p));
                }
            }
        }
        if lo > hi {
            // all endpoint products were NaN (e.g. [0,0] · [∞,∞])
            return Interval {
                nan: true,
                ..Interval::BOTTOM
            };
        }
        Interval {
            lo,
            hi,
            nan,
            int: self.int && other.int,
        }
    }

    /// `self / other`. Division by a range containing zero produces
    /// infinities (and NaN when the numerator also reaches zero) — L13
    /// exists to flag exactly those divisors.
    pub fn div(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval {
                nan: self.nan || other.nan,
                ..Interval::BOTTOM
            };
        }
        let a_inf = self.may_pos_inf() || self.may_neg_inf();
        let b_inf = other.may_pos_inf() || other.may_neg_inf();
        let mut nan = self.nan
            || other.nan
            || (a_inf && b_inf)
            || (self.contains_zero() && other.contains_zero());
        if other.lo == 0.0 && other.hi == 0.0 {
            // dividing by exactly zero: ±∞ by the sign of the numerator
            return Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                nan: true,
                int: false,
            };
        }
        if other.lo < 0.0 && other.hi > 0.0 {
            // divisor straddles zero: quotient reaches both infinities
            nan = nan || self.contains_zero();
            return Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                nan,
                int: self.int && other.int,
            };
        }
        // one-signed divisor (possibly touching zero at one endpoint).
        // Canonicalise a signed zero at the touching endpoint: the divisor
        // approaches zero from inside the interval, so the zero's IEEE sign
        // must match that side — otherwise x / -0.0 flips the infinity's
        // sign and e.g. [-0.0, +inf] / [-0.0, +inf] loses every positive
        // quotient.
        let ylo = if other.lo == 0.0 { 0.0 } else { other.lo };
        let yhi = if other.hi == 0.0 { -0.0 } else { other.hi };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &[self.lo, self.hi] {
            for &y in &[ylo, yhi] {
                let q = x / y;
                if q.is_nan() {
                    continue; // 0/0 or ∞/∞ endpoint; nan already tracked
                }
                lo = lo.min(down(q));
                hi = hi.max(up(q));
            }
        }
        if lo > hi {
            return Interval {
                nan: true,
                ..Interval::BOTTOM
            };
        }
        let int = self.int && other.int;
        if int {
            // integer division truncates toward zero; floor/ceil of the
            // real-quotient hull always brackets the truncated result
            lo = lo.floor();
            hi = hi.ceil();
        }
        Interval { lo, hi, nan, int }
    }

    /// `self % other`: magnitude below `|other|`, sign follows `self`.
    pub fn rem(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval {
                nan: self.nan || other.nan,
                ..Interval::BOTTOM
            };
        }
        let nan = self.nan
            || other.nan
            || other.contains_zero()
            || self.may_pos_inf()
            || self.may_neg_inf();
        let m = other.lo.abs().max(other.hi.abs());
        let mut lo = -m;
        let mut hi = m;
        if self.lo >= 0.0 {
            lo = 0.0;
            hi = hi.min(up(self.hi));
        }
        if self.hi <= 0.0 {
            hi = 0.0;
            lo = lo.max(down(self.lo));
        }
        Interval {
            lo,
            hi,
            nan,
            int: self.int && other.int,
        }
    }

    /// `self.abs()`.
    pub fn abs(&self) -> Interval {
        if self.is_bottom() {
            return *self;
        }
        let (lo, hi) = if self.lo >= 0.0 {
            (self.lo, self.hi)
        } else if self.hi <= 0.0 {
            (-self.hi, -self.lo)
        } else {
            (0.0, self.hi.max(-self.lo))
        };
        Interval {
            lo,
            hi,
            nan: self.nan,
            int: self.int,
        }
    }

    /// `self.sqrt()`. Negative inputs yield NaN.
    pub fn sqrt(&self) -> Interval {
        if self.is_bottom() {
            return *self;
        }
        if self.hi < 0.0 {
            return Interval {
                nan: true,
                ..Interval::BOTTOM
            };
        }
        let nan = self.nan || self.lo < 0.0;
        // sqrt is correctly rounded, but round out twice for headroom
        Interval {
            lo: down(down(self.lo.max(0.0).sqrt())).max(0.0),
            hi: up(up(self.hi.sqrt())),
            nan,
            int: false,
        }
    }

    /// `self.ln()` (also used for log2/log10 hazard checks). Inputs ≤ 0
    /// are the hazard: negative → NaN, zero → −∞.
    pub fn ln(&self) -> Interval {
        if self.is_bottom() {
            return *self;
        }
        if self.hi < 0.0 {
            return Interval {
                nan: true,
                ..Interval::BOTTOM
            };
        }
        let nan = self.nan || self.lo < 0.0;
        let lo = if self.lo <= 0.0 {
            f64::NEG_INFINITY
        } else {
            down(down(self.lo.ln()))
        };
        let hi = if self.hi == 0.0 {
            f64::NEG_INFINITY
        } else {
            up(up(self.hi.ln()))
        };
        Interval {
            lo,
            hi,
            nan,
            int: false,
        }
    }

    /// `self.exp()`.
    pub fn exp(&self) -> Interval {
        if self.is_bottom() {
            return *self;
        }
        Interval {
            lo: down(down(self.lo.exp())).max(0.0),
            hi: up(up(self.hi.exp())),
            nan: self.nan,
            int: false,
        }
    }

    /// `f64::max` semantics: NaN survives only if *both* sides may be NaN
    /// — `x.max(0.0)` is therefore a NaN sanitizer, which is exactly why
    /// the controller's clamps make postconditions provable.
    pub fn max_of(&self, other: &Interval) -> Interval {
        if self.is_bottom() {
            return Interval {
                nan: self.nan && other.nan,
                ..*other
            };
        }
        if other.is_bottom() {
            return Interval {
                nan: self.nan && other.nan,
                ..*self
            };
        }
        let mut lo = self.lo.max(other.lo);
        let hi = self.hi.max(other.hi);
        // The sanitizing arm: f64::max(NaN, y) = y, so a may-NaN side can
        // hand the result straight to the *other* operand — its full range
        // joins in (only the lower bound can actually move; hi is already
        // the max of both).
        if self.nan {
            lo = lo.min(other.lo);
        }
        if other.nan {
            lo = lo.min(self.lo);
        }
        Interval {
            lo,
            hi,
            nan: self.nan && other.nan,
            int: self.int && other.int,
        }
    }

    /// `f64::min` semantics (NaN handling mirrors [`Interval::max_of`]).
    pub fn min_of(&self, other: &Interval) -> Interval {
        self.neg().max_of(&other.neg()).neg()
    }

    /// `f64::clamp(lo, hi)` semantics: bounds are clipped into the clamp
    /// window, but NaN *propagates* (clamp is not a sanitizer).
    pub fn clamp_to(&self, lo_b: &Interval, hi_b: &Interval) -> Interval {
        let clamped = self.max_of(lo_b).min_of(hi_b);
        Interval {
            nan: self.nan,
            ..clamped
        }
    }

    /// An `as` cast to a float type: value-preserving for our purposes.
    /// Bounds only widen outward where rounding can actually occur
    /// (|x| > 2^53, where int→f64 and f32 narrowing lose integers);
    /// exactly-representable bounds stay put so sign proofs survive.
    pub fn cast_to_float(&self) -> Interval {
        if self.is_bottom() {
            return *self;
        }
        let lo = if self.lo.abs() > EXACT_INT {
            down(self.lo)
        } else {
            self.lo
        };
        let hi = if self.hi.abs() > EXACT_INT {
            up(self.hi)
        } else {
            self.hi
        };
        Interval {
            lo,
            hi,
            nan: self.nan,
            int: false,
        }
    }

    /// An `as` cast to an integer type with range `[t_lo, t_hi]`.
    /// Float→int casts saturate (and NaN maps to 0); int→int casts wrap,
    /// so an out-of-range int source degrades to the full target range.
    pub fn cast_to_int(&self, t_lo: f64, t_hi: f64) -> Interval {
        if self.is_bottom() && !self.nan {
            return *self;
        }
        if self.int {
            // int → int: wrapping semantics
            if self.is_bottom() || self.lo < t_lo || self.hi > t_hi {
                return Interval {
                    lo: t_lo,
                    hi: t_hi,
                    nan: false,
                    int: true,
                };
            }
            return Interval {
                nan: false,
                ..*self
            };
        }
        // float → int: truncate then saturate; NaN → 0
        let mut lo = if self.is_bottom() {
            t_hi
        } else {
            self.lo.trunc().max(t_lo).min(t_hi)
        };
        let mut hi = if self.is_bottom() {
            t_lo
        } else {
            self.hi.trunc().max(t_lo).min(t_hi)
        };
        if self.nan {
            lo = lo.min(0.0);
            hi = hi.max(0.0);
        }
        Interval {
            lo,
            hi,
            nan: false,
            int: true,
        }
    }

    /// Compact human-readable form for messages and chains.
    pub fn render(&self) -> String {
        if self.is_bottom() {
            return if self.nan {
                "NaN-only".to_string()
            } else {
                "unreachable".to_string()
            };
        }
        let b = |v: f64| {
            if v == f64::NEG_INFINITY {
                "-inf".to_string()
            } else if v == f64::INFINITY {
                "+inf".to_string()
            } else if v == v.trunc() && v.abs() < 1e15 {
                format!("{v}")
            } else {
                format!("{v:.6e}")
            }
        };
        let mut s = format!("[{}, {}]", b(self.lo), b(self.hi));
        if self.nan {
            s.push_str(" may-NaN");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::range(lo, hi)
    }

    #[test]
    fn constants_and_lattice_basics() {
        let c = Interval::constant(2.5);
        assert!(c.contains(2.5) && !c.contains(2.4) && !c.nan && !c.int);
        assert!(Interval::constant(3.0).int);
        assert!(Interval::TOP.is_top());
        assert!(Interval::BOTTOM.is_bottom());
        let j = iv(0.0, 1.0).join(&iv(5.0, 6.0));
        assert_eq!((j.lo, j.hi), (0.0, 6.0));
        let m = iv(0.0, 10.0).meet(&iv(5.0, 20.0));
        assert_eq!((m.lo, m.hi), (5.0, 10.0));
        assert!(iv(5.0, 3.0).is_bottom());
    }

    #[test]
    fn arithmetic_brackets_concrete_results() {
        let a = iv(1.0, 2.0);
        let b = iv(3.0, 4.0);
        let s = a.add(&b);
        assert!(s.contains(1.0 + 3.0) && s.contains(2.0 + 4.0) && s.contains(5.5));
        let p = a.mul(&b);
        assert!(p.contains(3.0) && p.contains(8.0));
        let d = a.div(&b);
        assert!(d.contains(0.25) && d.contains(2.0 / 3.0));
        let n = a.sub(&b);
        assert!(n.contains(-3.0) && n.contains(-1.0));
    }

    #[test]
    fn signed_multiplication_covers_all_corners() {
        let a = iv(-2.0, 3.0);
        let b = iv(-5.0, 4.0);
        let p = a.mul(&b);
        for x in [-2.0, 0.0, 3.0] {
            for y in [-5.0, 0.0, 4.0] {
                assert!(p.contains(x * y), "{x} * {y} escaped {}", p.render());
            }
        }
    }

    #[test]
    fn division_by_zero_straddle_is_top_range_with_nan() {
        let d = iv(1.0, 2.0).div(&iv(-1.0, 1.0));
        assert_eq!(d.lo, f64::NEG_INFINITY);
        assert_eq!(d.hi, f64::INFINITY);
        let z = iv(0.0, 1.0).div(&iv(0.0, 1.0));
        assert!(z.nan, "0/0 must be flagged may-NaN");
    }

    #[test]
    fn division_by_semi_open_positive_divisor_keeps_sign() {
        // divisor [0, 2]: quotient of a positive numerator is ≥ its
        // smallest finite value and reaches +inf
        let d = iv(1.0, 4.0).div(&iv(0.0, 2.0));
        assert!(d.lo <= 0.5 && d.lo >= 0.0, "lo = {}", d.lo);
        assert_eq!(d.hi, f64::INFINITY);
        assert!(!d.nan, "numerator excludes zero; no 0/0");
    }

    #[test]
    fn integer_division_truncation_is_bracketed() {
        let a = Interval {
            int: true,
            ..iv(7.0, 7.0)
        };
        let b = Interval {
            int: true,
            ..iv(2.0, 2.0)
        };
        let q = a.div(&b);
        assert!(q.contains(3.0), "7/2 == 3 escaped {}", q.render());
        let n = Interval {
            int: true,
            ..iv(-7.0, -7.0)
        };
        let qn = n.div(&b);
        assert!(qn.contains(-3.0), "-7/2 == -3 escaped {}", qn.render());
    }

    #[test]
    fn rem_is_bounded_by_divisor_magnitude() {
        let r = iv(0.0, 100.0).rem(&iv(1.0, 7.0));
        assert!(r.lo >= 0.0 && r.hi <= 7.0, "{}", r.render());
        assert!(r.contains(100.0_f64 % 7.0));
        let signed = iv(-10.0, 10.0).rem(&iv(3.0, 3.0));
        assert!(signed.contains(-1.0) && signed.contains(1.0));
    }

    #[test]
    fn max_kills_nan_min_and_clamp_do_not() {
        let top = Interval::TOP;
        let m = top.max_of(&Interval::constant(0.0));
        assert_eq!(m.lo, 0.0);
        assert!(!m.nan, ".max(0.0) sanitizes NaN like f64::max does");
        let c = top.clamp_to(&Interval::constant(0.0), &Interval::constant(1.0));
        assert_eq!((c.lo, c.hi), (0.0, 1.0));
        assert!(c.nan, "clamp propagates NaN");
        let mn = top.min_of(&Interval::constant(5.0));
        assert!(mn.hi <= 5.0 && !mn.nan);
    }

    #[test]
    fn sqrt_and_ln_flag_bad_inputs() {
        assert!(iv(-1.0, 4.0).sqrt().nan);
        assert!(!iv(0.0, 4.0).sqrt().nan);
        let s = iv(0.0, 4.0).sqrt();
        assert!(s.contains(2.0) && s.lo <= 0.0);
        assert!(iv(-1.0, 1.0).ln().nan);
        let l = iv(0.0, 1.0).ln();
        assert_eq!(l.lo, f64::NEG_INFINITY, "ln(0) = -inf must be covered");
        assert!(iv(4.0, 4.0).sqrt().contains(2.0));
    }

    #[test]
    fn widening_respects_the_sign_threshold() {
        let w = iv(0.0, 1.0).widen(&iv(0.0, 2.0));
        assert_eq!(w.lo, 0.0, "stable nonneg lower bound survives");
        assert_eq!(w.hi, f64::INFINITY, "growing upper bound widens");
        let w2 = iv(1.0, 5.0).widen(&iv(0.5, 5.0));
        assert_eq!(w2.lo, 0.0, "shrinking-but-nonneg lower bound snaps to 0");
        let w3 = iv(0.0, 5.0).widen(&iv(-1.0, 5.0));
        assert_eq!(w3.lo, f64::NEG_INFINITY);
        let n = w.narrow(&iv(0.0, 2.0));
        assert_eq!(n.hi, 2.0, "narrowing recovers the finite bound");
    }

    #[test]
    fn casts_follow_rust_semantics() {
        // float → usize saturates, NaN → 0
        let c = iv(-5.0, 1e30).cast_to_int(0.0, 1.8446744073709552e19);
        assert_eq!(c.lo, 0.0);
        assert!(c.hi <= 1.9e19);
        let nan_in = Interval::TOP.cast_to_int(0.0, 4294967295.0);
        assert!(nan_in.contains(0.0) && !nan_in.nan);
        // int → int out of range wraps to the full target range
        let w = Interval {
            int: true,
            ..iv(0.0, 1e12)
        }
        .cast_to_int(0.0, 4294967295.0);
        assert_eq!((w.lo, w.hi), (0.0, 4294967295.0));
        // int → float is value-preserving
        let f = Interval {
            int: true,
            ..iv(0.0, 100.0)
        }
        .cast_to_float();
        assert!(f.contains(50.0) && !f.nan && !f.int);
    }

    #[test]
    fn outward_rounding_never_loses_the_exact_result() {
        // adversarial: numbers whose sums/products round
        let a = iv(0.1, 0.1);
        let b = iv(0.2, 0.2);
        assert!(a.add(&b).contains(0.1 + 0.2));
        assert!(a.mul(&b).contains(0.1 * 0.2));
        assert!(a.div(&b).contains(0.1 / 0.2));
        let t = iv(1e300, 1e300);
        assert!(t.mul(&t).contains(f64::INFINITY) || t.mul(&t).hi == f64::INFINITY);
    }

    #[test]
    fn render_is_compact() {
        assert_eq!(iv(0.0, 4096.0).render(), "[0, 4096]");
        assert_eq!(Interval::TOP.render(), "[-inf, +inf] may-NaN");
    }
}
