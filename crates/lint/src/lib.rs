//! `dragster-lint` — a dependency-free multi-pass static analyzer over
//! the workspace's library crates, enforcing invariants that clippy
//! cannot express and that the paper's regret guarantee silently depends
//! on:
//!
//! * **L1 — no panic paths.** `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!` are banned outside
//!   `#[cfg(test)]` blocks in library crates. A panic in the saddle-point
//!   loop or the GP update invalidates every figure downstream; errors
//!   must travel as [`Result`]s.
//! * **L2 — determinism.** `thread_rng`, `SystemTime::now`,
//!   `Instant::now`, and `HashMap`/`HashSet` (unordered iteration) are
//!   banned: a fixed seed must reproduce a run bit-for-bit, so library
//!   code uses the seeded `sim::Rng` and `BTreeMap`/`Vec`.
//! * **L3 — NaN-safety.** `.partial_cmp(..).unwrap()` (and `.expect(`)
//!   is banned: one NaN in a GP posterior turns it into a panic. Use
//!   `f64::total_cmp` or the `core::num` argmax/argmin helpers.
//! * **L4 — lossy casts.** `expr as <integer type>` is banned in the
//!   numeric crates (`core`, `gp`, `sim`), where a silent float→int
//!   truncation corrupts budgets and indices. Int→float (`as f64`)
//!   stays legal.
//! * **L5 — panic-reachability.** A semantic pass: the analyzer builds a
//!   workspace model (item index + approximate call graph, see
//!   [`model`]) and walks it from every `pub` item, reporting any path
//!   that reaches a panic site with the full call chain (see [`reach`]).
//!   Site kinds already claimed by L1/L8 are not double-reported.
//! * **L6 — RNG-stream discipline.** Every RNG construction must be
//!   seeded (`seed_from_u64`, or `*Rng::new(..)` whose argument names a
//!   seed/stream/plan); `thread_rng`, `from_entropy`, `OsRng`, and
//!   wall-clock entropy (`SystemTime::now`, `Instant::now`) are banned
//!   in non-bench, non-test code. When enabled it claims those tokens
//!   from L2.
//! * **L7 — unit consistency.** A declarative `[units]` table in
//!   `lint.toml` maps identifier suffixes (`_tps`, `_secs`, `_usd`,
//!   `_slots`, ...) to dimensions; additive/comparison/assignment
//!   operators between operands of different dimensions are flagged.
//!   Multiplication and division are exempt — they are how annotated
//!   conversions are written (`rate_tps * window_secs`).
//! * **L8 — unchecked indexing.** `expr[..]` indexing/slicing outside
//!   tests is flagged; use `.get()`/`.get_mut()`/`.first()`/`.last()`
//!   with an explicit fallback.
//! * **L9 — clean-gating taint.** An interprocedural forward taint pass
//!   (see [`dataflow`]): raw simulator/fault metric snapshots must flow
//!   through `MetricSanitizer::sanitize` before reaching any
//!   GP/estimator/dual-update sink. Findings carry the source→sink call
//!   chain. Sources/sanitizers/sinks come from the `[flow]` table in
//!   `lint.toml` (defaults compiled in, see [`taint`]).
//! * **L10 — seed provenance.** RNG constructor arguments must be
//!   data-derivable from the master seed (literals, stream-salt
//!   constants, seed-ish locals with derived definitions); a seed-ish
//!   name bound to non-derived data is reported as laundering. Closes
//!   the gap in L6's purely name-based check.
//! * **L11 — projection discipline.** Decision vectors from `*::decide`
//!   must pass a projection (`project_to_budget`, ...) before actuation
//!   (`FluidSim::reconfigure`) or cost metering — the OCO analysis
//!   assumes iterates stay in the feasible set.
//! * **L12 — discarded fallibility.** `let _ = f(..)` on a call whose
//!   return type mentions `Result` is banned outside tests; propagate
//!   or handle the error instead of swallowing it.
//! * **L13 — proven numeric preconditions.** A forward interval
//!   abstract interpreter (see [`absint`], [`domain`]) computes value
//!   ranges; division/modulo/`sqrt`/`ln` operands *proven* able to hit
//!   zero/negative values are reported, and divisors proven nonzero
//!   suppress L5's syntactic div/rem finding at that site.
//! * **L14 — proven-in-range casts and counters.** Values flowing into
//!   `as <int>` casts and `f64_to_usize_saturating` must be proven
//!   finite, NaN-free, and inside the target range; integer arithmetic
//!   on domain-bounded counters must be proven overflow-free.
//! * **L15 — controller contracts.** A `[contracts]` table declares
//!   required output intervals (`project_to_budget -> [0, budget]`,
//!   dual update `lam -> [0, +inf]`, GP posterior `var -> [0, +inf]`);
//!   computed summaries/bindings that violate them are reported with
//!   the full derivation chain. Input assumptions come from the
//!   `[domains]` table (identifier-suffix → range, L7's binding rule).
//! * **L16 — hot-path allocation discipline.** Functions reachable from
//!   the per-slot roots (`FluidSim::run_slot`, `DesSim::run`,
//!   `*::decide`, `MetricSanitizer::sanitize`, the journal append path)
//!   must not allocate; findings carry the root→callee chain (see
//!   [`cost`]). Hot roots come from `[cost] hot_roots` in `lint.toml`.
//! * **L17 — loop-bound proofs.** Every loop in hot-path code needs a
//!   derivable bound: `for … in`, a counter `while` with a monotone
//!   step, a draining `while let`, or a declared `[bounds]` measure.
//! * **L18 — checkpoint state-coverage.** Every named-field struct that
//!   travels through an encode/decode, `export_state`/`import_state`,
//!   or snapshot codec must mention each field in *both* directions —
//!   a forgotten field silently resurrects from defaults on recovery
//!   (see [`coverage`]).
//! * **L19 — complexity budgets.** Syntactic loop-nesting depth in hot
//!   functions must stay within the per-function `[complexity]` budget
//!   (default 2) — nested loops over operator/task-sized collections
//!   are how per-slot work goes superlinear.
//!
//! The scanner strips comments, string/char literals, and `#[cfg(test)]`
//! items before matching, so rule tokens inside those never fire.
//! Findings are suppressible only through the checked-in `lint.toml`
//! allowlist, and every entry there must carry a justification. On top of
//! that, [`report`] provides SARIF-lite output and a committed-baseline
//! ratchet so CI fails on *new* findings while the total is driven down.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod absint;
pub mod cost;
pub mod coverage;
pub mod dataflow;
pub mod domain;
pub mod model;
pub mod prep;
pub mod reach;
pub mod report;
pub mod taint;

pub use prep::{prepare, strip_cfg_test_items, strip_comments_and_literals};

/// Library crates subject to the full invariant set (their `src/` trees).
pub const LIBRARY_CRATES: &[&str] = &["core", "gp", "dag", "sim", "baselines", "workloads"];

/// Crates scanned with a reduced rule set (no L1/L2/L5/L6 — binaries and
/// harnesses may panic and read clocks, but still must not index
/// unchecked or mix units).
pub const HARNESS_CRATES: &[&str] = &["bench"];

/// Maximum number of allowlist entries `lint.toml` may carry. Raised from
/// 10 when the L5–L8 passes landed: bounded-by-construction indexing in
/// hot loops is allowlisted per file with a proof sketch rather than
/// rewritten into `.get()` chains.
pub const MAX_ALLOW_ENTRIES: usize = 40;

/// Which rule classes to run on a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSet {
    /// L1: panic paths.
    pub panic_paths: bool,
    /// L2: non-determinism sources.
    pub determinism: bool,
    /// L3: NaN-unsafe comparisons.
    pub nan_safety: bool,
    /// L4: lossy float→int `as` casts.
    pub lossy_casts: bool,
    /// L5: call-graph panic-reachability (workspace/model pass).
    pub reachability: bool,
    /// L6: RNG-stream discipline.
    pub rng_streams: bool,
    /// L7: unit-suffix consistency.
    pub units: bool,
    /// L8: unchecked indexing/slicing.
    pub indexing: bool,
    /// L9–L12: interprocedural taint/dataflow passes (workspace/model
    /// pass, like L5): metric sanitization gating, seed provenance,
    /// projection discipline, discarded fallibility.
    pub dataflow: bool,
    /// L13–L15: interval abstract interpretation (workspace/model pass):
    /// proven div/sqrt/ln preconditions, in-range casts, contracts.
    pub intervals: bool,
    /// L16/L17/L19: static hot-path cost model (workspace/model pass):
    /// allocation discipline, loop-bound proofs, complexity budgets.
    pub cost: bool,
    /// L18: checkpoint state-coverage proofs (workspace/model pass).
    pub coverage: bool,
}

impl RuleSet {
    /// Every rule enabled — used for fixtures and ad-hoc file checks.
    pub fn all() -> RuleSet {
        RuleSet {
            panic_paths: true,
            determinism: true,
            nan_safety: true,
            lossy_casts: true,
            reachability: true,
            rng_streams: true,
            units: true,
            indexing: true,
            dataflow: true,
            intervals: true,
            cost: true,
            coverage: true,
        }
    }

    /// No rules enabled; flip individual passes on for targeted checks.
    pub fn none() -> RuleSet {
        RuleSet {
            panic_paths: false,
            determinism: false,
            nan_safety: false,
            lossy_casts: false,
            reachability: false,
            rng_streams: false,
            units: false,
            indexing: false,
            dataflow: false,
            intervals: false,
            cost: false,
            coverage: false,
        }
    }

    /// The rules that apply to a given crate. L4 bites in the numeric
    /// crates where a truncation corrupts results silently; harness
    /// crates (`bench`) keep only the structural rules (L7/L8).
    pub fn for_crate(name: &str) -> RuleSet {
        if HARNESS_CRATES.contains(&name) {
            RuleSet {
                units: true,
                indexing: true,
                ..RuleSet::none()
            }
        } else {
            RuleSet {
                lossy_casts: matches!(name, "core" | "gp" | "sim"),
                ..RuleSet::all()
            }
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to the scanner (workspace-relative in CLI use).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint code: `"L1"`..`"L8"`.
    pub code: &'static str,
    /// The offending token (e.g. `unwrap`, `HashMap`, `as usize`).
    pub token: String,
    /// Human-readable explanation with the suggested replacement.
    pub message: String,
    /// L5 only: the call chain from a public root to the panic site
    /// (qualified item names, root first). Empty for per-site lints.
    pub chain: Vec<String>,
    /// Mechanical-rule findings (L8, L12) carry a suggested replacement,
    /// surfaced as a SARIF `fix` and by `--fix-dry-run`.
    pub fix: Option<FixIt>,
}

/// A suggested textual replacement attached to a finding. Suggestions are
/// advisory — `.get(i)` returns an `Option` the caller must handle, and
/// `?` needs a `Result`-returning scope — so they are emitted for humans
/// (and SARIF viewers), never auto-applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixIt {
    /// What the change does, one line.
    pub description: String,
    /// The source fragment being replaced, as scanned.
    pub original: String,
    /// The replacement fragment.
    pub replacement: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.file, self.line, self.code, self.token, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Units table (L7).
// ---------------------------------------------------------------------------

/// Maps identifier suffixes to physical dimensions. An identifier carries
/// the dimension of the longest suffix that matches either the whole
/// ident or its trailing `_suffix` segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitsTable {
    /// `(suffix, dimension)` pairs; matched longest-suffix-first.
    pub entries: Vec<(String, String)>,
}

impl Default for UnitsTable {
    /// The built-in table mirrors the `[units]` section of `lint.toml`;
    /// the file may extend or override it.
    fn default() -> Self {
        let mk = |s: &str, d: &str| (s.to_string(), d.to_string());
        UnitsTable {
            entries: vec![
                mk("tps", "rate"),
                mk("secs", "time"),
                mk("sec", "time"),
                mk("ms", "time"),
                mk("usd", "money"),
                mk("dollars", "money"),
                mk("slots", "slots"),
                mk("slot", "slots"),
                mk("tasks", "tasks"),
                mk("tuples", "tuples"),
            ],
        }
    }
}

impl UnitsTable {
    /// Adds or overrides a suffix mapping.
    pub fn set(&mut self, suffix: &str, dimension: &str) {
        if let Some(e) = self.entries.iter_mut().find(|(s, _)| s == suffix) {
            e.1 = dimension.to_string();
        } else {
            self.entries
                .push((suffix.to_string(), dimension.to_string()));
        }
    }

    /// The dimension an identifier carries, if any.
    pub fn dimension_of(&self, ident: &str) -> Option<&str> {
        let lower = ident.to_ascii_lowercase();
        let mut best: Option<(&str, &str)> = None;
        for (suffix, dim) in &self.entries {
            let hits = lower == *suffix || lower.ends_with(&format!("_{suffix}"));
            if hits && best.is_none_or(|(s, _)| suffix.len() > s.len()) {
                best = Some((suffix, dim));
            }
        }
        best.map(|(_, d)| d)
    }
}

// ---------------------------------------------------------------------------
// Rule matching on prepared source.
// ---------------------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Identifier substrings that make an RNG constructor argument count as a
/// named seed/stream for L6.
const SEEDISH: &[&str] = &[
    "seed", "salt", "stream", "plan", "fault", "noise", "derive", "rng",
];

/// Keywords that can legally precede `[` without it being an index
/// expression (patterns, slice types, `in [..]` is indexing-free, etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "else", "as", "const", "static",
    "where", "move", "dyn", "break", "box",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn line_of(text: &[char], idx: usize) -> usize {
    1 + text[..idx].iter().filter(|&&c| c == '\n').count()
}

fn prev_nonspace(text: &[char], idx: usize) -> Option<(usize, char)> {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        if !text[j].is_whitespace() {
            return Some((j, text[j]));
        }
    }
    None
}

fn next_nonspace(text: &[char], idx: usize) -> Option<(usize, char)> {
    let mut j = idx;
    while j < text.len() {
        if !text[j].is_whitespace() {
            return Some((j, text[j]));
        }
        j += 1;
    }
    None
}

/// Reads the identifier starting at `idx` (must be an ident char).
fn ident_at(text: &[char], idx: usize) -> (usize, String) {
    let mut j = idx;
    while j < text.len() && is_ident_char(text[j]) {
        j += 1;
    }
    (j, text[idx..j].iter().collect())
}

/// Reads the identifier *ending* at `idx` (inclusive; must be an ident
/// char), returning it with its start index.
fn ident_ending_at(text: &[char], idx: usize) -> (usize, String) {
    let mut j = idx;
    while j > 0 && is_ident_char(text[j - 1]) {
        j -= 1;
    }
    (j, text[j..=idx].iter().collect())
}

/// Index of the `]` matching the `[` at `open`, if it closes before the
/// end of the statement (no newline crossing — keeps suggested fixes to
/// single-line subscripts only).
fn bracket_close(text: &[char], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in text.iter().enumerate().skip(open) {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            '\n' => return None,
            _ => {}
        }
    }
    None
}

/// Skips a balanced `(...)` starting at the `(` at `i`; returns the index
/// past the closing paren.
fn skip_parens(text: &[char], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < text.len() {
        match text[j] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Whether an RNG constructor argument list names a seed or derived
/// stream: any integer literal, or any identifier containing a
/// seed/stream-ish substring.
fn args_name_a_seed(args: &[char]) -> bool {
    let mut i = 0;
    while i < args.len() {
        if !is_ident_char(args[i]) || (i > 0 && is_ident_char(args[i - 1])) {
            i += 1;
            continue;
        }
        let (end, word) = ident_at(args, i);
        if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
        let lower = word.to_ascii_lowercase();
        if SEEDISH.iter().any(|s| lower.contains(s)) {
            return true;
        }
        i = end;
    }
    false
}

/// Runs the enabled per-file rules over prepared (stripped) source text.
///
/// `file` is only used to label findings. The input must already have
/// comments, literals, and `#[cfg(test)]` items blanked out — use
/// [`lint_source`] for the full pipeline. The L5 reachability pass is
/// workspace-level and lives in [`reach`]; it is not run here.
pub fn scan(file: &str, prepared: &str, rules: RuleSet, units: &UnitsTable) -> Vec<Finding> {
    let text: Vec<char> = prepared.chars().collect();
    let n = text.len();
    let mut findings = Vec::new();
    // Offsets of `unwrap`/`expect` identifiers already claimed by an L3
    // match, so L1 does not double-report the same token.
    let mut claimed: Vec<usize> = Vec::new();

    // Pass 1: L3 — `.partial_cmp(..).unwrap()` chains (more specific than
    // L1, so it runs first and claims its trailing unwrap/expect).
    let mut i = 0;
    while i < n {
        if !is_ident_char(text[i]) || (i > 0 && is_ident_char(text[i - 1])) {
            i += 1;
            continue;
        }
        let (end, word) = ident_at(&text, i);
        if word == "partial_cmp" {
            let dotted = matches!(prev_nonspace(&text, i), Some((_, '.')));
            if dotted {
                if let Some((open, '(')) = next_nonspace(&text, end) {
                    let close = skip_parens(&text, open);
                    if let Some((dot, '.')) = next_nonspace(&text, close) {
                        if let Some((w, _)) = next_nonspace(&text, dot + 1) {
                            let (_, trailing) = ident_at(&text, w);
                            if trailing == "unwrap" || trailing == "expect" {
                                claimed.push(w);
                                if rules.nan_safety {
                                    findings.push(Finding {
                                        file: file.to_string(),
                                        line: line_of(&text, i),
                                        code: "L3",
                                        token: format!("partial_cmp(..).{trailing}()"),
                                        message:
                                            "NaN-unsafe comparison panics on NaN; \
                                                  use f64::total_cmp or core::num::{argmax, argmin}"
                                                .to_string(),
                                        chain: Vec::new(),
                                        fix: None,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        i = end;
    }

    // Pass 2: identifier-anchored rules (L1, L2, L4, L6).
    let mut i = 0;
    while i < n {
        if !is_ident_char(text[i]) || (i > 0 && is_ident_char(text[i - 1])) {
            i += 1;
            continue;
        }
        let (end, word) = ident_at(&text, i);
        match word.as_str() {
            // L1 — panic paths.
            "unwrap" | "expect" if rules.panic_paths && !claimed.contains(&i) => {
                let dotted = matches!(prev_nonspace(&text, i), Some((_, '.')));
                let called = matches!(next_nonspace(&text, end), Some((_, '(')));
                if dotted && called {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: line_of(&text, i),
                        code: "L1",
                        token: format!(".{word}()"),
                        message: "panic path in library code; return a Result \
                                  (DragsterError / SimError / DagError / GpError)"
                            .to_string(),
                        chain: Vec::new(),
                        fix: None,
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if rules.panic_paths => {
                if matches!(next_nonspace(&text, end), Some((_, '!'))) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: line_of(&text, i),
                        code: "L1",
                        token: format!("{word}!"),
                        message: "panic path in library code; return a Result instead".to_string(),
                        chain: Vec::new(),
                        fix: None,
                    });
                }
            }
            // L6 (claims from L2 when enabled) — unseeded entropy sources.
            "thread_rng" if rules.rng_streams || rules.determinism => {
                let (code, msg): (&'static str, &str) = if rules.rng_streams {
                    (
                        "L6",
                        "ambient entropy breaks RNG-stream discipline; \
                            derive a named stream via Rng::new(seed ^ STREAM_SALT)",
                    )
                } else {
                    (
                        "L2",
                        "unseeded RNG breaks run reproducibility; \
                            use the seeded sim::Rng",
                    )
                };
                findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(&text, i),
                    code,
                    token: word,
                    message: msg.to_string(),
                    chain: Vec::new(),
                    fix: None,
                });
            }
            "from_entropy" | "from_os_rng" | "OsRng" | "getrandom" if rules.rng_streams => {
                findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(&text, i),
                    code: "L6",
                    token: word,
                    message: "OS entropy is not replayable; every RNG must be \
                              seed_from_u64 of a named stream"
                        .to_string(),
                    chain: Vec::new(),
                    fix: None,
                });
            }
            "HashMap" | "HashSet" if rules.determinism => {
                findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(&text, i),
                    code: "L2",
                    token: word,
                    message: "unordered iteration breaks determinism; \
                              use BTreeMap/BTreeSet or a Vec"
                        .to_string(),
                    chain: Vec::new(),
                    fix: None,
                });
            }
            "SystemTime" | "Instant" if rules.determinism || rules.rng_streams => {
                // Only `::now()` is result-affecting; the bare type as a
                // field or parameter is not flagged.
                if let Some((c1, ':')) = next_nonspace(&text, end) {
                    if let Some((c2, ':')) = next_nonspace(&text, c1 + 1) {
                        if let Some((w, _)) = next_nonspace(&text, c2 + 1) {
                            let (_, method) = ident_at(&text, w);
                            if method == "now" {
                                let (code, msg): (&'static str, &str) = if rules.rng_streams {
                                    (
                                        "L6",
                                        "wall-clock reads are ambient entropy; \
                                            derive time from the simulated slot index",
                                    )
                                } else {
                                    (
                                        "L2",
                                        "wall-clock reads make runs irreproducible; \
                                            derive time from the simulated slot index",
                                    )
                                };
                                findings.push(Finding {
                                    file: file.to_string(),
                                    line: line_of(&text, i),
                                    code,
                                    token: format!("{word}::now"),
                                    message: msg.to_string(),
                                    chain: Vec::new(),
                                    fix: None,
                                });
                            }
                        }
                    }
                }
            }
            // L6 — RNG constructions must name their seed/stream.
            w2 if rules.rng_streams && w2.ends_with("Rng") => {
                if let Some((c1, ':')) = next_nonspace(&text, end) {
                    if let Some((c2, ':')) = next_nonspace(&text, c1 + 1) {
                        if let Some((m, mc)) = next_nonspace(&text, c2 + 1) {
                            if is_ident_char(mc) {
                                let (mend, method) = ident_at(&text, m);
                                if method == "new" {
                                    if let Some((open, '(')) = next_nonspace(&text, mend) {
                                        let close = skip_parens(&text, open);
                                        let args = &text[open + 1..close.saturating_sub(1)];
                                        if !args_name_a_seed(args) {
                                            findings.push(Finding {
                                                file: file.to_string(),
                                                line: line_of(&text, i),
                                                code: "L6",
                                                token: format!("{word}::new"),
                                                message: "RNG constructed without a named \
                                                          seed/stream; pass a seed literal or a \
                                                          value derived from a FaultPlan/noise \
                                                          stream salt"
                                                    .to_string(),
                                                chain: Vec::new(),
                                                fix: None,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // L4 — lossy float→int casts in numeric crates.
            "as" if rules.lossy_casts => {
                if let Some((w, c)) = next_nonspace(&text, end) {
                    if is_ident_char(c) {
                        let (_, ty) = ident_at(&text, w);
                        if INT_TYPES.contains(&ty.as_str()) {
                            findings.push(Finding {
                                file: file.to_string(),
                                line: line_of(&text, i),
                                code: "L4",
                                token: format!("as {ty}"),
                                message: "silent truncation in a numeric path; \
                                          use a named checked conversion helper"
                                    .to_string(),
                                chain: Vec::new(),
                                fix: None,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i = end;
    }

    // Pass 3: L8 — unchecked indexing/slicing.
    if rules.indexing {
        findings.extend(scan_indexing(file, &text));
    }

    // Pass 4: L7 — unit-suffix consistency.
    if rules.units {
        findings.extend(scan_units(file, &text, units));
    }

    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    findings
}

/// L8: flags `expr[..]` where `expr` ends in an identifier, `)`, `]`, or
/// `?`. Slice types (`&[f64]`), array literals, patterns, and attribute
/// brackets are structurally excluded because their `[` is not preceded
/// by an expression tail.
fn scan_indexing(file: &str, text: &[char]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for i in 0..text.len() {
        if text[i] != '[' {
            continue;
        }
        // Indexing is written flush against the expression (`xs[i]`);
        // whitespace before the bracket means type syntax (`&'a [f64]`,
        // `-> [f64; 2]`), not a subscript.
        let Some(p) = i.checked_sub(1) else {
            continue;
        };
        let pc = text[p];
        if pc.is_whitespace() {
            continue;
        }
        let token;
        let mut fix = None;
        if pc == ')' || pc == ']' || pc == '?' {
            token = "[".to_string();
        } else if is_ident_char(pc) {
            let (start, word) = ident_ending_at(text, p);
            if NON_INDEX_KEYWORDS.contains(&word.as_str())
                || word.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                continue;
            }
            token = format!("{word}[");
            // Mechanical rewrite `xs[i]` -> `xs.get(i)` when the subscript
            // closes on the same statement. Advisory: the caller still has
            // to handle the resulting Option.
            if let Some(close) = bracket_close(text, i) {
                let inner: String = text[i + 1..close].iter().collect();
                if !inner.trim().is_empty() && !inner.contains("..") {
                    let original: String = text[start..=close].iter().collect();
                    fix = Some(FixIt {
                        description: "replace unchecked indexing with .get(); \
                                      handle the returned Option explicitly"
                            .to_string(),
                        original,
                        replacement: format!("{word}.get({})", inner.trim()),
                    });
                }
            }
        } else {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: line_of(text, i),
            code: "L8",
            token,
            message: "unchecked indexing/slicing can panic; use \
                      .get()/.get_mut() with an explicit fallback"
                .to_string(),
            chain: Vec::new(),
            fix,
        });
    }
    findings
}

/// L7: flags additive/comparison/assignment operators whose operands
/// carry different unit dimensions per the [`UnitsTable`]. `*` and `/`
/// are exempt (they change dimension — that is how conversions are
/// annotated); method-call operands are not resolvable and are skipped.
fn scan_units(file: &str, text: &[char], units: &UnitsTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    let n = text.len();
    let mut i = 0;
    while i < n {
        let c = text[i];
        let next = if i + 1 < n { Some(text[i + 1]) } else { None };
        let prev = if i > 0 { Some(text[i - 1]) } else { None };
        // Identify a binary operator and its width.
        let op_len: usize = match c {
            '+' | '-' => {
                if c == '-' && next == Some('>') {
                    i += 2; // ->
                    continue;
                }
                if next == Some('=') {
                    2 // += -=
                } else {
                    1
                }
            }
            '<' | '>' => {
                if next == Some(c) {
                    i += 2; // shift
                    continue;
                }
                if prev == Some('-') || prev == Some('=') {
                    i += 1; // tail of -> or =>
                    continue;
                }
                if next == Some('=') {
                    2
                } else {
                    1
                }
            }
            '=' => {
                if next == Some('>') {
                    i += 2; // =>
                    continue;
                }
                if matches!(
                    prev,
                    Some('=' | '<' | '>' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')
                ) {
                    i += 1; // second char of a compound operator
                    continue;
                }
                if next == Some('=') {
                    2
                } else {
                    1
                }
            }
            '!' if next == Some('=') => 2,
            _ => {
                i += 1;
                continue;
            }
        };
        let op: String = text[i..(i + op_len).min(n)].iter().collect();

        // LHS: the trailing identifier of the left operand. If the ident
        // is itself the right factor of a `*`/`/`, the operand's
        // dimension was transformed by the conversion — skip it.
        let lhs = prev_nonspace(text, i).and_then(|(p, pc)| {
            if is_ident_char(pc) {
                let (start, word) = ident_ending_at(text, p);
                let first = word.chars().next()?;
                if first.is_ascii_digit() {
                    return None;
                }
                if start > 0 {
                    if let Some((_, before)) = prev_nonspace(text, start) {
                        if before == '*' || before == '/' {
                            return None;
                        }
                    }
                }
                Some(word)
            } else {
                None
            }
        });
        // RHS: the trailing identifier of the right operand's leading
        // field chain (`self.cost_usd` -> `cost_usd`); calls disqualify.
        let rhs = rhs_trailing_ident(text, i + op_len);

        if let (Some(l), Some(r)) = (lhs, rhs) {
            let dl = units.dimension_of(&l);
            let dr = units.dimension_of(&r);
            if let (Some(dl), Some(dr)) = (dl, dr) {
                if dl != dr {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: line_of(text, i),
                        code: "L7",
                        token: format!("{l} {op} {r}"),
                        message: format!(
                            "mixes units: `{l}` is {dl} but `{r}` is {dr}; convert \
                             explicitly (multiply/divide by a conversion factor) or rename"
                        ),
                        chain: Vec::new(),
                        fix: None,
                    });
                }
            }
        }
        i += op_len;
    }
    findings
}

/// Reads the right operand starting after an operator and returns the
/// trailing identifier of its leading field chain, or `None` if the
/// operand opens with a call, paren, or literal.
fn rhs_trailing_ident(text: &[char], mut j: usize) -> Option<String> {
    let n = text.len();
    while j < n && text[j].is_whitespace() {
        j += 1;
    }
    // Skip leading reference/deref sigils.
    while j < n && (text[j] == '&' || text[j] == '*') {
        j += 1;
    }
    if j >= n || !is_ident_char(text[j]) || text[j].is_ascii_digit() {
        return None;
    }
    let mut last;
    let mut end;
    loop {
        let (e, word) = ident_at(text, j);
        last = word;
        end = e;
        match next_nonspace(text, end) {
            Some((d, '.')) => {
                let Some((k, kc)) = next_nonspace(text, d + 1) else {
                    break;
                };
                if !is_ident_char(kc) || kc.is_ascii_digit() {
                    break;
                }
                j = k;
            }
            Some((_, '(')) => return None, // call — not resolvable
            _ => break,
        }
    }
    if last.is_empty() {
        return None;
    }
    // Skip `as <type>` casts (a cast keeps the unit), then bail if the
    // operand continues with `*`/`/` — the conversion changes dimension.
    let mut k = end;
    loop {
        match next_nonspace(text, k) {
            Some((a, ac)) if is_ident_char(ac) => {
                let (aend, word) = ident_at(text, a);
                if word == "as" {
                    match next_nonspace(text, aend) {
                        Some((t, tc)) if is_ident_char(tc) => {
                            let (tend, _) = ident_at(text, t);
                            k = tend;
                            continue;
                        }
                        _ => break,
                    }
                }
                break;
            }
            Some((_, '*')) | Some((_, '/')) => return None,
            _ => break,
        }
    }
    Some(last)
}

/// Full pipeline for one file's source text: strip, drop `#[cfg(test)]`
/// items, then scan with `rules` and the default units table.
///
/// Note: the L5 reachability pass needs the whole workspace and is run by
/// [`lint_workspace`] / [`reach::panic_reachability`], not here.
pub fn lint_source(file: &str, source: &str, rules: RuleSet) -> Vec<Finding> {
    lint_source_with_units(file, source, rules, &UnitsTable::default())
}

/// [`lint_source`] with an explicit units table.
pub fn lint_source_with_units(
    file: &str,
    source: &str,
    rules: RuleSet,
    units: &UnitsTable,
) -> Vec<Finding> {
    scan(file, &prep::prepare(source), rules, units)
}

/// Runs the single-file rules *and* the L5 reachability pass over a set
/// of sources (used by file mode and the fixture tests). Each entry is
/// `(label, source)`; all files are modeled as one crate named `fixture`.
pub fn lint_files_semantic(sources: &[(String, String)], rules: RuleSet) -> Vec<Finding> {
    let units = UnitsTable::default();
    let mut findings = Vec::new();
    let mut prepared_set = Vec::new();
    for (label, source) in sources {
        let prepared = prep::prepare(source);
        findings.extend(scan(label, &prepared, rules, &units));
        prepared_set.push((label.clone(), "fixture".to_string(), prepared));
    }
    if rules.reachability || rules.dataflow || rules.intervals || rules.cost || rules.coverage {
        let model = model::Model::build(prepared_set);
        if rules.reachability {
            let filter = reach::SiteFilter {
                macros_and_unwrap: !rules.panic_paths,
                indexing: !rules.indexing,
            };
            findings.extend(reach::panic_reachability(&model, &filter));
        }
        if rules.dataflow {
            findings.extend(dataflow::flow_analysis(
                &model,
                &taint::FlowConfig::default(),
            ));
        }
        if rules.intervals {
            let outcome = absint::interval_analysis(&model, &absint::AbsintConfig::default());
            suppress_resolved_divisors(&mut findings, &outcome.resolved_divs);
            findings.extend(outcome.findings);
        }
        if rules.cost {
            findings.extend(cost::cost_analysis(&model, &cost::CostConfig::default()).findings);
        }
        if rules.coverage {
            findings.extend(coverage::coverage_analysis(
                &model,
                &coverage::CoverageConfig::default(),
            ));
        }
    }
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.code).cmp(&(b.file.clone(), b.line, b.code)));
    findings
}

/// Drops L5 div/rem findings whose divisor the interval analysis proved
/// nonzero on every path (`resolved` holds `(file, line, divisor)`).
fn suppress_resolved_divisors(
    findings: &mut Vec<Finding>,
    resolved: &std::collections::BTreeSet<(String, usize, String)>,
) {
    if resolved.is_empty() {
        return;
    }
    findings.retain(|f| {
        if f.code != "L5" {
            return true;
        }
        let Some(div) = f
            .token
            .strip_prefix("/ ")
            .or_else(|| f.token.strip_prefix("% "))
        else {
            return true;
        };
        !resolved.contains(&(f.file.clone(), f.line, div.to_string()))
    });
}

// ---------------------------------------------------------------------------
// Configuration (lint.toml): allowlist + units table.
// ---------------------------------------------------------------------------

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path. A value ending in `/` is a directory
    /// prefix and suppresses matching findings in every file under it;
    /// anything else is a suffix match against the finding's path.
    pub path: String,
    /// Lint code this entry suppresses (`"L1"`..`"L8"`).
    pub lint: String,
    /// Optional token filter; when set, only findings whose token
    /// contains this string are suppressed.
    pub token: String,
    /// Mandatory human-readable reason. Entries without one are rejected.
    pub justification: String,
}

impl AllowEntry {
    /// Whether this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        let file = f.file.replace('\\', "/");
        let path_ok = if self.path.ends_with('/') {
            // Directory entry: anchored at the workspace root or at any
            // path component boundary.
            file.starts_with(&self.path) || file.contains(&format!("/{}", self.path))
        } else {
            file.ends_with(&self.path)
        };
        let lint_ok = f.code == self.lint;
        let token_ok = self.token.is_empty() || f.token.contains(&self.token);
        path_ok && lint_ok && token_ok
    }
}

/// Parsed `lint.toml`: the allowlist, the `[units]` table, the `[flow]`
/// source/sanitizer/sink patterns for L9–L12, and the `[domains]` /
/// `[contracts]` tables for the L13–L15 interval passes.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    pub allow: Vec<AllowEntry>,
    pub units: UnitsTable,
    pub flow: taint::FlowConfig,
    pub absint: absint::AbsintConfig,
    pub cost: cost::CostConfig,
    pub coverage: coverage::CoverageConfig,
}

/// Splits one fragment of a `["a", "b"]` array body into its elements.
fn array_elements(fragment: &str, out: &mut Vec<String>) {
    for part in fragment.split(',') {
        let v = part.trim().trim_matches('"');
        if !v.is_empty() {
            out.push(v.to_string());
        }
    }
}

/// Parses the minimal TOML dialect used by `lint.toml`: `[[allow]]`
/// tables, a `[units]` section of `key = "value"` pairs, and a `[flow]`
/// section of `key = ["pattern", ...]` arrays (single- or multi-line),
/// with `#` comments and blank lines. Returns the config or a validation
/// error message.
pub fn parse_config(text: &str) -> Result<LintConfig, String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Section {
        None,
        Allow,
        Units,
        Flow,
        Domains,
        Contracts,
        Cost,
        Bounds,
        Complexity,
        Coverage,
    }
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut units = UnitsTable::default();
    let mut flow = taint::FlowConfig::default();
    let mut domains = absint::DomainsTable::defaults();
    let mut cost_cfg = cost::CostConfig::default();
    let mut coverage_cfg = coverage::CoverageConfig::default();
    // Contract bounds may name `[domains]` keys, so they resolve after
    // the whole file is read: (key, lo_raw, hi_raw, line).
    let mut contract_raw: Vec<(String, String, String, usize)> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    let mut section = Section::None;
    // An array value opened with `[` but not yet closed with `]`, with the
    // section whose `set_key` consumes it on close.
    let mut open_array: Option<(Section, String, Vec<String>)> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((sec, key, mut vals)) = open_array.take() {
            let closes = line.contains(']');
            array_elements(line.trim_end_matches(']'), &mut vals);
            if closes {
                match sec {
                    Section::Flow => flow.set_key(&key, &vals),
                    Section::Cost => cost_cfg.set_key(&key, &vals),
                    Section::Coverage => coverage_cfg.set_key(&key, &vals),
                    _ => Err("array value outside an array section".to_string()),
                }
                .map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
            } else {
                open_array = Some((sec, key, vals));
            }
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            current = Some(AllowEntry::default());
            section = Section::Allow;
            continue;
        }
        if line == "[units]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Units;
            continue;
        }
        if line == "[flow]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Flow;
            continue;
        }
        if line == "[domains]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Domains;
            continue;
        }
        if line == "[contracts]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Contracts;
            continue;
        }
        if line == "[cost]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Cost;
            continue;
        }
        if line == "[bounds]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Bounds;
            continue;
        }
        if line == "[complexity]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Complexity;
            continue;
        }
        if line == "[coverage]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            section = Section::Coverage;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = \"value\"`", ln + 1));
        };
        let key = key.trim().trim_matches('"');
        let raw_value = value.trim();
        let value = raw_value.trim_matches('"').to_string();
        match section {
            Section::Domains => {
                let (lo_s, hi_s) = split_pair(raw_value).ok_or_else(|| {
                    format!(
                        "lint.toml:{}: [domains] values must be `[lo, hi]` pairs",
                        ln + 1
                    )
                })?;
                let lo =
                    parse_numeric_bound(&lo_s).map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
                let hi =
                    parse_numeric_bound(&hi_s).map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
                if lo > hi || lo.is_nan() || hi.is_nan() {
                    return Err(format!(
                        "lint.toml:{}: [domains] `{key}` has lo > hi",
                        ln + 1
                    ));
                }
                domains.set(key, lo, hi);
            }
            Section::Contracts => {
                let (lo_s, hi_s) = split_pair(raw_value).ok_or_else(|| {
                    format!(
                        "lint.toml:{}: [contracts] values must be `[lo, hi]` pairs",
                        ln + 1
                    )
                })?;
                if !key.contains("::") && key.trim().is_empty() {
                    return Err(format!("lint.toml:{}: empty contract key", ln + 1));
                }
                contract_raw.push((key.to_string(), lo_s, hi_s, ln + 1));
            }
            Section::Flow | Section::Cost | Section::Coverage => {
                let Some(body) = raw_value.strip_prefix('[') else {
                    return Err(format!(
                        "lint.toml:{}: values in this section must be string arrays, \
                         got `{raw_value}`",
                        ln + 1
                    ));
                };
                let mut vals = Vec::new();
                if body.contains(']') {
                    array_elements(body.trim_end_matches(']'), &mut vals);
                    match section {
                        Section::Flow => flow.set_key(key, &vals),
                        Section::Cost => cost_cfg.set_key(key, &vals),
                        _ => coverage_cfg.set_key(key, &vals),
                    }
                    .map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
                } else {
                    array_elements(body, &mut vals);
                    open_array = Some((section, key.to_string(), vals));
                }
            }
            Section::Bounds => {
                cost_cfg
                    .add_bound(key, &value)
                    .map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
            }
            Section::Complexity => {
                cost_cfg
                    .add_budget(key, &value)
                    .map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
            }
            Section::Units => {
                if key.is_empty()
                    || !key
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
                {
                    return Err(format!(
                        "lint.toml:{}: unit suffix `{key}` must be lowercase ascii",
                        ln + 1
                    ));
                }
                if value.trim().is_empty() {
                    return Err(format!(
                        "lint.toml:{}: unit suffix `{key}` needs a dimension name",
                        ln + 1
                    ));
                }
                units.set(key, &value);
            }
            Section::Allow => {
                let Some(e) = current.as_mut() else {
                    return Err(format!(
                        "lint.toml:{}: `{key}` outside an [[allow]] table",
                        ln + 1
                    ));
                };
                match key {
                    "path" => e.path = value,
                    "lint" => e.lint = value,
                    "token" => e.token = value,
                    "justification" => e.justification = value,
                    other => {
                        return Err(format!("lint.toml:{}: unknown key `{other}`", ln + 1));
                    }
                }
            }
            Section::None => {
                return Err(format!(
                    "lint.toml:{}: `{key}` outside an [[allow]]/[units] section",
                    ln + 1
                ));
            }
        }
    }
    if let Some((_, key, _)) = open_array {
        return Err(format!("lint.toml: array `{key}` is never closed with `]`"));
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    for (k, e) in entries.iter().enumerate() {
        if e.path.is_empty() {
            return Err(format!("lint.toml allow entry #{}: missing `path`", k + 1));
        }
        if !matches!(
            e.lint.as_str(),
            "L1" | "L2"
                | "L3"
                | "L4"
                | "L5"
                | "L6"
                | "L7"
                | "L8"
                | "L9"
                | "L10"
                | "L11"
                | "L12"
                | "L13"
                | "L14"
                | "L15"
                | "L16"
                | "L17"
                | "L18"
                | "L19"
        ) {
            return Err(format!(
                "lint.toml allow entry #{} ({}): `lint` must be one of L1..L19",
                k + 1,
                e.path
            ));
        }
        if e.justification.trim().is_empty() {
            return Err(format!(
                "lint.toml allow entry #{} ({}): a non-empty `justification` is mandatory",
                k + 1,
                e.path
            ));
        }
    }
    if entries.len() > MAX_ALLOW_ENTRIES {
        return Err(format!(
            "lint.toml has {} allow entries; the budget is {} — fix code instead of allowlisting it",
            entries.len(),
            MAX_ALLOW_ENTRIES
        ));
    }
    // Contracts: compiled-in defaults (re-derived against the possibly
    // overridden domains), then file entries override by key or extend.
    let mut contracts = absint::default_contracts(&domains);
    for (key, lo_s, hi_s, ln) in contract_raw {
        let lo = parse_contract_bound(&lo_s, &domains, false)
            .map_err(|e| format!("lint.toml:{ln}: {e}"))?;
        let hi = parse_contract_bound(&hi_s, &domains, true)
            .map_err(|e| format!("lint.toml:{ln}: {e}"))?;
        if lo > hi || lo.is_nan() || hi.is_nan() {
            return Err(format!("lint.toml:{ln}: contract `{key}` has lo > hi"));
        }
        let c = absint::Contract::new(&key, domain::Interval::range(lo, hi))
            .map_err(|e| format!("lint.toml:{ln}: {e}"))?;
        if let Some(slot) = contracts.iter_mut().find(|c2| c2.key == key) {
            *slot = c;
        } else {
            contracts.push(c);
        }
    }
    Ok(LintConfig {
        allow: entries,
        units,
        flow,
        absint: absint::AbsintConfig { domains, contracts },
        cost: cost_cfg,
        coverage: coverage_cfg,
    })
}

/// Splits a `[a, b]` pair value into its two raw elements.
fn split_pair(raw: &str) -> Option<(String, String)> {
    let body = raw.trim().strip_prefix('[')?.strip_suffix(']')?;
    let (a, b) = body.split_once(',')?;
    if b.contains(',') {
        return None;
    }
    Some((a.trim().to_string(), b.trim().to_string()))
}

/// A `[domains]` bound: a number, `inf`, or `-inf`.
fn parse_numeric_bound(s: &str) -> Result<f64, String> {
    let unq = s.trim().trim_matches('"');
    match unq {
        "inf" | "+inf" => return Ok(f64::INFINITY),
        "-inf" => return Ok(f64::NEG_INFINITY),
        _ => {}
    }
    unq.parse::<f64>()
        .map_err(|_| format!("bound `{s}` is not a number or inf/-inf"))
}

/// A `[contracts]` bound: a number, `inf`/`-inf`, or the *name* of a
/// `[domains]` entry (resolves to that domain's lo or hi depending on
/// which position the bound occupies).
fn parse_contract_bound(
    s: &str,
    domains: &absint::DomainsTable,
    hi_position: bool,
) -> Result<f64, String> {
    if let Ok(v) = parse_numeric_bound(s) {
        return Ok(v);
    }
    let unq = s.trim().trim_matches('"');
    if let Some(iv) = domains.exact(unq) {
        return Ok(if hi_position { iv.hi } else { iv.lo });
    }
    Err(format!(
        "bound `{s}` is not a number, inf, or a [domains] key"
    ))
}

/// Back-compat shim: parses `lint.toml` and returns only the allowlist.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    parse_config(text).map(|c| c.allow)
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        names.push(entry?.path());
    }
    names.sort();
    for path in names {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of a workspace run: surviving findings plus allowlist entries
/// that suppressed nothing (stale entries are themselves an error).
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// Findings not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched at least one finding.
    pub used_entries: Vec<AllowEntry>,
    /// Allowlist entries that matched nothing (stale).
    pub unused_entries: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Raw (pre-allowlist) per-function cost report from the L16/L17/L19
    /// pass — the `--cost-report` / cost-ratchet payload.
    pub cost: cost::CostReport,
}

/// Lints every library and harness crate `src/` tree under `root`:
/// per-file passes (L1–L4, L6–L8) plus the workspace-level L5
/// panic-reachability pass over the library-crate call graph, then
/// applies the allowlist.
///
/// # Errors
/// Returns `Err` with a message if a source directory cannot be read.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> Result<WorkspaceReport, String> {
    let mut report = WorkspaceReport::default();
    let mut used = vec![false; cfg.allow.len()];
    let mut raw: Vec<Finding> = Vec::new();
    // Prepared sources of library crates, for the L5 model.
    let mut model_sources: Vec<(String, String, String)> = Vec::new();
    // Library *and* harness sources: the L9–L12 flow passes also prove
    // that bench drivers respect the sanitize/project gates.
    let mut flow_sources: Vec<(String, String, String)> = Vec::new();

    for krate in LIBRARY_CRATES.iter().chain(HARNESS_CRATES) {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)
            .map_err(|e| format!("cannot read {}: {e}", src.display()))?;
        let rules = RuleSet::for_crate(krate);
        for path in files {
            let source = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            let prepared = prep::prepare(&source);
            raw.extend(scan(&label, &prepared, rules, &cfg.units));
            if LIBRARY_CRATES.contains(krate) {
                model_sources.push((label.clone(), (*krate).to_string(), prepared.clone()));
            }
            flow_sources.push((label, (*krate).to_string(), prepared));
        }
    }

    // L5: panic-reachability over the library-crate call graph. L1 and L8
    // are enabled for every library crate, so those site kinds are
    // claimed; L5 contributes div/rem reachability plus call chains.
    let model = model::Model::build(model_sources);
    let filter = reach::SiteFilter {
        macros_and_unwrap: false,
        indexing: false,
    };
    raw.extend(reach::panic_reachability(&model, &filter));

    // L9–L12: interprocedural taint/dataflow over library + harness code.
    let flow_model = model::Model::build(flow_sources);
    raw.extend(dataflow::flow_analysis(&flow_model, &cfg.flow));

    // L13–L15: interval abstract interpretation over the library model.
    // Divisors the intervals *prove* nonzero retract the corresponding
    // L5 findings (the syntactic guard check is subsumed by the proof).
    let outcome = absint::interval_analysis(&model, &cfg.absint);
    suppress_resolved_divisors(&mut raw, &outcome.resolved_divs);
    raw.extend(outcome.findings);

    // L16/L17/L19: static hot-path cost model over the library call
    // graph. The raw per-function report is kept pre-allowlist: the
    // allowlist can justify individual sites, but the cost ratchet
    // tracks the true totals.
    let cost_outcome = cost::cost_analysis(&model, &cfg.cost);
    raw.extend(cost_outcome.findings);
    report.cost = cost_outcome.report;

    // L18: checkpoint state-coverage proofs over the library model.
    raw.extend(coverage::coverage_analysis(&model, &cfg.coverage));

    for f in raw {
        let mut suppressed = false;
        for (k, e) in cfg.allow.iter().enumerate() {
            if e.matches(&f) {
                used[k] = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            report.findings.push(f);
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.code).cmp(&(b.file.clone(), b.line, b.code)));
    for (k, e) in cfg.allow.iter().enumerate() {
        if used[k] {
            report.used_entries.push(e.clone());
        } else {
            report.unused_entries.push(e.clone());
        }
    }
    Ok(report)
}

/// Result of applying suggested fixes in place (`--fix`).
#[derive(Clone, Debug, Default)]
pub struct FixOutcome {
    /// `file:line` descriptions of patches written to disk.
    pub applied: Vec<String>,
    /// Fixes that could not be applied (the scanned text no longer
    /// matches, or the rendered original is approximate), with reasons.
    pub skipped: Vec<String>,
}

/// Applies the suggested fixes carried by `findings` directly to the
/// files under `root`. A fix is applied only when the finding's line
/// still contains the rendered `original` exactly (first occurrence);
/// anything else is skipped and reported rather than guessed at. The
/// operation is idempotent: once a fix is applied, re-linting no longer
/// produces the finding, so a second `--fix` run is a no-op.
///
/// # Errors
/// Returns `Err` if a file cannot be read or written.
pub fn apply_fixes(root: &Path, findings: &[Finding]) -> Result<FixOutcome, String> {
    let mut out = FixOutcome::default();
    // Group fixes by file so each file is rewritten at most once.
    let mut by_file: std::collections::BTreeMap<&str, Vec<&Finding>> =
        std::collections::BTreeMap::new();
    for f in findings.iter().filter(|f| f.fix.is_some()) {
        by_file.entry(f.file.as_str()).or_default().push(f);
    }
    for (file, fixes) in by_file {
        let path = root.join(file);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("--fix: cannot read {}: {e}", path.display()))?;
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut touched = false;
        for f in fixes {
            let Some(fix) = &f.fix else { continue };
            let Some(line) = f.line.checked_sub(1).and_then(|i| lines.get_mut(i)) else {
                out.skipped
                    .push(format!("{file}:{}: line out of range", f.line));
                continue;
            };
            if let Some(at) = line.find(&fix.original) {
                line.replace_range(at..at + fix.original.len(), &fix.replacement);
                touched = true;
                out.applied.push(format!(
                    "{file}:{}: `{}` -> `{}`",
                    f.line, fix.original, fix.replacement
                ));
            } else {
                out.skipped.push(format!(
                    "{file}:{}: `{}` not found on the line (edited since the scan, or \
                     the rendered fix is approximate) — apply by hand",
                    f.line, fix.original
                ));
            }
        }
        if touched {
            let mut body = lines.join("\n");
            if text.ends_with('\n') {
                body.push('\n');
            }
            fs::write(&path, body)
                .map_err(|e| format!("--fix: cannot write {}: {e}", path.display()))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_comments_and_literals("a // .unwrap()\nb /* panic! */ c");
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip_comments_and_literals("x /* outer /* inner */ still */ y");
        assert!(!s.contains("inner") && !s.contains("still"));
        assert!(s.contains('x') && s.contains('y'));
    }

    #[test]
    fn strips_string_and_char_literals_but_not_lifetimes() {
        let s = strip_comments_and_literals(
            "fn f<'a>(x: &'a str) { let c = '\\''; let s = \"panic! .unwrap()\"; }",
        );
        assert!(!s.contains("panic"));
        assert!(!s.contains("unwrap"));
        assert!(s.contains("'a"));
    }

    #[test]
    fn strips_raw_strings() {
        let s = strip_comments_and_literals("let s = r#\"has \"quotes\" and panic!\"#; done");
        assert!(!s.contains("panic"));
        assert!(s.contains("done"));
    }

    #[test]
    fn strips_multi_hash_raw_strings() {
        // The body contains a `"#` that would close a single-hash raw
        // string; only `"##` may terminate it.
        let s = strip_comments_and_literals("let s = r##\"inner \"# still panic!\"##; done");
        assert!(!s.contains("panic") && !s.contains("still"));
        assert!(s.contains("done"));
    }

    #[test]
    fn strips_byte_and_raw_byte_strings() {
        let s =
            strip_comments_and_literals("let a = b\"panic!\"; let b2 = br#\"x.unwrap()\"#; tail");
        assert!(!s.contains("panic") && !s.contains("unwrap"));
        assert!(s.contains("tail"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        // `var"..."` must be treated as an identifier followed by an
        // ordinary string, not swallowed as a raw literal.
        let s = strip_comments_and_literals("for vbr in xs { vr(\"q\") } done");
        assert!(s.contains("vbr") && s.contains("vr") && s.contains("done"));
        assert!(!s.contains('q'));
    }

    #[test]
    fn nested_block_comments_preserve_line_numbers() {
        let src = "top\n/* outer /* inner\n*/ tail of outer\n*/\nlet x = y.unwrap();\n";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1, "only the real unwrap fires: {f:#?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn preserves_line_numbers_through_stripping() {
        let src = "line1\n/* multi\nline\ncomment */\nlet x = y.unwrap();\n";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lint_source("t.rs", src, RuleSet::all()).is_empty());
    }

    #[test]
    fn cfg_test_fn_is_skipped_but_rest_is_not() {
        let src = "#[cfg(test)]\nfn helper() { Some(1).unwrap(); }\n\
                   pub fn bad() { Some(1).unwrap(); }\n";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unwrap_or_and_friends_are_legal() {
        let src =
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }\n\
                   pub fn g(x: Result<u32, ()>) -> u32 { x.unwrap_or_default() }";
        assert!(lint_source("t.rs", src, RuleSet::all()).is_empty());
    }

    #[test]
    fn expect_err_is_legal_but_expect_is_not() {
        let ok = "pub fn f(x: Result<(), u32>) -> u32 { x.expect_err(\"want err\") }";
        assert!(lint_source("t.rs", ok, RuleSet::all()).is_empty());
        let bad = "pub fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L1");
    }

    #[test]
    fn partial_cmp_unwrap_is_one_l3_not_l1_plus_l3() {
        let src = "pub fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L3");
    }

    #[test]
    fn partial_cmp_trait_impl_is_legal() {
        let src = "impl PartialOrd for Ev {\n    fn partial_cmp(&self, o: &Self) -> \
                   Option<std::cmp::Ordering> { Some(std::cmp::Ordering::Equal) }\n}";
        assert!(lint_source("t.rs", src, RuleSet::all()).is_empty());
    }

    #[test]
    fn instant_type_is_legal_but_now_is_not() {
        let ok = "pub struct S { t: std::time::Instant }";
        assert!(lint_source("t.rs", ok, RuleSet::all()).is_empty());
        let bad = "pub fn f() { let _ = std::time::Instant::now(); }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.len(), 1);
        // With rng_streams enabled, wall-clock entropy is claimed by L6.
        assert_eq!(f[0].code, "L6");
        assert_eq!(f[0].token, "Instant::now");
        let legacy = RuleSet {
            rng_streams: false,
            ..RuleSet::all()
        };
        let f = lint_source("t.rs", bad, legacy);
        assert_eq!(f[0].code, "L2");
    }

    #[test]
    fn int_to_float_cast_is_legal_float_to_int_is_not() {
        let ok = "pub fn f(x: usize) -> f64 { x as f64 }";
        assert!(lint_source("t.rs", ok, RuleSet::all()).is_empty());
        let bad = "pub fn f(x: f64) -> usize { x as usize }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L4");
        assert_eq!(f[0].token, "as usize");
    }

    #[test]
    fn l4_covers_sim_but_not_baselines() {
        let src = "pub fn f(x: f64) -> usize { x as usize }";
        assert!(lint_source("t.rs", src, RuleSet::for_crate("baselines"))
            .iter()
            .all(|f| f.code != "L4"));
        assert!(lint_source("t.rs", src, RuleSet::for_crate("sim"))
            .iter()
            .any(|f| f.code == "L4"));
        assert!(lint_source("t.rs", src, RuleSet::for_crate("gp"))
            .iter()
            .any(|f| f.code == "L4"));
    }

    #[test]
    fn l6_flags_unseeded_rng_new_but_not_named_streams() {
        let bad = "pub fn f(x: f64) { let r = SmallRng::new(x); }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert!(f.iter().any(|f| f.code == "L6"));
        let ok = "pub fn f(seed: u64) { let r = Rng::new(seed ^ FAULT_STREAM_SALT); \
                  let s = Rng::new(0x5EED); let t = StdRng::seed_from_u64(seed); }";
        assert!(lint_source("t.rs", ok, RuleSet::all())
            .iter()
            .all(|f| f.code != "L6"));
    }

    #[test]
    fn l7_flags_cross_dimension_comparison() {
        let bad = "pub fn f(rate_tps: f64, budget_usd: f64) -> bool { rate_tps < budget_usd }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.iter().filter(|f| f.code == "L7").count(), 1);
        // Multiplication is the conversion idiom and is exempt.
        let ok = "pub fn g(rate_tps: f64, window_secs: f64) -> f64 { rate_tps * window_secs }";
        assert!(lint_source("t.rs", ok, RuleSet::all())
            .iter()
            .all(|f| f.code != "L7"));
        // Same dimension is fine.
        let same = "pub fn h(a_tps: f64, b_tps: f64) -> bool { a_tps < b_tps }";
        assert!(lint_source("t.rs", same, RuleSet::all())
            .iter()
            .all(|f| f.code != "L7"));
    }

    #[test]
    fn l8_flags_indexing_but_not_slice_types_or_attrs() {
        let bad = "pub fn f(v: &[f64], i: usize) -> f64 { v[i] }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.iter().filter(|f| f.code == "L8").count(), 1);
        let ok = "#[derive(Clone)]\npub struct S { xs: [f64; 3] }\n\
                  pub fn g(v: &[f64]) -> f64 { v.first().copied().unwrap_or(0.0) }";
        assert!(lint_source("t.rs", ok, RuleSet::all())
            .iter()
            .all(|f| f.code != "L8"));
    }

    #[test]
    fn units_table_longest_suffix_wins() {
        let mut t = UnitsTable::default();
        t.set("budget_usd", "budget-money");
        assert_eq!(t.dimension_of("total_budget_usd"), Some("budget-money"));
        assert_eq!(t.dimension_of("cost_usd"), Some("money"));
        assert_eq!(t.dimension_of("plain"), None);
    }

    #[test]
    fn config_parses_units_section() {
        let toml = "[units]\ngb = \"memory\"\n\n[[allow]]\npath = \"a.rs\"\nlint = \"L8\"\n\
                    justification = \"x\"\n";
        let cfg = parse_config(toml).expect("parses");
        assert_eq!(cfg.units.dimension_of("heap_gb"), Some("memory"));
        assert_eq!(cfg.allow.len(), 1);
    }

    #[test]
    fn config_parses_flow_section_with_multiline_arrays() {
        let toml = "[flow]\nmetric_sources = [\n    \"FluidSim::run_slot\",\n    # comment\n    \
                    \"DesSim::run\",\n]\nrng_constructors = [\"Rng::new\"]\n";
        let cfg = parse_config(toml).expect("parses");
        let srcs: Vec<String> = cfg
            .flow
            .metric
            .sources
            .iter()
            .map(|p| p.display())
            .collect();
        assert_eq!(srcs, vec!["FluidSim::run_slot", "DesSim::run"]);
        // Keys not present keep their compiled-in defaults.
        assert!(!cfg.flow.decision.sinks.is_empty());
    }

    #[test]
    fn config_rejects_unknown_flow_key() {
        let err = parse_config("[flow]\nbogus = [\"x\"]\n").expect_err("must reject");
        assert!(err.contains("bogus"), "error names the key: {err}");
    }

    #[test]
    fn config_rejects_unterminated_flow_array() {
        assert!(parse_config("[flow]\nmetric_sources = [\n\"a\",\n").is_err());
    }

    #[test]
    fn allowlist_parses_and_validates() {
        let toml = "# comment\n[[allow]]\npath = \"crates/sim/src/des.rs\"\nlint = \"L2\"\n\
                    token = \"HashMap\"\njustification = \"keyed by opaque ids, drained sorted\"\n";
        let entries = parse_allowlist(toml).expect("parses");
        assert_eq!(entries.len(), 1);
        assert!(entries[0].matches(&Finding {
            file: "crates/sim/src/des.rs".into(),
            line: 3,
            code: "L2",
            token: "HashMap".into(),
            message: String::new(),
            chain: Vec::new(),
            fix: None,
        }));
    }

    #[test]
    fn allowlist_rejects_missing_justification_and_overflow() {
        let bad = "[[allow]]\npath = \"a.rs\"\nlint = \"L1\"\n";
        assert!(parse_allowlist(bad).is_err());
        let mut many = String::new();
        for i in 0..(MAX_ALLOW_ENTRIES + 1) {
            many.push_str(&format!(
                "[[allow]]\npath = \"f{i}.rs\"\nlint = \"L1\"\njustification = \"x\"\n"
            ));
        }
        assert!(parse_allowlist(&many).is_err());
    }
}
