//! `dragster-lint` — a dependency-free static-analysis pass over the
//! workspace's library crates, enforcing invariants that clippy cannot
//! express and that the paper's regret guarantee silently depends on:
//!
//! * **L1 — no panic paths.** `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!` are banned outside
//!   `#[cfg(test)]` blocks in library crates. A panic in the saddle-point
//!   loop or the GP update invalidates every figure downstream; errors
//!   must travel as [`Result`]s.
//! * **L2 — determinism.** `thread_rng`, `SystemTime::now`,
//!   `Instant::now`, and `HashMap`/`HashSet` (unordered iteration) are
//!   banned: a fixed seed must reproduce a run bit-for-bit, so library
//!   code uses the seeded `sim::Rng` and `BTreeMap`/`Vec`.
//! * **L3 — NaN-safety.** `.partial_cmp(..).unwrap()` (and `.expect(`)
//!   is banned: one NaN in a GP posterior turns it into a panic. Use
//!   `f64::total_cmp` or the `core::num` argmax/argmin helpers.
//! * **L4 — lossy casts.** `expr as <integer type>` is banned in the
//!   numeric crates (`core`, `gp`), where a silent float→int truncation
//!   corrupts budgets and indices. Int→float (`as f64`) stays legal.
//!
//! The scanner strips comments, string/char literals, and `#[cfg(test)]`
//! items before matching, so rule tokens inside those never fire.
//! Findings are suppressible only through the checked-in `lint.toml`
//! allowlist, and every entry there must carry a justification.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Library crates subject to the invariants (their `src/` trees).
pub const LIBRARY_CRATES: &[&str] = &["core", "gp", "dag", "sim", "baselines", "workloads"];

/// Maximum number of allowlist entries `lint.toml` may carry.
pub const MAX_ALLOW_ENTRIES: usize = 10;

/// Which rule classes to run on a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSet {
    /// L1: panic paths.
    pub panic_paths: bool,
    /// L2: non-determinism sources.
    pub determinism: bool,
    /// L3: NaN-unsafe comparisons.
    pub nan_safety: bool,
    /// L4: lossy float→int `as` casts.
    pub lossy_casts: bool,
}

impl RuleSet {
    /// Every rule enabled — used for fixtures and ad-hoc file checks.
    pub fn all() -> RuleSet {
        RuleSet {
            panic_paths: true,
            determinism: true,
            nan_safety: true,
            lossy_casts: true,
        }
    }

    /// The rules that apply to a given library crate. L4 only bites in
    /// the numeric crates where a truncation corrupts results silently.
    pub fn for_crate(name: &str) -> RuleSet {
        RuleSet {
            panic_paths: true,
            determinism: true,
            nan_safety: true,
            lossy_casts: matches!(name, "core" | "gp"),
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to the scanner (workspace-relative in CLI use).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint code: `"L1"`..`"L4"`.
    pub code: &'static str,
    /// The offending token (e.g. `unwrap`, `HashMap`, `as usize`).
    pub token: String,
    /// Human-readable explanation with the suggested replacement.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.file, self.line, self.code, self.token, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source preparation: strip comments, literals, and #[cfg(test)] items.
// ---------------------------------------------------------------------------

/// Returns a copy of `src` with comments and string/char-literal contents
/// replaced by spaces. Newlines are preserved (including inside block
/// comments and multi-line strings) so byte offsets map to the original
/// line numbers.
pub fn strip_comments_and_literals(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"..", r#".."#, and byte variants br".." etc.
        if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = start;
            while j < n && b[j] == '#' {
                j += 1;
            }
            let hashes = j - start;
            // Must be a quote next, and `r`/`br` must not be the tail of a
            // longer identifier (e.g. `var"` is not a raw string).
            let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
            if j < n && b[j] == '"' && !prev_ident {
                for k in i..=j {
                    out.push(blank(b[k]));
                }
                i = j + 1;
                // Scan to closing quote followed by `hashes` hashes.
                while i < n {
                    if b[i] == '"' {
                        let mut h = 0;
                        while h < hashes && i + 1 + h < n && b[i + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            for k in i..=i + hashes {
                                out.push(blank(b[k]));
                            }
                            i += hashes + 1;
                            break;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' '); // opening quote
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(blank(b[i]));
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime. A lifetime is `'ident` NOT followed by
        // a closing quote; a char literal is everything else after `'`.
        if c == '\'' && i + 1 < n {
            let is_lifetime =
                (b[i + 1].is_alphabetic() || b[i + 1] == '_') && !(i + 2 < n && b[i + 2] == '\'');
            if !is_lifetime {
                out.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(blank(b[i]));
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Blanks out every item annotated `#[cfg(test)]` (the attribute, any
/// attributes stacked after it, and the item body through its matching
/// closing brace or terminating semicolon). Operates on already-stripped
/// source so comments/strings cannot confuse the brace matching.
pub fn strip_cfg_test_items(stripped: &str) -> String {
    let b: Vec<char> = stripped.chars().collect();
    let n = b.len();
    let mut out = b.clone();
    let mut i = 0;
    while i < n {
        if b[i] == '#' {
            if let Some(attr_end) = match_cfg_test_attr(&b, i) {
                let mut j = attr_end;
                // Skip whitespace and any further attributes.
                loop {
                    while j < n && b[j].is_whitespace() {
                        j += 1;
                    }
                    if j < n && b[j] == '#' {
                        j = skip_attr(&b, j);
                    } else {
                        break;
                    }
                }
                // Find the end of the annotated item: a `;` or a balanced
                // `{..}` at paren/bracket depth 0.
                let mut depth = 0i32;
                while j < n {
                    match b[j] {
                        '(' | '[' => depth += 1,
                        ')' | ']' => depth -= 1,
                        ';' if depth == 0 => {
                            j += 1;
                            break;
                        }
                        '{' if depth == 0 => {
                            j = skip_braces(&b, j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for item in out.iter_mut().take(j).skip(i) {
                    if *item != '\n' {
                        *item = ' ';
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out.into_iter().collect()
}

/// If a `#[cfg(test)]` attribute starts at `i`, returns the index just
/// past its closing `]`.
fn match_cfg_test_attr(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    let expect = |tok: &str, j: &mut usize| -> bool {
        while *j < b.len() && b[*j].is_whitespace() {
            *j += 1;
        }
        for c in tok.chars() {
            if *j >= b.len() || b[*j] != c {
                return false;
            }
            *j += 1;
        }
        // Keywords must end at an identifier boundary.
        if tok.chars().all(|c| c.is_alphanumeric()) {
            if *j < b.len() && (b[*j].is_alphanumeric() || b[*j] == '_') {
                return false;
            }
        }
        true
    };
    for tok in ["#", "[", "cfg", "(", "test", ")", "]"] {
        if !expect(tok, &mut j) {
            return None;
        }
    }
    Some(j)
}

/// Skips a balanced `#[...]` attribute starting at `i`; returns the index
/// past its closing bracket.
fn skip_attr(b: &[char], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && b[j] != '[' {
        j += 1;
    }
    let mut depth = 0i32;
    while j < b.len() {
        match b[j] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a balanced `{...}` block starting at the `{` at `i`; returns the
/// index past its closing brace.
fn skip_braces(b: &[char], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// Rule matching on prepared source.
// ---------------------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn line_of(text: &[char], idx: usize) -> usize {
    1 + text[..idx].iter().filter(|&&c| c == '\n').count()
}

fn prev_nonspace(text: &[char], idx: usize) -> Option<(usize, char)> {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        if !text[j].is_whitespace() {
            return Some((j, text[j]));
        }
    }
    None
}

fn next_nonspace(text: &[char], idx: usize) -> Option<(usize, char)> {
    let mut j = idx;
    while j < text.len() {
        if !text[j].is_whitespace() {
            return Some((j, text[j]));
        }
        j += 1;
    }
    None
}

/// Reads the identifier starting at `idx` (must be an ident char).
fn ident_at(text: &[char], idx: usize) -> (usize, String) {
    let mut j = idx;
    while j < text.len() && is_ident_char(text[j]) {
        j += 1;
    }
    (j, text[idx..j].iter().collect())
}

/// Skips a balanced `(...)` starting at the `(` at `i`; returns the index
/// past the closing paren.
fn skip_parens(text: &[char], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < text.len() {
        match text[j] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Runs the enabled rules over prepared (stripped) source text.
///
/// `file` is only used to label findings. The input must already have
/// comments, literals, and `#[cfg(test)]` items blanked out — use
/// [`lint_source`] for the full pipeline.
pub fn scan(file: &str, prepared: &str, rules: RuleSet) -> Vec<Finding> {
    let text: Vec<char> = prepared.chars().collect();
    let n = text.len();
    let mut findings = Vec::new();
    // Offsets of `unwrap`/`expect` identifiers already claimed by an L3
    // match, so L1 does not double-report the same token.
    let mut claimed: Vec<usize> = Vec::new();

    // Pass 1: L3 — `.partial_cmp(..).unwrap()` chains (more specific than
    // L1, so it runs first and claims its trailing unwrap/expect).
    let mut i = 0;
    while i < n {
        if !is_ident_char(text[i]) || (i > 0 && is_ident_char(text[i - 1])) {
            i += 1;
            continue;
        }
        let (end, word) = ident_at(&text, i);
        if word == "partial_cmp" {
            let dotted = matches!(prev_nonspace(&text, i), Some((_, '.')));
            if dotted {
                if let Some((open, '(')) = next_nonspace(&text, end) {
                    let close = skip_parens(&text, open);
                    if let Some((dot, '.')) = next_nonspace(&text, close) {
                        if let Some((w, _)) = next_nonspace(&text, dot + 1) {
                            let (_, trailing) = ident_at(&text, w);
                            if trailing == "unwrap" || trailing == "expect" {
                                claimed.push(w);
                                if rules.nan_safety {
                                    findings.push(Finding {
                                        file: file.to_string(),
                                        line: line_of(&text, i),
                                        code: "L3",
                                        token: format!("partial_cmp(..).{trailing}()"),
                                        message:
                                            "NaN-unsafe comparison panics on NaN; \
                                                  use f64::total_cmp or core::num::{argmax, argmin}"
                                                .to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        i = end;
    }

    // Pass 2: everything else, one identifier at a time.
    let mut i = 0;
    while i < n {
        if !is_ident_char(text[i]) || (i > 0 && is_ident_char(text[i - 1])) {
            i += 1;
            continue;
        }
        let (end, word) = ident_at(&text, i);
        match word.as_str() {
            // L1 — panic paths.
            "unwrap" | "expect" if rules.panic_paths && !claimed.contains(&i) => {
                let dotted = matches!(prev_nonspace(&text, i), Some((_, '.')));
                let called = matches!(next_nonspace(&text, end), Some((_, '(')));
                if dotted && called {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: line_of(&text, i),
                        code: "L1",
                        token: format!(".{word}()"),
                        message: "panic path in library code; return a Result \
                                  (DragsterError / SimError / DagError / GpError)"
                            .to_string(),
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if rules.panic_paths => {
                if matches!(next_nonspace(&text, end), Some((_, '!'))) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: line_of(&text, i),
                        code: "L1",
                        token: format!("{word}!"),
                        message: "panic path in library code; return a Result instead".to_string(),
                    });
                }
            }
            // L2 — non-determinism.
            "thread_rng" if rules.determinism => {
                findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(&text, i),
                    code: "L2",
                    token: word,
                    message: "unseeded RNG breaks run reproducibility; \
                              use the seeded sim::Rng"
                        .to_string(),
                });
            }
            "HashMap" | "HashSet" if rules.determinism => {
                findings.push(Finding {
                    file: file.to_string(),
                    line: line_of(&text, i),
                    code: "L2",
                    token: word,
                    message: "unordered iteration breaks determinism; \
                              use BTreeMap/BTreeSet or a Vec"
                        .to_string(),
                });
            }
            "SystemTime" | "Instant" if rules.determinism => {
                // Only `::now()` is result-affecting; the bare type as a
                // field or parameter is not flagged.
                if let Some((c1, ':')) = next_nonspace(&text, end) {
                    if let Some((c2, ':')) = next_nonspace(&text, c1 + 1) {
                        if let Some((w, _)) = next_nonspace(&text, c2 + 1) {
                            let (_, method) = ident_at(&text, w);
                            if method == "now" {
                                findings.push(Finding {
                                    file: file.to_string(),
                                    line: line_of(&text, i),
                                    code: "L2",
                                    token: format!("{word}::now"),
                                    message: "wall-clock reads make runs irreproducible; \
                                              derive time from the simulated slot index"
                                        .to_string(),
                                });
                            }
                        }
                    }
                }
            }
            // L4 — lossy float→int casts in numeric crates.
            "as" if rules.lossy_casts => {
                if let Some((w, c)) = next_nonspace(&text, end) {
                    if is_ident_char(c) {
                        let (_, ty) = ident_at(&text, w);
                        if INT_TYPES.contains(&ty.as_str()) {
                            findings.push(Finding {
                                file: file.to_string(),
                                line: line_of(&text, i),
                                code: "L4",
                                token: format!("as {ty}"),
                                message: "silent truncation in a numeric path; \
                                          use a named checked conversion helper"
                                    .to_string(),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i = end;
    }
    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    findings
}

/// Full pipeline for one file's source text: strip, drop `#[cfg(test)]`
/// items, then scan with `rules`.
pub fn lint_source(file: &str, source: &str, rules: RuleSet) -> Vec<Finding> {
    let stripped = strip_comments_and_literals(source);
    let prepared = strip_cfg_test_items(&stripped);
    scan(file, &prepared, rules)
}

// ---------------------------------------------------------------------------
// Allowlist (lint.toml).
// ---------------------------------------------------------------------------

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path (suffix match against finding paths).
    pub path: String,
    /// Lint code this entry suppresses (`"L1"`..`"L4"`).
    pub lint: String,
    /// Optional token filter; when set, only findings whose token
    /// contains this string are suppressed.
    pub token: String,
    /// Mandatory human-readable reason. Entries without one are rejected.
    pub justification: String,
}

impl AllowEntry {
    /// Whether this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        let path_ok = f.file.replace('\\', "/").ends_with(&self.path);
        let lint_ok = f.code == self.lint;
        let token_ok = self.token.is_empty() || f.token.contains(&self.token);
        path_ok && lint_ok && token_ok
    }
}

/// Parses the minimal TOML dialect used by `lint.toml`: `[[allow]]`
/// tables of `key = "value"` pairs, `#` comments, blank lines. Returns
/// the entries or a validation error message.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            current = Some(AllowEntry::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = \"value\"`", ln + 1));
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').to_string();
        let Some(e) = current.as_mut() else {
            return Err(format!(
                "lint.toml:{}: `{key}` outside an [[allow]] table",
                ln + 1
            ));
        };
        match key {
            "path" => e.path = value,
            "lint" => e.lint = value,
            "token" => e.token = value,
            "justification" => e.justification = value,
            other => {
                return Err(format!("lint.toml:{}: unknown key `{other}`", ln + 1));
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    for (k, e) in entries.iter().enumerate() {
        if e.path.is_empty() {
            return Err(format!("lint.toml allow entry #{}: missing `path`", k + 1));
        }
        if !matches!(e.lint.as_str(), "L1" | "L2" | "L3" | "L4") {
            return Err(format!(
                "lint.toml allow entry #{} ({}): `lint` must be one of L1..L4",
                k + 1,
                e.path
            ));
        }
        if e.justification.trim().is_empty() {
            return Err(format!(
                "lint.toml allow entry #{} ({}): a non-empty `justification` is mandatory",
                k + 1,
                e.path
            ));
        }
    }
    if entries.len() > MAX_ALLOW_ENTRIES {
        return Err(format!(
            "lint.toml has {} allow entries; the budget is {} — fix code instead of allowlisting it",
            entries.len(),
            MAX_ALLOW_ENTRIES
        ));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        names.push(entry?.path());
    }
    names.sort();
    for path in names {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of a workspace run: surviving findings plus allowlist entries
/// that suppressed nothing (stale entries are themselves an error).
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// Findings not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched at least one finding.
    pub used_entries: Vec<AllowEntry>,
    /// Allowlist entries that matched nothing (stale).
    pub unused_entries: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints every library crate `src/` tree under `root`, applying the
/// allowlist.
///
/// # Errors
/// Returns `Err` with a message if a source directory cannot be read.
pub fn lint_workspace(root: &Path, allow: &[AllowEntry]) -> Result<WorkspaceReport, String> {
    let mut report = WorkspaceReport::default();
    let mut used = vec![false; allow.len()];
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)
            .map_err(|e| format!("cannot read {}: {e}", src.display()))?;
        let rules = RuleSet::for_crate(krate);
        for path in files {
            let source = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            for f in lint_source(&label, &source, rules) {
                let mut suppressed = false;
                for (k, e) in allow.iter().enumerate() {
                    if e.matches(&f) {
                        used[k] = true;
                        suppressed = true;
                        break;
                    }
                }
                if !suppressed {
                    report.findings.push(f);
                }
            }
        }
    }
    for (k, e) in allow.iter().enumerate() {
        if used[k] {
            report.used_entries.push(e.clone());
        } else {
            report.unused_entries.push(e.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_comments_and_literals("a // .unwrap()\nb /* panic! */ c");
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip_comments_and_literals("x /* outer /* inner */ still */ y");
        assert!(!s.contains("inner") && !s.contains("still"));
        assert!(s.contains('x') && s.contains('y'));
    }

    #[test]
    fn strips_string_and_char_literals_but_not_lifetimes() {
        let s = strip_comments_and_literals(
            "fn f<'a>(x: &'a str) { let c = '\\''; let s = \"panic! .unwrap()\"; }",
        );
        assert!(!s.contains("panic"));
        assert!(!s.contains("unwrap"));
        assert!(s.contains("'a"));
    }

    #[test]
    fn strips_raw_strings() {
        let s = strip_comments_and_literals("let s = r#\"has \"quotes\" and panic!\"#; done");
        assert!(!s.contains("panic"));
        assert!(s.contains("done"));
    }

    #[test]
    fn preserves_line_numbers_through_stripping() {
        let src = "line1\n/* multi\nline\ncomment */\nlet x = y.unwrap();\n";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lint_source("t.rs", src, RuleSet::all()).is_empty());
    }

    #[test]
    fn cfg_test_fn_is_skipped_but_rest_is_not() {
        let src = "#[cfg(test)]\nfn helper() { Some(1).unwrap(); }\n\
                   pub fn bad() { Some(1).unwrap(); }\n";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unwrap_or_and_friends_are_legal() {
        let src =
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }\n\
                   pub fn g(x: Result<u32, ()>) -> u32 { x.unwrap_or_default() }";
        assert!(lint_source("t.rs", src, RuleSet::all()).is_empty());
    }

    #[test]
    fn expect_err_is_legal_but_expect_is_not() {
        let ok = "pub fn f(x: Result<(), u32>) -> u32 { x.expect_err(\"want err\") }";
        assert!(lint_source("t.rs", ok, RuleSet::all()).is_empty());
        let bad = "pub fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L1");
    }

    #[test]
    fn partial_cmp_unwrap_is_one_l3_not_l1_plus_l3() {
        let src = "pub fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let f = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L3");
    }

    #[test]
    fn partial_cmp_trait_impl_is_legal() {
        let src = "impl PartialOrd for Ev {\n    fn partial_cmp(&self, o: &Self) -> \
                   Option<std::cmp::Ordering> { Some(std::cmp::Ordering::Equal) }\n}";
        assert!(lint_source("t.rs", src, RuleSet::all()).is_empty());
    }

    #[test]
    fn instant_type_is_legal_but_now_is_not() {
        let ok = "pub struct S { t: std::time::Instant }";
        assert!(lint_source("t.rs", ok, RuleSet::all()).is_empty());
        let bad = "pub fn f() { let _ = std::time::Instant::now(); }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L2");
        assert_eq!(f[0].token, "Instant::now");
    }

    #[test]
    fn int_to_float_cast_is_legal_float_to_int_is_not() {
        let ok = "pub fn f(x: usize) -> f64 { x as f64 }";
        assert!(lint_source("t.rs", ok, RuleSet::all()).is_empty());
        let bad = "pub fn f(x: f64) -> usize { x as usize }";
        let f = lint_source("t.rs", bad, RuleSet::all());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L4");
        assert_eq!(f[0].token, "as usize");
    }

    #[test]
    fn l4_is_off_outside_numeric_crates() {
        let src = "pub fn f(x: f64) -> usize { x as usize }";
        assert!(lint_source("t.rs", src, RuleSet::for_crate("sim")).is_empty());
        assert_eq!(lint_source("t.rs", src, RuleSet::for_crate("gp")).len(), 1);
    }

    #[test]
    fn allowlist_parses_and_validates() {
        let toml = "# comment\n[[allow]]\npath = \"crates/sim/src/des.rs\"\nlint = \"L2\"\n\
                    token = \"HashMap\"\njustification = \"keyed by opaque ids, drained sorted\"\n";
        let entries = parse_allowlist(toml).expect("parses");
        assert_eq!(entries.len(), 1);
        assert!(entries[0].matches(&Finding {
            file: "crates/sim/src/des.rs".into(),
            line: 3,
            code: "L2",
            token: "HashMap".into(),
            message: String::new(),
        }));
    }

    #[test]
    fn allowlist_rejects_missing_justification_and_overflow() {
        let bad = "[[allow]]\npath = \"a.rs\"\nlint = \"L1\"\n";
        assert!(parse_allowlist(bad).is_err());
        let mut many = String::new();
        for i in 0..11 {
            many.push_str(&format!(
                "[[allow]]\npath = \"f{i}.rs\"\nlint = \"L1\"\njustification = \"x\"\n"
            ));
        }
        assert!(parse_allowlist(&many).is_err());
    }
}
