//! CLI for the workspace invariant checker.
//!
//! * `cargo run -p dragster-lint` — lint every library crate's `src/`
//!   tree, applying the `lint.toml` allowlist at the workspace root.
//!   Exits 0 when clean, 1 on findings, 2 on configuration errors.
//! * `cargo run -p dragster-lint -- <file.rs>...` — lint specific files
//!   with every rule enabled and no allowlist (used by the fixture
//!   tests and for ad-hoc checks).

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use dragster_lint::{lint_source, lint_workspace, parse_allowlist, RuleSet};

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p dragster-lint`, the manifest dir is
    // `<root>/crates/lint`; otherwise fall back to the current directory.
    if let Ok(manifest) = env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(&manifest);
        if let Some(root) = p.parent().and_then(|c| c.parent()) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

fn lint_files(paths: &[String]) -> ExitCode {
    let mut total = 0usize;
    for p in paths {
        match fs::read_to_string(p) {
            Ok(source) => {
                for f in lint_source(p, &source, RuleSet::all()) {
                    eprintln!("{f}");
                    total += 1;
                }
            }
            Err(e) => {
                eprintln!("dragster-lint: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        println!("dragster-lint: {} file(s) clean", paths.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("dragster-lint: {total} finding(s)");
        ExitCode::FAILURE
    }
}

fn lint_tree() -> ExitCode {
    let root = workspace_root();
    let allow = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("dragster-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no allowlist file — nothing is suppressed
    };
    let report = match lint_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dragster-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        eprintln!("{f}");
    }
    for e in &report.unused_entries {
        eprintln!(
            "dragster-lint: stale allowlist entry (matched nothing): {} [{}] — remove it",
            e.path, e.lint
        );
    }
    if report.findings.is_empty() && report.unused_entries.is_empty() {
        println!(
            "dragster-lint: {} files clean ({} allowlisted suppression(s))",
            report.files_scanned,
            report.used_entries.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dragster-lint: {} finding(s), {} stale allowlist entr(ies)",
            report.findings.len(),
            report.unused_entries.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        lint_tree()
    } else {
        lint_files(&args)
    }
}
