//! CLI for the workspace invariant checker.
//!
//! * `cargo run -p dragster-lint` — lint every library/harness crate's
//!   `src/` tree (per-file passes plus L5 panic-reachability), applying
//!   the `lint.toml` allowlist at the workspace root. Exits 0 when
//!   clean, 1 on findings, 2 on configuration errors.
//! * `-- --ratchet` — compare surviving findings against the committed
//!   `lint-baseline.json`: fail only on *new* findings, and assert the
//!   total never grows. Exits 0 when the ratchet holds.
//! * `-- --write-baseline` — rewrite `lint-baseline.json` from the
//!   current run (use after paying down debt).
//! * `-- --format sarif` — emit SARIF 2.1.0 on stdout instead of the
//!   human format (diagnostics still go to stderr).
//! * `-- --baseline PATH` — use PATH instead of `lint-baseline.json`.
//! * `-- --explain RULE` — print what a rule enforces, why it exists,
//!   and how to fix a finding (e.g. `-- --explain L9`), then exit.
//! * `-- --fix-dry-run` — additionally print the suggested patches that
//!   mechanical findings (L8, L12) carry; nothing is written to disk.
//! * `-- --fix` — apply those suggested patches in place. Only lines
//!   that still contain the scanned text exactly are rewritten; the
//!   rest are reported for hand-editing. Idempotent: a second run
//!   applies nothing.
//! * `-- --cost-report` — print the per-function hot-path cost report
//!   (L16/L17/L19 raw allocation/loop counts) as JSON on stdout.
//! * `-- --write-cost-baseline` — rewrite `cost-baseline.json` from the
//!   current run (use after paying down hot-path allocations).
//! * `-- --cost-ratchet` — compare the cost report against
//!   `cost-baseline.json`: fail if any hot function gained allocations
//!   or loop depth, or new allocating hot functions appeared.
//! * `cargo run -p dragster-lint -- <file.rs>...` — lint specific files
//!   with every rule enabled (including L5 across the given set, with
//!   call chains for all panic-site kinds) and no allowlist; used by the
//!   fixture tests and for ad-hoc checks.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use dragster_lint::cost::{cost_ratchet, CostReport};
use dragster_lint::report::{explain, ratchet, to_sarif, Baseline};
use dragster_lint::{
    apply_fixes, lint_files_semantic, lint_workspace, parse_config, LintConfig, RuleSet,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Sarif,
}

struct Options {
    format: Format,
    ratchet: bool,
    write_baseline: bool,
    baseline_path: Option<String>,
    explain: Option<String>,
    fix_dry_run: bool,
    fix: bool,
    cost_report: bool,
    cost_ratchet: bool,
    write_cost_baseline: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        ratchet: false,
        write_baseline: false,
        baseline_path: None,
        explain: None,
        fix_dry_run: false,
        fix: false,
        cost_report: false,
        cost_ratchet: false,
        write_cost_baseline: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ratchet" => opts.ratchet = true,
            "--write-baseline" => opts.write_baseline = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value (human|sarif)")?;
                opts.format = match v.as_str() {
                    "human" => Format::Human,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (human|sarif)")),
                };
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                opts.baseline_path = Some(v.clone());
            }
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule code (L1..L19)")?;
                opts.explain = Some(v.clone());
            }
            "--fix-dry-run" => opts.fix_dry_run = true,
            "--fix" => opts.fix = true,
            "--cost-report" => opts.cost_report = true,
            "--cost-ratchet" => opts.cost_ratchet = true,
            "--write-cost-baseline" => opts.write_cost_baseline = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.ratchet && opts.write_baseline {
        return Err("--ratchet and --write-baseline are mutually exclusive".to_string());
    }
    if opts.explain.is_some() && (opts.ratchet || opts.write_baseline || !opts.files.is_empty()) {
        return Err("--explain stands alone (no other modes or file args)".to_string());
    }
    if (opts.ratchet || opts.write_baseline) && !opts.files.is_empty() {
        return Err("baseline modes only apply to workspace runs (no file args)".to_string());
    }
    if opts.fix && opts.fix_dry_run {
        return Err("--fix and --fix-dry-run are mutually exclusive".to_string());
    }
    if opts.cost_ratchet && opts.write_cost_baseline {
        return Err("--cost-ratchet and --write-cost-baseline are mutually exclusive".to_string());
    }
    if (opts.cost_report || opts.cost_ratchet || opts.write_cost_baseline) && !opts.files.is_empty()
    {
        return Err("cost modes only apply to workspace runs (no file args)".to_string());
    }
    Ok(opts)
}

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p dragster-lint`, the manifest dir is
    // `<root>/crates/lint`; otherwise fall back to the current directory.
    if let Ok(manifest) = env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(&manifest);
        if let Some(root) = p.parent().and_then(|c| c.parent()) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

/// `--fix-dry-run`: prints the suggested patches attached to findings
/// (L8/L12 carry them) in a unified-diff-ish format. Nothing is written —
/// the replacements are advisory and need a human to wire up the
/// resulting `Option`/`?` handling.
fn print_fix_patches(findings: &[dragster_lint::Finding]) {
    let with_fix: Vec<_> = findings.iter().filter(|f| f.fix.is_some()).collect();
    if with_fix.is_empty() {
        eprintln!("dragster-lint: no findings carry a suggested fix");
        return;
    }
    for f in &with_fix {
        let Some(fix) = &f.fix else { continue };
        println!("--- {}:{} [{}]", f.file, f.line, f.code);
        println!("  # {}", fix.description);
        println!("  - {}", fix.original);
        println!("  + {}", fix.replacement);
    }
    eprintln!(
        "dragster-lint: {} suggested patch(es) printed (dry run — nothing applied)",
        with_fix.len()
    );
}

/// `--fix`: applies the suggested patches in place and reports what was
/// written and what needs a human.
fn report_applied_fixes(
    root: &std::path::Path,
    findings: &[dragster_lint::Finding],
) -> Result<(), String> {
    let out = apply_fixes(root, findings)?;
    for a in &out.applied {
        println!("fixed {a}");
    }
    for s in &out.skipped {
        eprintln!("dragster-lint: skipped {s}");
    }
    eprintln!(
        "dragster-lint: --fix applied {} patch(es), skipped {}",
        out.applied.len(),
        out.skipped.len()
    );
    Ok(())
}

fn lint_files(paths: &[String], format: Format, fix_dry_run: bool, fix: bool) -> ExitCode {
    let mut sources = Vec::new();
    for p in paths {
        match fs::read_to_string(p) {
            Ok(source) => sources.push((p.clone(), source)),
            Err(e) => {
                eprintln!("dragster-lint: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let findings = lint_files_semantic(&sources, RuleSet::all());
    if format == Format::Sarif {
        print!("{}", to_sarif(&findings));
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
    }
    if fix_dry_run {
        print_fix_patches(&findings);
    }
    if fix {
        // File labels are the paths as given, so apply relative to cwd.
        let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if let Err(e) = report_applied_fixes(&cwd, &findings) {
            eprintln!("dragster-lint: {e}");
            return ExitCode::from(2);
        }
    }
    if findings.is_empty() {
        if format == Format::Human {
            println!("dragster-lint: {} file(s) clean", paths.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("dragster-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn lint_tree(opts: &Options) -> ExitCode {
    let root = workspace_root();
    let cfg = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => match parse_config(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("dragster-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => LintConfig::default(), // no config — nothing suppressed
    };
    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dragster-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.format == Format::Sarif {
        print!("{}", to_sarif(&report.findings));
    } else {
        for f in &report.findings {
            eprintln!("{f}");
        }
    }
    if opts.fix_dry_run {
        print_fix_patches(&report.findings);
    }
    if opts.fix {
        if let Err(e) = report_applied_fixes(&root, &report.findings) {
            eprintln!("dragster-lint: {e}");
            return ExitCode::from(2);
        }
    }
    for e in &report.unused_entries {
        eprintln!(
            "dragster-lint: stale allowlist entry (matched nothing): {} [{}] — remove it",
            e.path, e.lint
        );
    }

    let baseline_path = opts
        .baseline_path
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    if opts.cost_report {
        print!("{}", report.cost.to_json());
    }

    let cost_baseline_path = root.join("cost-baseline.json");
    if opts.write_cost_baseline {
        if let Err(e) = fs::write(&cost_baseline_path, report.cost.to_json()) {
            eprintln!(
                "dragster-lint: cannot write {}: {e}",
                cost_baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "dragster-lint: wrote cost baseline ({} hot function(s), {} allocation(s)) to {}",
            report.cost.functions.len(),
            report.cost.total_allocs(),
            cost_baseline_path.display()
        );
    }

    if opts.cost_ratchet {
        let base = match fs::read_to_string(&cost_baseline_path) {
            Ok(text) => match CostReport::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("dragster-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "dragster-lint: cannot read {}: {e} (run --write-cost-baseline first)",
                    cost_baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        let out = cost_ratchet(&base, &report.cost);
        for (name, n) in &out.new_fns {
            eprintln!(
                "dragster-lint: NEW hot function `{name}` carries {n} allocation(s) \
                 (see --explain L16)"
            );
        }
        for (name, was, now) in &out.grew {
            eprintln!(
                "dragster-lint: hot function `{name}` allocations grew {was} -> {now} \
                 (see --explain L16)"
            );
        }
        for (name, was, now) in &out.deeper {
            eprintln!(
                "dragster-lint: hot function `{name}` loop depth grew {was} -> {now} \
                 (see --explain L19)"
            );
        }
        if out.current_allocs > out.baseline_allocs {
            eprintln!(
                "dragster-lint: hot-path allocations grew {} -> {} — the cost ratchet \
                 only turns one way",
                out.baseline_allocs, out.current_allocs
            );
        }
        if out.can_tighten() {
            eprintln!(
                "dragster-lint: hot-path cost paid down ({} -> {} allocation(s)); rewrite \
                 the baseline with --write-cost-baseline to lock it in",
                out.baseline_allocs, out.current_allocs
            );
        }
        return if out.ok() {
            eprintln!(
                "dragster-lint: cost ratchet holds ({} hot function(s), {} allocation(s))",
                report.cost.functions.len(),
                out.current_allocs
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if opts.write_baseline {
        let base = Baseline::from_findings(&report.findings);
        if let Err(e) = fs::write(&baseline_path, base.to_json()) {
            eprintln!(
                "dragster-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "dragster-lint: wrote baseline with {} finding(s) to {}",
            base.total(),
            baseline_path.display()
        );
        // Stale allowlist entries are still configuration errors.
        return if report.unused_entries.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if opts.ratchet {
        let base = match fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("dragster-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "dragster-lint: cannot read {}: {e} (run --write-baseline first)",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        let out = ratchet(&base, &report.findings);
        for (file, code, token, was, now) in &out.new {
            eprintln!(
                "dragster-lint: NEW debt {file} [{code}] {token}: {was} -> {now} occurrence(s)"
            );
        }
        if out.current_total > out.baseline_total {
            eprintln!(
                "dragster-lint: total findings grew {} -> {} — the ratchet only turns one way",
                out.baseline_total, out.current_total
            );
        }
        if out.can_tighten() {
            eprintln!(
                "dragster-lint: debt paid down ({} -> {}); rewrite the baseline with \
                 --write-baseline to lock it in",
                out.baseline_total, out.current_total
            );
        }
        return if out.ok() && report.unused_entries.is_empty() {
            eprintln!(
                "dragster-lint: ratchet holds ({} baseline finding(s), {} current)",
                out.baseline_total, out.current_total
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if report.findings.is_empty() && report.unused_entries.is_empty() {
        if opts.format == Format::Human {
            println!(
                "dragster-lint: {} files clean ({} allowlisted suppression(s))",
                report.files_scanned,
                report.used_entries.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dragster-lint: {} finding(s), {} stale allowlist entr(ies)",
            report.findings.len(),
            report.unused_entries.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dragster-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(code) = &opts.explain {
        return match explain(code) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("dragster-lint: unknown rule `{code}` (try L1..L19)");
                ExitCode::from(2)
            }
        };
    }
    if opts.files.is_empty() {
        lint_tree(&opts)
    } else {
        lint_files(&opts.files, opts.format, opts.fix_dry_run, opts.fix)
    }
}
