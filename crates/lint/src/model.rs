//! Lightweight workspace model: a tokenizer, an item index (functions and
//! methods with their body spans), and an approximate call graph resolved
//! by path/name. This is deliberately *not* a Rust parser — it is a
//! token-stream approximation good enough to answer "can a panic site be
//! reached from this `pub` item?" with useful precision on this workspace.
//!
//! Over-approximation is accepted (name collisions may add edges);
//! under-approximation is limited to dynamic dispatch through trait
//! objects and function pointers, which the workspace's controller path
//! avoids by design.

use std::collections::BTreeMap;

/// One lexical token of prepared source: an identifier/number word or a
/// single punctuation character.
#[derive(Debug, Clone)]
pub struct Tok {
    pub text: String,
    /// Line number (1-based) in the original file.
    pub line: usize,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes prepared source (comments/literals already blanked) into
/// words and single punctuation characters, tracking line numbers.
pub fn tokenize(prepared: &str) -> Vec<Tok> {
    let chars: Vec<char> = prepared.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_char(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        toks.push(Tok {
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// A function or method in the workspace.
#[derive(Debug, Clone)]
pub struct Item {
    pub crate_name: String,
    /// File-stem module plus inline `mod` nesting (empty for lib.rs root).
    pub module: Vec<String>,
    /// Surrounding `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    pub name: String,
    pub is_pub: bool,
    /// Index into `Model::files`.
    pub file_idx: usize,
    pub line: usize,
    /// Token range `[start, end)` of the parameter list (inside parens).
    pub sig: (usize, usize),
    /// Token range `[start, end)` of the body (inside braces); `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the return type mentions `Result` (drives L12: a caller may
    /// not discard such a value with `let _ =`).
    pub returns_result: bool,
}

impl Item {
    /// Human-readable qualified name, e.g. `sim::FaultState::begin_slot`.
    pub fn qualified(&self) -> String {
        let mut s = self.crate_name.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(o) = &self.owner {
            s.push_str("::");
            s.push_str(o);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// One source file loaded into the model.
pub struct FileSrc {
    /// Workspace-relative label, e.g. `crates/sim/src/faults.rs`.
    pub label: String,
    pub crate_name: String,
    pub tokens: Vec<Tok>,
}

/// A call site extracted from a function body.
#[derive(Debug, Clone)]
pub struct CallRef {
    pub name: String,
    /// The identifier immediately before `::` (e.g. `FaultState` in
    /// `FaultState::new(..)`), if any.
    pub qualifier: Option<String>,
    pub is_method: bool,
}

pub struct Model {
    pub files: Vec<FileSrc>,
    pub items: Vec<Item>,
    /// name -> item indices with that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

const RESERVED: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum", "union", "const",
    "static", "type", "where", "unsafe", "extern", "crate", "super", "self", "Self", "as", "in",
    "move", "dyn", "async", "await", "box",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.contains(&word)
}

/// Crate-visible keyword check for passes that read token streams
/// directly (the dataflow engine mirrors `calls_of`'s call detection).
pub(crate) fn is_reserved_word(word: &str) -> bool {
    is_reserved(word)
}

impl Model {
    /// Builds the model from prepared sources. Each entry is
    /// `(label, crate_name, prepared_source)`.
    pub fn build(sources: Vec<(String, String, String)>) -> Model {
        let mut files = Vec::new();
        let mut items: Vec<Item> = Vec::new();
        for (label, crate_name, prepared) in sources {
            let tokens = tokenize(&prepared);
            let file_idx = files.len();
            let module_root = module_of_label(&label);
            extract_items(&tokens, file_idx, &crate_name, &module_root, &mut items);
            files.push(FileSrc {
                label,
                crate_name,
                tokens,
            });
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, it) in items.iter().enumerate() {
            by_name.entry(it.name.clone()).or_default().push(idx);
        }
        Model {
            files,
            items,
            by_name,
        }
    }

    /// Extracts call sites from an item's body token range.
    pub fn calls_of(&self, item: &Item) -> Vec<CallRef> {
        let Some((start, end)) = item.body else {
            return Vec::new();
        };
        let toks = &self.files[item.file_idx].tokens;
        let mut calls = Vec::new();
        for j in start..end.min(toks.len()) {
            let w = &toks[j].text;
            if w.is_empty()
                || !w
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                continue;
            }
            if is_reserved(w) {
                continue;
            }
            // `name(` — a call; `name!` — a macro (handled as panic sites
            // elsewhere, never call-graph edges).
            let next = toks.get(j + 1).map(|t| t.text.as_str());
            if next != Some("(") {
                continue;
            }
            let prev = if j > start {
                Some(toks[j - 1].text.as_str())
            } else {
                None
            };
            if prev == Some(".") {
                calls.push(CallRef {
                    name: w.clone(),
                    qualifier: None,
                    is_method: true,
                });
            } else if prev == Some(":") && j >= start + 3 && toks[j - 2].text == ":" {
                let q = &toks[j - 3].text;
                let qualifier = if q
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    Some(q.clone())
                } else {
                    None
                };
                calls.push(CallRef {
                    name: w.clone(),
                    qualifier,
                    is_method: false,
                });
            } else {
                calls.push(CallRef {
                    name: w.clone(),
                    qualifier: None,
                    is_method: false,
                });
            }
        }
        calls
    }

    /// Resolves a call to candidate item indices by name, preferring
    /// matches consistent with the qualifier / receiver shape. Name-based
    /// and deliberately over-approximate.
    pub fn resolve(&self, call: &CallRef) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        if call.is_method {
            // Methods live in impl/trait blocks.
            let owned: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.items[i].owner.is_some())
                .collect();
            return owned;
        }
        if let Some(q) = &call.qualifier {
            let crate_q = q.strip_prefix("dragster_").unwrap_or(q.as_str());
            // A qualifier that matches no owner/module/crate names an
            // external type (`BinaryHeap::new`, `u64::from`, …): the call
            // targets code outside the workspace, not every same-named
            // item in it. Returning all candidates here used to drag every
            // constructor into L16's hot set via any `X::new` call.
            return cands
                .iter()
                .copied()
                .filter(|&i| {
                    let it = &self.items[i];
                    it.owner.as_deref() == Some(q.as_str())
                        || it.module.last().map(String::as_str) == Some(q.as_str())
                        || (q == "Self" && it.owner.is_some())
                        || it.crate_name == crate_q
                })
                .collect();
        }
        // Free call: plain functions only.
        cands
            .iter()
            .copied()
            .filter(|&i| self.items[i].owner.is_none())
            .collect()
    }
}

/// Derives the module path component from a file label:
/// `crates/sim/src/faults.rs` -> `["faults"]`; lib.rs/mod.rs/main.rs -> [].
fn module_of_label(label: &str) -> Vec<String> {
    let stem = label
        .rsplit('/')
        .next()
        .unwrap_or(label)
        .trim_end_matches(".rs");
    if stem == "lib" || stem == "mod" || stem == "main" {
        Vec::new()
    } else {
        vec![stem.to_string()]
    }
}

/// Context for brace tracking during item extraction.
enum Ctx {
    Module(String),
    Owner(String),
    Plain,
}

/// Walks a file's token stream and records every `fn` item with its
/// module path, owner type, visibility, and signature/body token ranges.
fn extract_items(
    toks: &[Tok],
    file_idx: usize,
    crate_name: &str,
    module_root: &[String],
    out: &mut Vec<Item>,
) {
    let mut stack: Vec<Ctx> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        match t {
            "mod" => {
                // `mod name { .. }` pushes a module context at its `{`;
                // `mod name;` is an out-of-line module (its file is loaded
                // separately).
                if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if open.text == "{" {
                        stack.push(Ctx::Module(name.text.clone()));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" | "trait" => {
                if let Some((owner, open_idx)) = parse_owner(toks, i) {
                    stack.push(Ctx::Owner(owner));
                    i = open_idx + 1;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                let name = name_tok.text.clone();
                let is_pub = lookback_is_pub(toks, i);
                // Parameter list: first `(` after the name (skipping
                // generics `<..>`).
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" if angle <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let sig_start = j + 1;
                let sig_end = skip_group(toks, j, "(", ")");
                // Body: next `{` or `;` at paren depth 0 (return types may
                // contain parens).
                let mut k = sig_end + 1;
                let mut paren = 0i32;
                let mut body = None;
                let mut returns_result = false;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        ";" if paren == 0 => {
                            k += 1;
                            break;
                        }
                        "{" if paren == 0 => {
                            let close = skip_group(toks, k, "{", "}");
                            body = Some((k + 1, close));
                            k = close + 1;
                            break;
                        }
                        "Result" => returns_result = true,
                        _ => {}
                    }
                    k += 1;
                }
                let mut module = module_root.to_vec();
                let mut owner = None;
                for ctx in &stack {
                    match ctx {
                        Ctx::Module(m) => module.push(m.clone()),
                        Ctx::Owner(o) => owner = Some(o.clone()),
                        Ctx::Plain => {}
                    }
                }
                out.push(Item {
                    crate_name: crate_name.to_string(),
                    module,
                    owner,
                    name,
                    is_pub,
                    file_idx,
                    line: name_tok.line,
                    sig: (sig_start, sig_end),
                    body,
                    returns_result,
                });
                i = k;
            }
            "{" => {
                stack.push(Ctx::Plain);
                i += 1;
            }
            "}" => {
                stack.pop();
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parses the type name an `impl`/`trait` block belongs to, returning
/// `(owner, index_of_open_brace)`. For `impl Trait for Type` the owner is
/// `Type`; for `impl Type` / `trait Name` it is the first path ident.
fn parse_owner(toks: &[Tok], start: usize) -> Option<(String, usize)> {
    let mut j = start + 1;
    // Skip generic parameters directly after the keyword.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            j += 1;
            if angle == 0 {
                break;
            }
        }
    }
    let mut owner: Option<String> = None;
    let mut after_for = false;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = toks[j].text.as_str();
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => {
                return owner.map(|o| (o, j));
            }
            ";" if angle <= 0 => return None,
            "for" if angle <= 0 => {
                after_for = true;
                owner = None;
            }
            "where" if angle <= 0 => {
                // Skip ahead to the opening brace.
                while j < toks.len() && toks[j].text != "{" {
                    j += 1;
                }
                return owner.map(|o| (o, j));
            }
            w if angle <= 0
                && owner.is_none()
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !is_reserved(w) =>
            {
                let _ = after_for;
                owner = Some(w.to_string());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scans backwards from a `fn` keyword for a `pub` marker, stopping at
/// the previous item boundary.
fn lookback_is_pub(toks: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match toks[j].text.as_str() {
            "pub" => return true,
            // Modifiers and visibility-path tokens that may sit between
            // `pub` and `fn`.
            "const" | "unsafe" | "extern" | "async" | "crate" | "super" | "in" | "(" | ")"
            | ":" => continue,
            _ => return false,
        }
    }
    false
}

/// Token-level balanced-group skip: given the index of an `open` token,
/// returns the index of its matching `close` token.
fn skip_group(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < toks.len() {
        let t = toks[j].text.as_str();
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        Model::build(vec![(
            "crates/x/src/lib.rs".to_string(),
            "x".to_string(),
            crate::prep::prepare(src),
        )])
    }

    #[test]
    fn method_call_chains_yield_one_edge_per_link() {
        let src = "pub struct A {}\npub struct B {}\n\
                   impl A { pub fn step(&self) -> B { B {} } }\n\
                   impl B { pub fn leaf(&self) -> f64 { 1.0 } }\n\
                   pub fn drive(a: &A) -> f64 { a.step().leaf() }\n";
        let m = model_of(src);
        let drive = m
            .items
            .iter()
            .find(|i| i.name == "drive")
            .expect("drive is indexed");
        let calls = m.calls_of(drive);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["step", "leaf"], "each chain link is an edge");
        for c in &calls {
            assert!(c.is_method, "`.name(` sites are method calls");
            let cands = m.resolve(c);
            assert_eq!(cands.len(), 1, "`{}` resolves uniquely", c.name);
            assert_eq!(m.items[cands[0]].name, c.name);
        }
    }

    #[test]
    fn qualified_call_keeps_its_written_qualifier() {
        let src = "pub struct Rng {}\nimpl Rng { pub fn new(s: u64) -> Rng { Rng {} } }\n\
                   pub fn f(s: u64) -> Rng { Rng::new(s) }\n\
                   pub fn g() -> Vec<u64> { Vec::new() }\n";
        let m = model_of(src);
        let f = m.items.iter().find(|i| i.name == "f").expect("f indexed");
        let calls = m.calls_of(f);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].qualifier.as_deref(), Some("Rng"));
        // `Vec::new` shares the bare name but not the qualifier — the
        // flow passes rely on the written qualifier to tell them apart.
        let g = m.items.iter().find(|i| i.name == "g").expect("g indexed");
        let vec_new = &m.calls_of(g)[0];
        assert_eq!(vec_new.qualifier.as_deref(), Some("Vec"));
    }

    #[test]
    fn result_returning_items_are_marked() {
        let src = "pub fn fallible() -> Result<(), String> { Ok(()) }\n\
                   pub fn infallible() -> usize { 0 }\n";
        let m = model_of(src);
        let by = |n: &str| m.items.iter().find(|i| i.name == n).expect("indexed");
        assert!(by("fallible").returns_result);
        assert!(!by("infallible").returns_result);
    }
}
