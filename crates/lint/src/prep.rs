//! Source preparation: strip comments, string/char literals, and
//! `#[cfg(test)]` items so the rule passes never fire on tokens inside
//! them. Newlines are preserved throughout so character offsets map back
//! to original line numbers.

/// Returns a copy of `src` with comments and string/char-literal contents
/// replaced by spaces. Newlines are preserved (including inside block
/// comments and multi-line strings) so byte offsets map to the original
/// line numbers.
pub fn strip_comments_and_literals(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"..", r#".."#, and byte variants br".." etc.
        if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = start;
            while j < n && b[j] == '#' {
                j += 1;
            }
            let hashes = j - start;
            // Must be a quote next, and `r`/`br` must not be the tail of a
            // longer identifier (e.g. `var"` is not a raw string).
            let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
            if j < n && b[j] == '"' && !prev_ident {
                for &c in &b[i..=j] {
                    out.push(blank(c));
                }
                i = j + 1;
                // Scan to closing quote followed by `hashes` hashes.
                while i < n {
                    if b[i] == '"' {
                        let mut h = 0;
                        while h < hashes && i + 1 + h < n && b[i + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            for &c in &b[i..=i + hashes] {
                                out.push(blank(c));
                            }
                            i += hashes + 1;
                            break;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' '); // opening quote
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(blank(b[i]));
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime. A lifetime is `'ident` NOT followed by
        // a closing quote; a char literal is everything else after `'`.
        if c == '\'' && i + 1 < n {
            let is_lifetime =
                (b[i + 1].is_alphabetic() || b[i + 1] == '_') && !(i + 2 < n && b[i + 2] == '\'');
            if !is_lifetime {
                out.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(blank(b[i]));
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Blanks out every item annotated `#[cfg(test)]` (the attribute, any
/// attributes stacked after it, and the item body through its matching
/// closing brace or terminating semicolon). Operates on already-stripped
/// source so comments/strings cannot confuse the brace matching.
pub fn strip_cfg_test_items(stripped: &str) -> String {
    let b: Vec<char> = stripped.chars().collect();
    let n = b.len();
    let mut out = b.clone();
    let mut i = 0;
    while i < n {
        if b[i] == '#' {
            if let Some(attr_end) = match_cfg_test_attr(&b, i) {
                let mut j = attr_end;
                // Skip whitespace and any further attributes.
                loop {
                    while j < n && b[j].is_whitespace() {
                        j += 1;
                    }
                    if j < n && b[j] == '#' {
                        j = skip_attr(&b, j);
                    } else {
                        break;
                    }
                }
                // Find the end of the annotated item: a `;` or a balanced
                // `{..}` at paren/bracket depth 0.
                let mut depth = 0i32;
                while j < n {
                    match b[j] {
                        '(' | '[' => depth += 1,
                        ')' | ']' => depth -= 1,
                        ';' if depth == 0 => {
                            j += 1;
                            break;
                        }
                        '{' if depth == 0 => {
                            j = skip_braces(&b, j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for item in out.iter_mut().take(j).skip(i) {
                    if *item != '\n' {
                        *item = ' ';
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out.into_iter().collect()
}

/// If a `#[cfg(test)]` attribute starts at `i`, returns the index just
/// past its closing `]`.
fn match_cfg_test_attr(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    let expect = |tok: &str, j: &mut usize| -> bool {
        while *j < b.len() && b[*j].is_whitespace() {
            *j += 1;
        }
        for c in tok.chars() {
            if *j >= b.len() || b[*j] != c {
                return false;
            }
            *j += 1;
        }
        // Keywords must end at an identifier boundary.
        if tok.chars().all(|c| c.is_alphanumeric())
            && *j < b.len()
            && (b[*j].is_alphanumeric() || b[*j] == '_')
        {
            return false;
        }
        true
    };
    for tok in ["#", "[", "cfg", "(", "test", ")", "]"] {
        if !expect(tok, &mut j) {
            return None;
        }
    }
    Some(j)
}

/// Skips a balanced `#[...]` attribute starting at `i`; returns the index
/// past its closing bracket.
fn skip_attr(b: &[char], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && b[j] != '[' {
        j += 1;
    }
    let mut depth = 0i32;
    while j < b.len() {
        match b[j] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a balanced `{...}` block starting at the `{` at `i`; returns the
/// index past its closing brace.
fn skip_braces(b: &[char], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Full preparation pipeline: strip comments/literals, then blank
/// `#[cfg(test)]` items.
pub fn prepare(source: &str) -> String {
    strip_cfg_test_items(&strip_comments_and_literals(source))
}
