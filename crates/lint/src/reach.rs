//! L5: panic-reachability. Walks the approximate call graph from every
//! `pub` item and reports any path that reaches a panic site, with the
//! full call chain in the finding.
//!
//! Panic sites: `panic!`/`unreachable!`/`todo!`/`unimplemented!`,
//! `.unwrap()`/`.expect(`, unchecked `[..]` indexing, and integer
//! division/remainder by a non-constant divisor.
//!
//! To avoid double-reporting, site kinds already claimed by an enabled
//! per-site lint are skipped: L1 claims the macros and unwrap/expect,
//! L8 claims indexing. In a full workspace run with L1+L8 on, L5 thus
//! nets out to *reachability of integer div/rem* — plus the call-chain
//! context that the per-site lints cannot give. In fixture/file mode with
//! only L5 enabled, every site kind is reported with its chain.

use crate::model::Model;
use crate::Finding;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    PanicMacro,
    UnwrapExpect,
    Index,
    DivRem,
}

#[derive(Debug, Clone)]
pub struct PanicSite {
    pub item: usize,
    pub kind: SiteKind,
    pub line: usize,
    pub token: String,
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Integer type names for the div/rem int-variable heuristic.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Keywords that can legally precede `[` without it being an index
/// expression (`in xs[..]` IS indexing, but `let [a, b] = ..` patterns
/// and slice-type positions are not).
const NON_INDEX_PREV: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "else", "as", "const", "static",
    "where", "move", "dyn", "break",
];

/// Extracts panic sites from one item's body.
pub fn find_sites(model: &Model, item_idx: usize) -> Vec<PanicSite> {
    let item = &model.items[item_idx];
    let Some((start, end)) = item.body else {
        return Vec::new();
    };
    let toks = &model.files[item.file_idx].tokens;
    let end = end.min(toks.len());
    let mut sites = Vec::new();

    // Integer-typed variables in scope: signature params plus typed lets.
    let mut int_vars: Vec<String> = Vec::new();
    collect_int_vars(toks, item.sig.0, item.sig.1, &mut int_vars);
    for j in start..end {
        if toks[j].text == "let" {
            // `let [mut] name : <int-type>`
            let mut k = j + 1;
            if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
                k += 1;
            }
            if let (Some(name), Some(colon), Some(ty)) =
                (toks.get(k), toks.get(k + 1), toks.get(k + 2))
            {
                if colon.text == ":" && INT_TYPES.contains(&ty.text.as_str()) {
                    int_vars.push(name.text.clone());
                }
            }
        }
    }

    for j in start..end {
        let w = toks[j].text.as_str();
        let next = toks.get(j + 1).map(|t| t.text.as_str());
        let prev = if j > 0 {
            Some(toks[j - 1].text.as_str())
        } else {
            None
        };

        // Macros: panic!/unreachable!/todo!/unimplemented!
        if PANIC_MACROS.contains(&w) && next == Some("!") {
            sites.push(PanicSite {
                item: item_idx,
                kind: SiteKind::PanicMacro,
                line: toks[j].line,
                token: format!("{w}!"),
            });
            continue;
        }
        // .unwrap() / .expect(
        if (w == "unwrap" || w == "expect") && prev == Some(".") && next == Some("(") {
            sites.push(PanicSite {
                item: item_idx,
                kind: SiteKind::UnwrapExpect,
                line: toks[j].line,
                token: w.to_string(),
            });
            continue;
        }
        // Unchecked indexing: `expr[..]` where expr ends in an ident, `)`,
        // `]`, or `?`. Attribute brackets are preceded by `#` or `!`.
        if w == "[" {
            if let Some(p) = prev {
                let is_expr_end = p == ")"
                    || p == "]"
                    || p == "?"
                    || (p
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                        && !NON_INDEX_PREV.contains(&p)
                        && !p.chars().next().is_some_and(|c| c.is_ascii_digit()));
                if is_expr_end {
                    let tok = if p
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                    {
                        format!("{p}[")
                    } else {
                        "[".to_string()
                    };
                    sites.push(PanicSite {
                        item: item_idx,
                        kind: SiteKind::Index,
                        line: toks[j].line,
                        token: tok,
                    });
                }
            }
            continue;
        }
        // Integer division/remainder by a non-constant divisor. Only bare
        // integer variables (from the sig or typed lets) count — method
        // results like `.max(1)` or literals are excluded, so `x / n`
        // is flagged while `x / n.max(1)` and `x / 2` are not.
        if (w == "/" || w == "%") && prev.is_some() {
            // Exclude `/=`-style compound-assign double chars? Tokens are
            // single chars; `a /= b` tokenizes `/`, `=` — divisor starts
            // after the `=`.
            let mut r = j + 1;
            if toks.get(r).map(|t| t.text.as_str()) == Some("=") {
                r += 1;
            }
            let Some(rhs) = toks.get(r) else { continue };
            if int_vars.contains(&rhs.text) {
                let after = toks.get(r + 1).map(|t| t.text.as_str());
                // `.`/`(` mean a method result (e.g. `.max(1)`), and `as`
                // means a cast (`/ n as f64` is float division) — neither
                // is a bare int divisor.
                if after != Some(".") && after != Some("(") && after != Some("as") {
                    sites.push(PanicSite {
                        item: item_idx,
                        kind: SiteKind::DivRem,
                        line: toks[j].line,
                        token: format!("{} {}", w, rhs.text),
                    });
                }
            }
        }
    }
    sites
}

/// Collects integer-typed parameter names from a signature token range:
/// `name : [&] [mut] <int-type>`.
fn collect_int_vars(toks: &[crate::model::Tok], start: usize, end: usize, out: &mut Vec<String>) {
    let end = end.min(toks.len());
    let mut j = start;
    while j + 2 < end {
        if toks[j + 1].text == ":" {
            let mut k = j + 2;
            while k < end && (toks[k].text == "&" || toks[k].text == "mut") {
                k += 1;
            }
            if k < end && INT_TYPES.contains(&toks[k].text.as_str()) {
                out.push(toks[j].text.clone());
            }
        }
        j += 1;
    }
}

/// Which site kinds L5 should report, given which per-site lints already
/// claim them in this run.
pub struct SiteFilter {
    pub macros_and_unwrap: bool,
    pub indexing: bool,
}

impl SiteFilter {
    pub fn keeps(&self, kind: SiteKind) -> bool {
        match kind {
            SiteKind::PanicMacro | SiteKind::UnwrapExpect => self.macros_and_unwrap,
            SiteKind::Index => self.indexing,
            SiteKind::DivRem => true,
        }
    }
}

/// BFS from all `pub` items over the approximate call graph; emits one L5
/// finding per reachable panic site, carrying the shortest call chain
/// from some public root.
pub fn panic_reachability(model: &Model, filter: &SiteFilter) -> Vec<Finding> {
    let n = model.items.len();
    // Adjacency: item -> callee items.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, item) in model.items.iter().enumerate() {
        for call in model.calls_of(item) {
            for cand in model.resolve(&call) {
                if cand != i && !adj[i].contains(&cand) {
                    adj[i].push(cand);
                }
            }
        }
    }
    // Multi-source BFS from public roots; `parent` reconstructs chains.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited: Vec<bool> = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (i, item) in model.items.iter().enumerate() {
        if item.is_pub {
            visited[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }

    let mut findings = Vec::new();
    // Deduplicate sites that resolve to the same (file, line, token).
    let mut seen: BTreeMap<(usize, usize, String), ()> = BTreeMap::new();
    for (item_idx, &was_visited) in visited.iter().enumerate() {
        if !was_visited {
            continue;
        }
        for site in find_sites(model, item_idx) {
            if !filter.keeps(site.kind) {
                continue;
            }
            let item = &model.items[site.item];
            let key = (item.file_idx, site.line, site.token.clone());
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, ());
            // Rebuild root -> .. -> item chain.
            let mut chain_rev = vec![site.item];
            let mut cur = site.item;
            while let Some(p) = parent[cur] {
                chain_rev.push(p);
                cur = p;
            }
            let chain: Vec<String> = chain_rev
                .iter()
                .rev()
                .map(|&i| model.items[i].qualified())
                .collect();
            let root = chain.first().cloned().unwrap_or_default();
            let what = match site.kind {
                SiteKind::PanicMacro => "panic macro",
                SiteKind::UnwrapExpect => "unwrap/expect",
                SiteKind::Index => "unchecked indexing",
                SiteKind::DivRem => "integer division/remainder by a runtime value",
            };
            let via = chain.join(" -> ");
            findings.push(Finding {
                file: model.files[item.file_idx].label.clone(),
                line: site.line,
                code: "L5",
                token: site.token.clone(),
                message: format!(
                    "{what} `{}` reachable from pub `{root}` via {via}; make the callee total or prove the bound and allowlist it",
                    site.token
                ),
                chain,
                fix: None,
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}
