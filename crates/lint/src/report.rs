//! Machine-readable output and the CI ratchet.
//!
//! * [`to_sarif`] renders findings as SARIF-lite 2.1.0 (hand-rolled,
//!   dependency-free) for upload as a CI artifact.
//! * [`Baseline`] is the committed `lint-baseline.json`: a multiset of
//!   findings keyed by `(file, code, token)` — line numbers are
//!   deliberately excluded so unrelated edits do not churn the baseline.
//! * [`ratchet`] compares a run against the baseline: CI fails only on
//!   findings *not* in the baseline, and additionally asserts the total
//!   count never grows, so the debt can only be paid down.

use crate::Finding;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// JSON helpers (no serde in this crate — it must lint the workspace even
// when the dependency graph is broken).
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value for parsing the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document (objects, arrays, strings, numbers, literals).
/// Strict enough for round-tripping the files this tool writes.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing garbage at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], p: &mut usize) {
    while *p < c.len() && c[*p].is_whitespace() {
        *p += 1;
    }
}

fn parse_value(c: &[char], p: &mut usize) -> Result<Json, String> {
    skip_ws(c, p);
    let Some(&ch) = c.get(*p) else {
        return Err("unexpected end of input".to_string());
    };
    match ch {
        '{' => {
            *p += 1;
            let mut pairs = Vec::new();
            skip_ws(c, p);
            if c.get(*p) == Some(&'}') {
                *p += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(c, p);
                let Json::Str(key) = parse_value(c, p)? else {
                    return Err(format!("object key must be a string at offset {p}"));
                };
                skip_ws(c, p);
                if c.get(*p) != Some(&':') {
                    return Err(format!("expected ':' at offset {p}"));
                }
                *p += 1;
                let val = parse_value(c, p)?;
                pairs.push((key, val));
                skip_ws(c, p);
                match c.get(*p) {
                    Some(',') => *p += 1,
                    Some('}') => {
                        *p += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {p}")),
                }
            }
        }
        '[' => {
            *p += 1;
            let mut items = Vec::new();
            skip_ws(c, p);
            if c.get(*p) == Some(&']') {
                *p += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(c, p)?);
                skip_ws(c, p);
                match c.get(*p) {
                    Some(',') => *p += 1,
                    Some(']') => {
                        *p += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {p}")),
                }
            }
        }
        '"' => {
            *p += 1;
            let mut s = String::new();
            while let Some(&ch) = c.get(*p) {
                match ch {
                    '"' => {
                        *p += 1;
                        return Ok(Json::Str(s));
                    }
                    '\\' => {
                        *p += 1;
                        let Some(&e) = c.get(*p) else {
                            return Err("unterminated escape".to_string());
                        };
                        match e {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            '/' => s.push('/'),
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'b' => s.push('\u{8}'),
                            'f' => s.push('\u{c}'),
                            'u' => {
                                let hex: String = c
                                    .get(*p + 1..*p + 5)
                                    .ok_or("truncated \\u escape")?
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *p += 4;
                            }
                            other => return Err(format!("bad escape '\\{other}'")),
                        }
                        *p += 1;
                    }
                    _ => {
                        s.push(ch);
                        *p += 1;
                    }
                }
            }
            Err("unterminated string".to_string())
        }
        't' | 'f' | 'n' => {
            for (lit, val) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                let end = *p + lit.len();
                if c.len() >= end && c[*p..end].iter().collect::<String>() == lit {
                    *p = end;
                    return Ok(val);
                }
            }
            Err(format!("bad literal at offset {p}"))
        }
        _ => {
            let start = *p;
            while *p < c.len()
                && (c[*p].is_ascii_digit() || matches!(c[*p], '-' | '+' | '.' | 'e' | 'E'))
            {
                *p += 1;
            }
            let text: String = c[start..*p].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

// ---------------------------------------------------------------------------
// SARIF-lite.
// ---------------------------------------------------------------------------

const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("L1", "panic path in library code"),
    ("L2", "non-determinism source"),
    ("L3", "NaN-unsafe comparison"),
    ("L4", "lossy numeric cast"),
    ("L5", "panic site reachable from a pub item"),
    ("L6", "RNG-stream discipline violation"),
    ("L7", "unit-dimension mismatch"),
    ("L8", "unchecked indexing/slicing"),
];

/// Renders findings as a SARIF 2.1.0 document (the subset GitHub's code
/// scanning upload understands).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dragster-lint\",\n          \"rules\": [\n");
    for (k, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(desc),
            if k + 1 < RULE_DESCRIPTIONS.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (k, f) in findings.iter().enumerate() {
        let mut msg = f.message.clone();
        if !f.chain.is_empty() {
            msg.push_str(" [chain: ");
            msg.push_str(&f.chain.join(" -> "));
            msg.push(']');
        }
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            f.code,
            esc(&format!("{}: {}", f.token, msg)),
            esc(&f.file),
            f.line.max(1),
            if k + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Baseline + ratchet.
// ---------------------------------------------------------------------------

/// The committed debt ledger: a multiset of findings keyed by
/// `(file, code, token)`. Line numbers are excluded on purpose — moving a
/// known finding within its file must not count as a new one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.file.clone(), f.code.to_string(), f.token.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Serializes to the committed `lint-baseline.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"total\": ");
        out.push_str(&self.total().to_string());
        out.push_str(",\n  \"findings\": [\n");
        let n = self.entries.len();
        for (k, ((file, code, token), count)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"code\": \"{}\", \"token\": \"{}\", \"count\": {}}}{}\n",
                esc(file),
                esc(code),
                esc(token),
                count,
                if k + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses `lint-baseline.json`.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = parse_json(text).map_err(|e| format!("lint-baseline.json: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Json::as_usize)
            .ok_or("lint-baseline.json: missing version")?;
        if version != 1 {
            return Err(format!("lint-baseline.json: unsupported version {version}"));
        }
        let mut entries = BTreeMap::new();
        for item in doc
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("lint-baseline.json: missing findings array")?
        {
            let file = item
                .get("file")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing file")?;
            let code = item
                .get("code")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing code")?;
            let token = item
                .get("token")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing token")?;
            let count = item
                .get("count")
                .and_then(Json::as_usize)
                .ok_or("baseline entry missing count")?;
            *entries
                .entry((file.to_string(), code.to_string(), token.to_string()))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }
}

/// Outcome of comparing a run against the committed baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// Finding keys present now but absent (or more numerous) than in the
    /// baseline: `(file, code, token, baseline_count, current_count)`.
    pub new: Vec<(String, String, String, usize, usize)>,
    /// Baseline keys fully fixed (present before, gone now).
    pub fixed: Vec<(String, String, String)>,
    pub baseline_total: usize,
    pub current_total: usize,
}

impl RatchetOutcome {
    /// The ratchet passes iff nothing new appeared and the total did not
    /// grow.
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.current_total <= self.baseline_total
    }

    /// Whether the baseline is stale (debt was paid down) and should be
    /// rewritten with `--write-baseline` to lock in the progress.
    pub fn can_tighten(&self) -> bool {
        self.ok() && (self.current_total < self.baseline_total || !self.fixed.is_empty())
    }
}

/// Compares current findings against the baseline multiset.
pub fn ratchet(baseline: &Baseline, findings: &[Finding]) -> RatchetOutcome {
    let current = Baseline::from_findings(findings);
    let mut out = RatchetOutcome {
        baseline_total: baseline.total(),
        current_total: current.total(),
        ..RatchetOutcome::default()
    };
    for (key, &count) in &current.entries {
        let base = baseline.entries.get(key).copied().unwrap_or(0);
        if count > base {
            out.new
                .push((key.0.clone(), key.1.clone(), key.2.clone(), base, count));
        }
    }
    for key in baseline.entries.keys() {
        if !current.entries.contains_key(key) {
            out.fixed.push(key.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, code: &'static str, token: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            code,
            token: token.to_string(),
            message: "m".to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let findings = vec![
            f("a.rs", "L8", "v["),
            f("a.rs", "L8", "v["),
            f("b.rs", "L5", "% n"),
        ];
        let base = Baseline::from_findings(&findings);
        let json = base.to_json();
        let back = Baseline::from_json(&json).expect("parses");
        assert_eq!(base, back);
        assert_eq!(back.total(), 3);
    }

    #[test]
    fn ratchet_accepts_unchanged_and_moved_findings() {
        let old = vec![f("a.rs", "L8", "v[")];
        let base = Baseline::from_findings(&old);
        // Same finding on a different line is not "new".
        let mut moved = f("a.rs", "L8", "v[");
        moved.line = 99;
        let out = ratchet(&base, &[moved]);
        assert!(out.ok());
        assert!(!out.can_tighten());
    }

    #[test]
    fn ratchet_rejects_new_findings_and_growth() {
        let base = Baseline::from_findings(&[f("a.rs", "L8", "v[")]);
        let grown = vec![f("a.rs", "L8", "v["), f("a.rs", "L8", "w[")];
        let out = ratchet(&base, &grown);
        assert!(!out.ok());
        assert_eq!(out.new.len(), 1);
        // Count growth of an existing key is also new debt.
        let dup = vec![f("a.rs", "L8", "v["), f("a.rs", "L8", "v[")];
        assert!(!ratchet(&base, &dup).ok());
    }

    #[test]
    fn ratchet_notices_paydown() {
        let base = Baseline::from_findings(&[f("a.rs", "L8", "v["), f("b.rs", "L5", "% n")]);
        let out = ratchet(&base, &[f("a.rs", "L8", "v[")]);
        assert!(out.ok());
        assert!(out.can_tighten());
        assert_eq!(out.fixed.len(), 1);
    }

    #[test]
    fn sarif_is_valid_json_with_results() {
        let findings = vec![f("crates/sim/src/faults.rs", "L8", "metric[")];
        let doc = parse_json(&to_sarif(&findings)).expect("sarif parses as json");
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Json::as_arr)
            .expect("results");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("ruleId").and_then(Json::as_str), Some("L8"));
    }

    #[test]
    fn empty_baseline_means_any_finding_is_new() {
        let out = ratchet(&Baseline::default(), &[f("a.rs", "L1", ".unwrap()")]);
        assert!(!out.ok());
    }
}
