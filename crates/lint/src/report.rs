//! Machine-readable output and the CI ratchet.
//!
//! * [`to_sarif`] renders findings as SARIF-lite 2.1.0 (hand-rolled,
//!   dependency-free) for upload as a CI artifact.
//! * [`Baseline`] is the committed `lint-baseline.json`: a multiset of
//!   findings keyed by `(file, code, token)` — line numbers are
//!   deliberately excluded so unrelated edits do not churn the baseline.
//! * [`ratchet`] compares a run against the baseline: CI fails only on
//!   findings *not* in the baseline, and additionally asserts the total
//!   count never grows, so the debt can only be paid down.

use crate::Finding;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// JSON helpers (no serde in this crate — it must lint the workspace even
// when the dependency graph is broken).
// ---------------------------------------------------------------------------

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value for parsing the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document (objects, arrays, strings, numbers, literals).
/// Strict enough for round-tripping the files this tool writes.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing garbage at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], p: &mut usize) {
    while *p < c.len() && c[*p].is_whitespace() {
        *p += 1;
    }
}

fn parse_value(c: &[char], p: &mut usize) -> Result<Json, String> {
    skip_ws(c, p);
    let Some(&ch) = c.get(*p) else {
        return Err("unexpected end of input".to_string());
    };
    match ch {
        '{' => {
            *p += 1;
            let mut pairs = Vec::new();
            skip_ws(c, p);
            if c.get(*p) == Some(&'}') {
                *p += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(c, p);
                let Json::Str(key) = parse_value(c, p)? else {
                    return Err(format!("object key must be a string at offset {p}"));
                };
                skip_ws(c, p);
                if c.get(*p) != Some(&':') {
                    return Err(format!("expected ':' at offset {p}"));
                }
                *p += 1;
                let val = parse_value(c, p)?;
                pairs.push((key, val));
                skip_ws(c, p);
                match c.get(*p) {
                    Some(',') => *p += 1,
                    Some('}') => {
                        *p += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {p}")),
                }
            }
        }
        '[' => {
            *p += 1;
            let mut items = Vec::new();
            skip_ws(c, p);
            if c.get(*p) == Some(&']') {
                *p += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(c, p)?);
                skip_ws(c, p);
                match c.get(*p) {
                    Some(',') => *p += 1,
                    Some(']') => {
                        *p += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {p}")),
                }
            }
        }
        '"' => {
            *p += 1;
            let mut s = String::new();
            while let Some(&ch) = c.get(*p) {
                match ch {
                    '"' => {
                        *p += 1;
                        return Ok(Json::Str(s));
                    }
                    '\\' => {
                        *p += 1;
                        let Some(&e) = c.get(*p) else {
                            return Err("unterminated escape".to_string());
                        };
                        match e {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            '/' => s.push('/'),
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'b' => s.push('\u{8}'),
                            'f' => s.push('\u{c}'),
                            'u' => {
                                let hex: String = c
                                    .get(*p + 1..*p + 5)
                                    .ok_or("truncated \\u escape")?
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *p += 4;
                            }
                            other => return Err(format!("bad escape '\\{other}'")),
                        }
                        *p += 1;
                    }
                    _ => {
                        s.push(ch);
                        *p += 1;
                    }
                }
            }
            Err("unterminated string".to_string())
        }
        't' | 'f' | 'n' => {
            for (lit, val) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                let end = *p + lit.len();
                if c.len() >= end && c[*p..end].iter().collect::<String>() == lit {
                    *p = end;
                    return Ok(val);
                }
            }
            Err(format!("bad literal at offset {p}"))
        }
        _ => {
            let start = *p;
            while *p < c.len()
                && (c[*p].is_ascii_digit() || matches!(c[*p], '-' | '+' | '.' | 'e' | 'E'))
            {
                *p += 1;
            }
            let text: String = c[start..*p].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

// ---------------------------------------------------------------------------
// SARIF-lite.
// ---------------------------------------------------------------------------

const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("L1", "panic path in library code"),
    ("L2", "non-determinism source"),
    ("L3", "NaN-unsafe comparison"),
    ("L4", "lossy numeric cast"),
    ("L5", "panic site reachable from a pub item"),
    ("L6", "RNG-stream discipline violation"),
    ("L7", "unit-dimension mismatch"),
    ("L8", "unchecked indexing/slicing"),
    ("L9", "raw metric reaches a learning sink unsanitized"),
    ("L10", "RNG constructed without seed provenance"),
    ("L11", "decision vector actuated without projection"),
    ("L12", "fallible Result discarded with `let _ =`"),
    (
        "L13",
        "divisor/ln/sqrt operand not proven safe by intervals",
    ),
    ("L14", "cast or counter arithmetic not proven in-range"),
    ("L15", "controller contract violated by computed interval"),
    ("L16", "allocation in the per-slot hot path"),
    ("L17", "hot-path loop without a derivable bound"),
    (
        "L18",
        "checkpoint-carried field missing from a codec direction",
    ),
    ("L19", "hot-path loop nesting exceeds its complexity budget"),
];

/// Long-form rationale, a minimal violating example, and the fix pattern
/// for each rule — rendered by `dragster-lint --explain <RULE>`.
const RULE_EXPLANATIONS: &[(&str, &str)] = &[
    (
        "L1",
        "Why: a panic in the controller loop or GP update aborts the run and\n\
         invalidates every downstream figure; library errors must travel as\n\
         `Result`s so the harness can retry or degrade.\n\
         Violates:  let v = samples.last().unwrap();\n\
         Fix:       let v = samples.last().ok_or(Error::Empty)?;",
    ),
    (
        "L2",
        "Why: a fixed seed must reproduce a run bit-for-bit. Thread RNGs,\n\
         wall clocks, and HashMap iteration order all break replay.\n\
         Violates:  let mut m = std::collections::HashMap::new();\n\
         Fix:       let mut m = std::collections::BTreeMap::new();",
    ),
    (
        "L3",
        "Why: one NaN in a GP posterior turns `.partial_cmp(..).unwrap()`\n\
         into a panic mid-experiment.\n\
         Violates:  xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());\n\
         Fix:       xs.iter().max_by(|a, b| a.total_cmp(b));",
    ),
    (
        "L4",
        "Why: `as` float->int silently truncates, corrupting budgets and\n\
         indices in the numeric crates.\n\
         Violates:  let slots = target as usize;\n\
         Fix:       let slots = checked_floor_to_usize(target)?;",
    ),
    (
        "L5",
        "Why: panic sites behind `pub` entry points are latent aborts; the\n\
         call-graph pass reports the full chain so the callee can be made\n\
         total or the bound proven and allowlisted.\n\
         Violates:  pub fn f(n: u64) -> u64 { g(n) }  fn g(n: u64) -> u64 { 1 / n }\n\
         Fix:       make g total (checked_div) or allowlist with a proof sketch.",
    ),
    (
        "L6",
        "Why: every RNG stream must be named and seeded so experiments are\n\
         replayable; entropy and clock seeding are banned.\n\
         Violates:  let rng = SmallRng::from_entropy();\n\
         Fix:       let rng = Rng::new(master_seed ^ STREAM_SALT);",
    ),
    (
        "L7",
        "Why: adding a rate to a duration (or comparing dollars to slots) is\n\
         a silent unit bug; the `[units]` table maps ident suffixes to\n\
         dimensions and flags mixed +,-,<,= operands.\n\
         Violates:  let x = rate_tps + window_secs;\n\
         Fix:       let tuples = rate_tps * window_secs;  // annotated conversion",
    ),
    (
        "L8",
        "Why: `v[i]` panics on a bad index; controller state must degrade,\n\
         not abort.\n\
         Violates:  let first = rates[0];\n\
         Fix:       let first = rates.first().copied().unwrap_or(0.0);",
    ),
    (
        "L9",
        "Why: fault injection produces NaN/dropout/spike readings; feeding\n\
         them to the GP, estimator, or dual update poisons the learned\n\
         model. The taint pass proves every raw snapshot passes through\n\
         `MetricSanitizer::sanitize` before any learning sink (the paper's\n\
         clean-gating contract), reporting the source->sink call chain.\n\
         Violates:  let m = sim.run_slot(&rates); gp.observe(m)?;\n\
         Fix:       let m = sanitizer.sanitize(sim.run_slot(&rates)); gp.observe(m)?;",
    ),
    (
        "L10",
        "Why: L6 checks that a constructor argument *names* a seed; L10\n\
         checks it *is* one — a local named `seed` bound from entropy or a\n\
         clock is laundering, not provenance. Every RNG value must be\n\
         data-derivable from a master-seed parameter, literal, or const.\n\
         Violates:  let seed = entropy(); Rng::new(seed)\n\
         Fix:       let seed = master_seed ^ STREAM_SALT; Rng::new(seed)",
    ),
    (
        "L11",
        "Why: scaler decisions are unconstrained proposals; actuating or\n\
         cost-metering them without projecting onto the box/budget\n\
         constraint set breaks the regret analysis (and can over-spend the\n\
         cluster). Every decision vector must flow through a projection\n\
         before `reconfigure`/`charge`.\n\
         Violates:  let p = scaler.decide(&m)?; sim.reconfigure(p)?;\n\
         Fix:       let p = project_to_budget(scaler.decide(&m)?.clamped(lo, hi), b); sim.reconfigure(p)?;",
    ),
    (
        "L12",
        "Why: `let _ = fallible()` silently swallows an error the API\n\
         contract requires handling — a failed reconfigure means the slot's\n\
         cost accounting is wrong.\n\
         Violates:  let _ = sim.reconfigure(deployment);\n\
         Fix:       sim.reconfigure(deployment)?;  // or match on the error",
    ),
    (
        "L13",
        "Why: the interval abstract interpreter (absint.rs) computes a sound\n\
         range for every divisor and for every `ln`/`log2`/`log10`/`sqrt`\n\
         operand. If the range still contains zero (or dips negative for\n\
         sqrt, or non-positive for ln) on some path, the guard is missing —\n\
         or tests the wrong variable. Divisors *proven* nonzero retract the\n\
         corresponding syntactic L5 finding, so fixing the math pays down\n\
         both rules at once. The finding carries the derivation chain that\n\
         produced the offending interval.\n\
         Violates:  let d = eps.abs(); x / d            // abs() keeps 0\n\
         Fix:       let d = eps.abs().max(MIN_DIV); x / d",
    ),
    (
        "L14",
        "Why: saturating casts paper over range bugs instead of fixing them.\n\
         The intervals must prove a value is NaN-free and inside the target\n\
         range before it enters `as <int>` or `f64_to_usize_saturating`;\n\
         integer +,-,* on slot/budget/task counters with declared `[domains]`\n\
         bounds must be proven overflow-free within those bounds. Values\n\
         whose only bound is the type range are exempt — the rule proves\n\
         domain math, it does not re-lint every unannotated `x + 1`.\n\
         Violates:  let y = x.clamp(-5.0, 10.0); y as usize   // -5 saturates to 0\n\
         Fix:       let y = x.clamp(0.0, 10.0); y as usize",
    ),
    (
        "L15",
        "Why: Theorem 1's regret bound assumes the controller's numeric\n\
         postconditions — projections land in [0, budget], dual variables\n\
         stay nonnegative, GP variances stay nonnegative. The `[contracts]`\n\
         table in lint.toml declares required output intervals per function\n\
         (or per named binding inside one); the computed summaries must lie\n\
         inside them. A violation reports the full derivation chain from\n\
         the offending expression back through its definitions.\n\
         Violates:  fn dual_update(..) { *lam = *lam + g * grad; }  // can go negative\n\
         Fix:       *lam = (*lam + g * grad).max(0.0);",
    ),
    (
        "L16",
        "Why: Theorem 1's regret bound assumes per-slot controller work is\n\
         negligible next to the slot length; allocations in the decide/\n\
         sanitize/journal path are the first thing that breaks that at\n\
         scale. Everything reachable from the per-slot roots ([cost]\n\
         hot_roots) must reuse storage. Findings carry the root->callee\n\
         chain; the raw counts feed the cost-baseline ratchet.\n\
         Violates:  let caps: Vec<f64> = tasks.iter().map(cap).collect();  // per tick\n\
         Fix:       self.scratch.caps.clear(); self.scratch.caps.extend(tasks.iter().map(cap));",
    ),
    (
        "L17",
        "Why: an unbounded retry/polling loop in the per-slot path turns a\n\
         transient fault into a wedged controller. Every hot loop needs a\n\
         derivable bound: `for .. in` over a finite collection, a counter\n\
         `while` with a monotone step, a draining `while let` (.next/.pop),\n\
         or a declared [bounds] measure naming the termination argument.\n\
         Violates:  while !converged { step(); }\n\
         Fix:       for _ in 0..MAX_ITERS { step(); if converged { break; } }\n\
         or:        [bounds] \"Solver::run\" = \"event horizon bounds the heap\"",
    ),
    (
        "L18",
        "Why: a field added to learner state but forgotten in export_state/\n\
         import_state or the journal codec corrupts recovery silently — the\n\
         restored controller is *almost* the one that crashed. Every named-\n\
         field struct that travels through a codec item must mention each\n\
         field on both the encode and decode sides.\n\
         Violates:  Snap { a, b, ..Default::default() }   // decode forgot `c`\n\
         Fix:       Snap { a, b, c: f(\"c\")? }           // or prove it derived + allowlist",
    ),
    (
        "L19",
        "Why: nested loops over operator/task-sized collections make per-slot\n\
         work superlinear in topology size — exactly the controller-overhead\n\
         wall Demeter/Daedalus report at scale. Hot functions get a loop-\n\
         nesting budget (default 2); deliberate dense kernels raise it\n\
         per-function in [complexity] with justification.\n\
         Violates:  for i in ops { for j in ops { for k in tasks { .. } } }\n\
         Fix:       restructure, or [complexity] \"Gp::refit\" = 3  # dense kernel",
    ),
];

/// The `--explain` text for a rule code (case-insensitive), if known.
pub fn explain(code: &str) -> Option<String> {
    let upper = code.to_ascii_uppercase();
    let long = RULE_EXPLANATIONS
        .iter()
        .find(|(id, _)| *id == upper)
        .map(|(_, text)| *text)?;
    let short = RULE_DESCRIPTIONS
        .iter()
        .find(|(id, _)| *id == upper)
        .map(|(_, d)| *d)
        .unwrap_or("");
    Some(format!("{upper} — {short}\n\n{long}\n"))
}

// ---------------------------------------------------------------------------
// Fingerprints.
// ---------------------------------------------------------------------------

/// Stable identity of a finding: 64-bit FNV-1a over rule, workspace-
/// relative path, and the offending token. Line numbers (and call
/// chains) are excluded so edits that move or re-route a known finding
/// do not churn the baseline; emitted as SARIF `partialFingerprints`.
pub fn partial_fingerprint(f: &Finding) -> String {
    fingerprint_of(f.code, &f.file, &f.token)
}

/// Renders findings as a SARIF 2.1.0 document (the subset GitHub's code
/// scanning upload understands).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dragster-lint\",\n          \"rules\": [\n");
    for (k, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(desc),
            if k + 1 < RULE_DESCRIPTIONS.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (k, f) in findings.iter().enumerate() {
        let mut msg = f.message.clone();
        if !f.chain.is_empty() {
            msg.push_str(" [chain: ");
            msg.push_str(&f.chain.join(" -> "));
            msg.push(']');
        }
        // Suggested fixes carry the replacement as an `insertedContent`
        // on the finding's line; viewers render it as a proposed patch.
        // The original text travels in the fix description (token spans
        // are approximate, so we never claim byte-exact delete regions).
        let fixes = match &f.fix {
            None => String::new(),
            Some(fix) => format!(
                ", \"fixes\": [{{\"description\": {{\"text\": \"{}\"}}, \
                 \"artifactChanges\": [{{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                 \"replacements\": [{{\"deletedRegion\": {{\"startLine\": {}}}, \
                 \"insertedContent\": {{\"text\": \"{}\"}}}}]}}]}}]",
                esc(&format!(
                    "{} (replaces `{}`)",
                    fix.description, fix.original
                )),
                esc(&f.file),
                f.line.max(1),
                esc(&fix.replacement),
            ),
        };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}], \
             \"partialFingerprints\": {{\"dragsterLint/v1\": \"{}\"}}{}}}{}\n",
            f.code,
            esc(&format!("{}: {}", f.token, msg)),
            esc(&f.file),
            f.line.max(1),
            partial_fingerprint(f),
            fixes,
            if k + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Baseline + ratchet.
// ---------------------------------------------------------------------------

/// One baseline entry's descriptive identity (the fingerprint is the
/// key; these fields exist for humans reading the committed file).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineEntry {
    pub file: String,
    pub code: String,
    pub token: String,
    pub count: usize,
}

/// The committed debt ledger: a multiset of findings keyed by
/// [`partial_fingerprint`] (rule + path + token; line numbers excluded on
/// purpose — moving a known finding within its file must not count as a
/// new one). Version 1 files keyed by `(file, code, token)` are migrated
/// on read: the fingerprint is derived from the same three fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<String, BaselineEntry>,
}

impl Baseline {
    pub fn total(&self) -> usize {
        self.entries.values().map(|e| e.count).sum()
    }

    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<String, BaselineEntry> = BTreeMap::new();
        for f in findings {
            let fp = partial_fingerprint(f);
            let e = entries.entry(fp).or_insert_with(|| BaselineEntry {
                file: f.file.clone(),
                code: f.code.to_string(),
                token: f.token.clone(),
                count: 0,
            });
            e.count += 1;
        }
        Baseline { entries }
    }

    /// Serializes to the committed `lint-baseline.json` format (v2).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 2,\n  \"total\": ");
        out.push_str(&self.total().to_string());
        out.push_str(",\n  \"findings\": [\n");
        let n = self.entries.len();
        for (k, (fp, e)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fingerprint\": \"{}\", \"file\": \"{}\", \"code\": \"{}\", \
                 \"token\": \"{}\", \"count\": {}}}{}\n",
                esc(fp),
                esc(&e.file),
                esc(&e.code),
                esc(&e.token),
                e.count,
                if k + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses `lint-baseline.json` (v2 fingerprint-keyed, or v1 migrated
    /// by recomputing fingerprints from the descriptive fields).
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = parse_json(text).map_err(|e| format!("lint-baseline.json: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Json::as_usize)
            .ok_or("lint-baseline.json: missing version")?;
        if version != 1 && version != 2 {
            return Err(format!("lint-baseline.json: unsupported version {version}"));
        }
        let mut entries: BTreeMap<String, BaselineEntry> = BTreeMap::new();
        for item in doc
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("lint-baseline.json: missing findings array")?
        {
            let file = item
                .get("file")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing file")?;
            let code = item
                .get("code")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing code")?;
            let token = item
                .get("token")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing token")?;
            let count = item
                .get("count")
                .and_then(Json::as_usize)
                .ok_or("baseline entry missing count")?;
            let fp = match item.get("fingerprint").and_then(Json::as_str) {
                Some(fp) if version == 2 => fp.to_string(),
                // v1 (or a hand-edited v2 entry without a fingerprint):
                // derive it from the descriptive fields.
                _ => fingerprint_of(code, file, token),
            };
            let e = entries.entry(fp).or_insert_with(|| BaselineEntry {
                file: file.to_string(),
                code: code.to_string(),
                token: token.to_string(),
                count: 0,
            });
            e.count += count;
        }
        Ok(Baseline { entries })
    }
}

/// 64-bit FNV-1a over the raw identity fields; also the v1-baseline
/// migration path, where no `Finding` exists.
fn fingerprint_of(code: &str, file: &str, token: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [code, file, token] {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Outcome of comparing a run against the committed baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// Finding keys present now but absent (or more numerous) than in the
    /// baseline: `(file, code, token, baseline_count, current_count)`.
    pub new: Vec<(String, String, String, usize, usize)>,
    /// Baseline keys fully fixed (present before, gone now).
    pub fixed: Vec<(String, String, String)>,
    pub baseline_total: usize,
    pub current_total: usize,
}

impl RatchetOutcome {
    /// The ratchet passes iff nothing new appeared and the total did not
    /// grow.
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.current_total <= self.baseline_total
    }

    /// Whether the baseline is stale (debt was paid down) and should be
    /// rewritten with `--write-baseline` to lock in the progress.
    pub fn can_tighten(&self) -> bool {
        self.ok() && (self.current_total < self.baseline_total || !self.fixed.is_empty())
    }
}

/// Compares current findings against the baseline multiset.
pub fn ratchet(baseline: &Baseline, findings: &[Finding]) -> RatchetOutcome {
    let current = Baseline::from_findings(findings);
    let mut out = RatchetOutcome {
        baseline_total: baseline.total(),
        current_total: current.total(),
        ..RatchetOutcome::default()
    };
    for (fp, e) in &current.entries {
        let base = baseline.entries.get(fp).map(|b| b.count).unwrap_or(0);
        if e.count > base {
            out.new.push((
                e.file.clone(),
                e.code.clone(),
                e.token.clone(),
                base,
                e.count,
            ));
        }
    }
    for (fp, e) in &baseline.entries {
        if !current.entries.contains_key(fp) {
            out.fixed
                .push((e.file.clone(), e.code.clone(), e.token.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, code: &'static str, token: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            code,
            token: token.to_string(),
            message: "m".to_string(),
            chain: Vec::new(),
            fix: None,
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let findings = vec![
            f("a.rs", "L8", "v["),
            f("a.rs", "L8", "v["),
            f("b.rs", "L5", "% n"),
        ];
        let base = Baseline::from_findings(&findings);
        let json = base.to_json();
        let back = Baseline::from_json(&json).expect("parses");
        assert_eq!(base, back);
        assert_eq!(back.total(), 3);
    }

    #[test]
    fn ratchet_accepts_unchanged_and_moved_findings() {
        let old = vec![f("a.rs", "L8", "v[")];
        let base = Baseline::from_findings(&old);
        // Same finding on a different line is not "new".
        let mut moved = f("a.rs", "L8", "v[");
        moved.line = 99;
        let out = ratchet(&base, &[moved]);
        assert!(out.ok());
        assert!(!out.can_tighten());
    }

    #[test]
    fn ratchet_rejects_new_findings_and_growth() {
        let base = Baseline::from_findings(&[f("a.rs", "L8", "v[")]);
        let grown = vec![f("a.rs", "L8", "v["), f("a.rs", "L8", "w[")];
        let out = ratchet(&base, &grown);
        assert!(!out.ok());
        assert_eq!(out.new.len(), 1);
        // Count growth of an existing key is also new debt.
        let dup = vec![f("a.rs", "L8", "v["), f("a.rs", "L8", "v[")];
        assert!(!ratchet(&base, &dup).ok());
    }

    #[test]
    fn ratchet_notices_paydown() {
        let base = Baseline::from_findings(&[f("a.rs", "L8", "v["), f("b.rs", "L5", "% n")]);
        let out = ratchet(&base, &[f("a.rs", "L8", "v[")]);
        assert!(out.ok());
        assert!(out.can_tighten());
        assert_eq!(out.fixed.len(), 1);
    }

    #[test]
    fn sarif_is_valid_json_with_results() {
        let findings = vec![f("crates/sim/src/faults.rs", "L8", "metric[")];
        let doc = parse_json(&to_sarif(&findings)).expect("sarif parses as json");
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Json::as_arr)
            .expect("results");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("ruleId").and_then(Json::as_str), Some("L8"));
    }

    #[test]
    fn empty_baseline_means_any_finding_is_new() {
        let out = ratchet(&Baseline::default(), &[f("a.rs", "L1", ".unwrap()")]);
        assert!(!out.ok());
    }
}
