//! Flow-rule configuration: source/sanitizer/sink patterns for the
//! interprocedural dataflow passes (L9–L12).
//!
//! Patterns are `::`-separated path suffixes matched against an item's
//! qualified name (`crate::module::Owner::fn`); a `*` segment matches any
//! single segment. `MetricSanitizer::sanitize` therefore matches
//! `sim::sanitize::MetricSanitizer::sanitize`, and `*::decide` matches
//! every `decide` method regardless of the implementing type. A pattern
//! with one segment matches by bare function name.
//!
//! The built-in defaults below mirror the `[flow]` table shipped in
//! `lint.toml`; the file may override any list per key. Fixture runs (no
//! config file) use the defaults, which is why fixtures declare types
//! with the production names (`MetricSanitizer`, `Rng`, …).

use crate::model::CallRef;

/// One parsed flow pattern (`A::b`, `*::decide`, `project_to_budget`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    segs: Vec<String>,
}

impl Pattern {
    /// Parses and validates a pattern string.
    pub fn parse(text: &str) -> Result<Pattern, String> {
        let segs: Vec<String> = text.split("::").map(str::to_string).collect();
        if segs.iter().any(String::is_empty) {
            return Err(format!("flow pattern `{text}` has an empty segment"));
        }
        for s in &segs {
            if s != "*" && !s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!(
                    "flow pattern `{text}`: segment `{s}` must be an identifier or `*`"
                ));
            }
        }
        Ok(Pattern { segs })
    }

    /// Human-readable form (for messages).
    pub fn display(&self) -> String {
        self.segs.join("::")
    }

    /// Suffix match against a qualified item path such as
    /// `sim::sanitize::MetricSanitizer::sanitize`.
    pub fn matches_qualified(&self, qualified: &str) -> bool {
        let path: Vec<&str> = qualified.split("::").collect();
        if self.segs.len() > path.len() {
            return false;
        }
        let tail = &path[path.len() - self.segs.len()..];
        self.segs
            .iter()
            .zip(tail.iter())
            .all(|(p, s)| p == "*" || p == s)
    }

    /// Textual match against an unresolved call site: the last segment
    /// must equal the call name, and for qualified calls the second-to-
    /// last segment must cover the qualifier. Method calls match on name
    /// alone (the receiver's type is unknown at token level).
    pub fn matches_call(&self, call: &CallRef) -> bool {
        let Some(last) = self.segs.last() else {
            return false;
        };
        if last != "*" && *last != call.name {
            return false;
        }
        if call.is_method || self.segs.len() == 1 {
            return true;
        }
        let owner = &self.segs[self.segs.len() - 2];
        match &call.qualifier {
            Some(q) => owner == "*" || owner == q,
            // Free call against an `Owner::fn` pattern: name match only.
            None => true,
        }
    }
}

/// Parses a list of pattern strings.
pub fn parse_patterns(texts: &[String]) -> Result<Vec<Pattern>, String> {
    texts.iter().map(|t| Pattern::parse(t)).collect()
}

/// One taint rule: values produced by `sources` must pass through a
/// `sanitizers` call before reaching a `sinks` call.
#[derive(Clone, Debug)]
pub struct TaintSpec {
    /// Lint code (`"L9"` / `"L11"`).
    pub code: &'static str,
    /// What the tainted value is, for messages ("raw metric snapshot").
    pub what: &'static str,
    /// The fix, for messages ("MetricSanitizer::sanitize").
    pub fix: &'static str,
    pub sources: Vec<Pattern>,
    pub sanitizers: Vec<Pattern>,
    pub sinks: Vec<Pattern>,
}

/// The full flow configuration: the two taint rules plus the L10 RNG
/// provenance constructor list. (L12 needs no patterns — it keys off
/// `Result` return types in the item index.)
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// L9 — degraded-metric taint.
    pub metric: TaintSpec,
    /// L11 — projection discipline.
    pub decision: TaintSpec,
    /// L10 — RNG constructors whose seed argument must be seed-derived.
    pub rng_ctors: Vec<Pattern>,
}

fn pats(texts: &[&str]) -> Vec<Pattern> {
    texts
        .iter()
        .map(|t| Pattern::parse(t).unwrap_or(Pattern { segs: Vec::new() }))
        .collect()
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            metric: TaintSpec {
                code: "L9",
                what: "raw metric snapshot",
                fix: "MetricSanitizer::sanitize",
                sources: pats(&[
                    "FluidSim::run_slot",
                    "DesSim::run",
                    "FaultState::begin_slot",
                ]),
                sanitizers: pats(&["MetricSanitizer::sanitize"]),
                sinks: pats(&[
                    "GpRegressor::observe",
                    "OperatorGp::observe",
                    "SelectivityEstimator::ingest",
                    "SaddleState::dual_update",
                    "OgdState::step",
                ]),
            },
            decision: TaintSpec {
                code: "L11",
                what: "unprojected decision vector",
                fix: "core::projection / project_to_budget",
                sources: pats(&["*::decide"]),
                sanitizers: pats(&[
                    "project_to_budget",
                    "project_acquisition",
                    "Deployment::clamped",
                ]),
                sinks: pats(&["FluidSim::reconfigure", "CostMeter::charge"]),
            },
            rng_ctors: pats(&["Rng::new"]),
        }
    }
}

impl FlowConfig {
    /// Applies one `[flow]` key from `lint.toml`, replacing the matching
    /// pattern list. Unknown keys are an error (they are usually typos).
    pub fn set_key(&mut self, key: &str, values: &[String]) -> Result<(), String> {
        let parsed = parse_patterns(values)?;
        match key {
            "metric_sources" => self.metric.sources = parsed,
            "metric_sanitizers" => self.metric.sanitizers = parsed,
            "metric_sinks" => self.metric.sinks = parsed,
            "decision_sources" => self.decision.sources = parsed,
            "decision_projections" => self.decision.sanitizers = parsed,
            "actuation_sinks" => self.decision.sinks = parsed,
            "rng_constructors" => self.rng_ctors = parsed,
            other => {
                return Err(format!(
                    "[flow] key `{other}` is not one of metric_sources / \
                     metric_sanitizers / metric_sinks / decision_sources / \
                     decision_projections / actuation_sinks / rng_constructors"
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_suffix_matches_qualified_paths() {
        let p = Pattern::parse("MetricSanitizer::sanitize").expect("parses");
        assert!(p.matches_qualified("sim::sanitize::MetricSanitizer::sanitize"));
        assert!(!p.matches_qualified("sim::sanitize::MetricSanitizer::new"));
        assert!(!p.matches_qualified("sanitize"));
    }

    #[test]
    fn wildcard_segment_matches_any_owner() {
        let p = Pattern::parse("*::decide").expect("parses");
        assert!(p.matches_qualified("core::controller::Dragster::decide"));
        assert!(p.matches_qualified("baselines::ds2::Ds2::decide"));
        assert!(!p.matches_qualified("core::controller::Dragster::decode"));
    }

    #[test]
    fn single_segment_matches_free_functions() {
        let p = Pattern::parse("project_to_budget").expect("parses");
        assert!(p.matches_qualified("sim::harness::project_to_budget"));
        let call = CallRef {
            name: "project_to_budget".to_string(),
            qualifier: None,
            is_method: false,
        };
        assert!(p.matches_call(&call));
    }

    #[test]
    fn qualified_call_matching_respects_owner() {
        let p = Pattern::parse("Rng::new").expect("parses");
        let hit = CallRef {
            name: "new".to_string(),
            qualifier: Some("Rng".to_string()),
            is_method: false,
        };
        let miss = CallRef {
            name: "new".to_string(),
            qualifier: Some("GpRegressor".to_string()),
            is_method: false,
        };
        assert!(p.matches_call(&hit));
        assert!(!p.matches_call(&miss));
    }

    #[test]
    fn bad_patterns_are_rejected() {
        assert!(Pattern::parse("a::::b").is_err());
        assert!(Pattern::parse("a b::c").is_err());
        assert!(Pattern::parse("").is_err());
    }

    #[test]
    fn flow_config_rejects_unknown_keys() {
        let mut cfg = FlowConfig::default();
        assert!(cfg.set_key("metric_sinks", &["X::y".to_string()]).is_ok());
        assert_eq!(cfg.metric.sinks.len(), 1);
        assert!(cfg.set_key("metric_snks", &["X::y".to_string()]).is_err());
    }
}
