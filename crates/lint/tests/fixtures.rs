//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! trigger exactly its lint (right code, right count, nothing else), the
//! clean fixture must pass, and the real workspace must be clean under
//! the checked-in `lint.toml` allowlist.

use std::fs;
use std::path::{Path, PathBuf};

use dragster_lint::{lint_source, lint_workspace, parse_allowlist, Finding, RuleSet};

fn fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(name, &source, RuleSet::all())
}

/// Asserts the fixture yields exactly `count` findings, all with `code`.
fn assert_only(name: &str, code: &str, count: usize) {
    let findings = fixture(name);
    assert_eq!(
        findings.len(),
        count,
        "{name}: expected {count} finding(s), got: {findings:#?}"
    );
    for f in &findings {
        assert_eq!(f.code, code, "{name}: wrong lint class: {f}");
    }
}

#[test]
fn l1_unwrap_triggers_exactly_l1() {
    assert_only("l1_unwrap.rs", "L1", 1);
}

#[test]
fn l1_expect_triggers_exactly_l1() {
    assert_only("l1_expect.rs", "L1", 1);
}

#[test]
fn l1_panic_macros_trigger_exactly_l1() {
    // todo!, panic!, unreachable! — one finding each.
    assert_only("l1_panic.rs", "L1", 3);
}

#[test]
fn l2_thread_rng_triggers_exactly_l2() {
    assert_only("l2_thread_rng.rs", "L2", 1);
}

#[test]
fn l2_hash_collections_trigger_exactly_l2() {
    // One finding per named type (`use` line and annotation site each
    // mention both types — 2 types × 2 sites).
    assert_only("l2_hash_collections.rs", "L2", 4);
}

#[test]
fn l2_wall_clock_triggers_exactly_l2() {
    // Instant::now + SystemTime::now; the bare types in the return
    // signature must NOT fire.
    assert_only("l2_wall_clock.rs", "L2", 2);
}

#[test]
fn l3_partial_cmp_unwrap_triggers_exactly_l3() {
    // The trailing .unwrap() is claimed by L3 — no L1 double report.
    assert_only("l3_partial_cmp.rs", "L3", 1);
}

#[test]
fn l4_lossy_cast_triggers_exactly_l4() {
    assert_only("l4_lossy_cast.rs", "L4", 1);
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = fixture("clean.rs");
    assert!(findings.is_empty(), "clean.rs flagged: {findings:#?}");
}

#[test]
fn every_fixture_is_covered_by_a_test() {
    // Guards against someone adding a fixture without an assertion.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures dir readable")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "clean.rs",
            "l1_expect.rs",
            "l1_panic.rs",
            "l1_unwrap.rs",
            "l2_hash_collections.rs",
            "l2_thread_rng.rs",
            "l2_wall_clock.rs",
            "l3_partial_cmp.rs",
            "l4_lossy_cast.rs",
        ],
        "fixture set changed — update the tests to match"
    );
}

#[test]
fn real_workspace_is_clean_under_checked_in_allowlist() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let allow = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => parse_allowlist(&text).expect("lint.toml must validate"),
        Err(_) => Vec::new(),
    };
    let report = lint_workspace(&root, &allow).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "library crates violate the invariants:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_entries.is_empty(),
        "stale lint.toml entries: {:?}",
        report.unused_entries
    );
    assert!(report.files_scanned >= 30, "suspiciously few files scanned");
}
