//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! trigger exactly its lint (right code, right count, nothing else), the
//! clean fixtures must pass, and the real workspace must be clean under
//! the checked-in `lint.toml` config.

use std::fs;
use std::path::{Path, PathBuf};

use dragster_lint::{
    lint_files_semantic, lint_source, lint_workspace, parse_config, Finding, RuleSet,
};

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn fixture_with(name: &str, rules: RuleSet) -> Vec<Finding> {
    lint_source(name, &read_fixture(name), rules)
}

fn fixture(name: &str) -> Vec<Finding> {
    fixture_with(name, RuleSet::all())
}

/// Runs the full semantic pipeline (token scan + workspace model +
/// panic-reachability) over a single fixture file.
fn semantic_fixture(name: &str) -> Vec<Finding> {
    lint_files_semantic(&[(name.to_string(), read_fixture(name))], RuleSet::all())
}

/// Asserts the findings are exactly `count` instances of `code`.
fn assert_findings(name: &str, findings: &[Finding], code: &str, count: usize) {
    assert_eq!(
        findings.len(),
        count,
        "{name}: expected {count} finding(s), got: {findings:#?}"
    );
    for f in findings {
        assert_eq!(f.code, code, "{name}: wrong lint class: {f}");
    }
}

/// Asserts the fixture yields exactly `count` findings, all with `code`.
fn assert_only(name: &str, code: &str, count: usize) {
    let findings = fixture(name);
    assert_findings(name, &findings, code, count);
}

#[test]
fn l1_unwrap_triggers_exactly_l1() {
    assert_only("l1_unwrap.rs", "L1", 1);
}

#[test]
fn l1_expect_triggers_exactly_l1() {
    assert_only("l1_expect.rs", "L1", 1);
}

#[test]
fn l1_panic_macros_trigger_exactly_l1() {
    // todo!, panic!, unreachable! — one finding each.
    assert_only("l1_panic.rs", "L1", 3);
}

#[test]
fn thread_rng_is_l6_when_rng_discipline_is_on() {
    // With every pass enabled the RNG-stream pass claims thread_rng from
    // the generic determinism pass (one finding, not two).
    assert_only("l2_thread_rng.rs", "L6", 1);
}

#[test]
fn thread_rng_falls_back_to_l2_without_rng_discipline() {
    let mut rules = RuleSet::all();
    rules.rng_streams = false;
    let findings = fixture_with("l2_thread_rng.rs", rules);
    assert_findings("l2_thread_rng.rs", &findings, "L2", 1);
}

#[test]
fn l2_hash_collections_trigger_exactly_l2() {
    // One finding per named type (`use` line and annotation site each
    // mention both types — 2 types × 2 sites).
    assert_only("l2_hash_collections.rs", "L2", 4);
}

#[test]
fn wall_clock_is_l6_when_rng_discipline_is_on() {
    // Instant::now + SystemTime::now are replay hazards and belong to the
    // stream-discipline pass; the bare types in the return signature must
    // NOT fire.
    assert_only("l2_wall_clock.rs", "L6", 2);
}

#[test]
fn wall_clock_falls_back_to_l2_without_rng_discipline() {
    let mut rules = RuleSet::all();
    rules.rng_streams = false;
    let findings = fixture_with("l2_wall_clock.rs", rules);
    assert_findings("l2_wall_clock.rs", &findings, "L2", 2);
}

#[test]
fn l3_partial_cmp_unwrap_triggers_exactly_l3() {
    // The trailing .unwrap() is claimed by L3 — no L1 double report.
    assert_only("l3_partial_cmp.rs", "L3", 1);
}

#[test]
fn l4_lossy_cast_triggers_exactly_l4() {
    assert_only("l4_lossy_cast.rs", "L4", 1);
}

#[test]
fn l5_pub_chain_to_division_is_reported_with_full_chain() {
    let findings = semantic_fixture("l5_reach_pos.rs");
    assert_findings("l5_reach_pos.rs", &findings, "L5", 1);
    let f = &findings[0];
    let tails: Vec<&str> = f
        .chain
        .iter()
        .map(|q| q.rsplit("::").next().unwrap_or(q))
        .collect();
    assert_eq!(
        tails,
        vec!["entry", "middle", "leaf"],
        "chain must walk pub entry -> middle -> leaf: {f:#?}"
    );
    assert!(
        f.message.contains("entry") && f.message.contains("middle") && f.message.contains("leaf"),
        "message must spell out the call chain: {}",
        f.message
    );
}

#[test]
fn l5_unreachable_division_stays_silent() {
    let findings = semantic_fixture("l5_reach_neg.rs");
    assert!(
        findings.is_empty(),
        "l5_reach_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l6_entropy_seeded_rng_triggers_exactly_l6() {
    assert_only("l6_rng_pos.rs", "L6", 1);
}

#[test]
fn l6_seeded_and_named_streams_pass() {
    let findings = fixture("l6_rng_neg.rs");
    assert!(findings.is_empty(), "l6_rng_neg.rs flagged: {findings:#?}");
}

#[test]
fn l7_rate_plus_time_triggers_exactly_l7() {
    assert_only("l7_units_pos.rs", "L7", 1);
}

#[test]
fn l7_conversion_and_same_dimension_pass() {
    let findings = fixture("l7_units_neg.rs");
    assert!(
        findings.is_empty(),
        "l7_units_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l8_unchecked_index_triggers_exactly_l8() {
    assert_only("l8_index_pos.rs", "L8", 1);
}

#[test]
fn l8_get_with_fallback_passes() {
    let findings = fixture("l8_index_neg.rs");
    assert!(
        findings.is_empty(),
        "l8_index_neg.rs flagged: {findings:#?}"
    );
}

/// Last path segment of each chain entry, for readable assertions.
fn chain_tails(f: &Finding) -> Vec<&str> {
    f.chain
        .iter()
        .map(|q| q.rsplit("::").next().unwrap_or(q))
        .collect()
}

#[test]
fn l9_unsanitized_metric_reaching_gp_carries_source_to_sink_chain() {
    let findings = semantic_fixture("l9_taint_pos.rs");
    assert_findings("l9_taint_pos.rs", &findings, "L9", 1);
    let f = &findings[0];
    assert_eq!(
        chain_tails(f),
        vec!["run_slot", "fetch", "drive", "observe"],
        "chain must walk source -> helper -> caller -> sink: {f:#?}"
    );
    assert!(
        f.message.contains("run_slot") && f.message.contains("observe"),
        "message must spell out the flow: {}",
        f.message
    );
}

#[test]
fn l9_sanitized_metric_stays_silent() {
    let findings = semantic_fixture("l9_taint_neg.rs");
    assert!(
        findings.is_empty(),
        "l9_taint_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l10_laundered_seed_triggers_exactly_l10() {
    let findings = semantic_fixture("l10_seed_pos.rs");
    assert_findings("l10_seed_pos.rs", &findings, "L10", 1);
    assert!(
        findings[0].message.contains("laundering"),
        "the finding must name the laundered binding: {}",
        findings[0].message
    );
}

#[test]
fn l10_derived_and_literal_seeds_pass() {
    let findings = semantic_fixture("l10_seed_neg.rs");
    assert!(
        findings.is_empty(),
        "l10_seed_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l11_unprojected_decision_carries_decide_to_actuation_chain() {
    let findings = semantic_fixture("l11_projection_pos.rs");
    assert_findings("l11_projection_pos.rs", &findings, "L11", 1);
    assert_eq!(
        chain_tails(&findings[0]),
        vec!["decide", "act", "reconfigure"],
        "chain must walk decide -> act -> reconfigure: {:#?}",
        findings[0]
    );
}

#[test]
fn l11_projected_decision_stays_silent() {
    let findings = semantic_fixture("l11_projection_neg.rs");
    assert!(
        findings.is_empty(),
        "l11_projection_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l12_discarded_result_triggers_exactly_l12() {
    let findings = semantic_fixture("l12_discard_pos.rs");
    assert_findings("l12_discard_pos.rs", &findings, "L12", 1);
    assert!(
        findings[0].message.contains("reconfigure_cluster"),
        "the finding must name the fallible callee: {}",
        findings[0].message
    );
}

#[test]
fn l12_propagated_and_infallible_discards_pass() {
    let findings = semantic_fixture("l12_discard_neg.rs");
    assert!(
        findings.is_empty(),
        "l12_discard_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l13_wrong_variable_guard_triggers_exactly_l13() {
    let findings = semantic_fixture("l13_div_pos.rs");
    assert_findings("l13_div_pos.rs", &findings, "L13", 1);
    let f = &findings[0];
    assert!(
        f.message.contains("contains zero"),
        "the finding must state the proven hazard: {}",
        f.message
    );
    assert!(
        f.chain.first().is_some_and(|c| c.starts_with("fn ")),
        "chain must open with the enclosing fn: {f:#?}"
    );
    assert!(
        f.chain.iter().any(|c| c.contains("n_slots")),
        "derivation chain must name the divisor's seed: {f:#?}"
    );
}

#[test]
fn l13_right_variable_guard_stays_silent() {
    let findings = semantic_fixture("l13_div_neg.rs");
    assert!(findings.is_empty(), "l13_div_neg.rs flagged: {findings:#?}");
}

#[test]
fn l14_saturating_cast_in_reach_triggers_exactly_l14() {
    let findings = semantic_fixture("l14_cast_pos.rs");
    assert_findings("l14_cast_pos.rs", &findings, "L14", 1);
    let f = &findings[0];
    assert!(
        f.message.contains("2^53"),
        "the finding must state which bound is violated: {}",
        f.message
    );
    assert!(
        f.chain.iter().any(|c| c.contains("scaled")),
        "derivation chain must walk through the intermediate binding: {f:#?}"
    );
}

#[test]
fn l14_clamped_cast_stays_silent() {
    let findings = semantic_fixture("l14_cast_neg.rs");
    assert!(
        findings.is_empty(),
        "l14_cast_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l15_violated_posterior_contract_triggers_exactly_l15() {
    let findings = semantic_fixture("l15_contract_pos.rs");
    assert_findings("l15_contract_pos.rs", &findings, "L15", 1);
    let f = &findings[0];
    assert!(
        f.message.contains("GpRegressor::posterior::var"),
        "the finding must name the violated contract: {}",
        f.message
    );
    assert!(
        f.chain.iter().any(|c| c.contains("k_xx")),
        "derivation chain must reach the contract's inputs: {f:#?}"
    );
}

#[test]
fn l15_clamped_posterior_satisfies_contract() {
    let findings = semantic_fixture("l15_contract_neg.rs");
    assert!(
        findings.is_empty(),
        "l15_contract_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l16_allocating_hot_callee_carries_root_to_callee_chain() {
    let findings = semantic_fixture("l16_alloc_pos.rs");
    assert_findings("l16_alloc_pos.rs", &findings, "L16", 1);
    let f = &findings[0];
    assert_eq!(f.token, "to_vec", "wrong allocation site: {f:#?}");
    assert_eq!(
        chain_tails(f),
        vec!["decide", "expand"],
        "chain must walk hot root -> allocating callee: {f:#?}"
    );
    assert!(
        f.message.contains("scratch buffer"),
        "the finding must point at the fix idiom: {}",
        f.message
    );
}

#[test]
fn l16_scratch_buffer_idiom_stays_silent() {
    let findings = semantic_fixture("l16_alloc_neg.rs");
    assert!(
        findings.is_empty(),
        "l16_alloc_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l16_allocation_inside_hot_closure_is_still_hot() {
    let findings = semantic_fixture("l16_closure_pos.rs");
    assert_findings("l16_closure_pos.rs", &findings, "L16", 1);
    assert_eq!(
        findings[0].token, "vec!",
        "the closure-body allocation must be the site: {:#?}",
        findings[0]
    );
}

#[test]
fn l16_impl_trait_and_generic_calls_stay_silent() {
    let findings = semantic_fixture("l16_generic_neg.rs");
    assert!(
        findings.is_empty(),
        "l16_generic_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l17_polling_while_without_measure_triggers_exactly_l17() {
    let findings = semantic_fixture("l17_loop_pos.rs");
    assert_findings("l17_loop_pos.rs", &findings, "L17", 1);
    assert!(
        findings[0].message.contains("[bounds]"),
        "the finding must point at the measure escape hatch: {}",
        findings[0].message
    );
}

#[test]
fn l17_derivably_bounded_loops_stay_silent() {
    let findings = semantic_fixture("l17_loop_neg.rs");
    assert!(
        findings.is_empty(),
        "l17_loop_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l18_field_forgotten_by_decoder_triggers_exactly_l18() {
    let findings = semantic_fixture("l18_coverage_pos.rs");
    assert_findings("l18_coverage_pos.rs", &findings, "L18", 1);
    let f = &findings[0];
    assert_eq!(f.token, "LearnerState.bias", "wrong field: {f:#?}");
    assert!(
        f.message.contains("decode direction"),
        "the finding must name the missing direction: {}",
        f.message
    );
}

#[test]
fn l18_fully_covered_codec_stays_silent() {
    let findings = semantic_fixture("l18_coverage_neg.rs");
    assert!(
        findings.is_empty(),
        "l18_coverage_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn l19_triple_nesting_over_budget_triggers_exactly_l19() {
    let findings = semantic_fixture("l19_nesting_pos.rs");
    assert_findings("l19_nesting_pos.rs", &findings, "L19", 1);
    let f = &findings[0];
    assert_eq!(f.token, "depth 3", "wrong depth: {f:#?}");
    assert!(
        f.message.contains("[complexity]"),
        "the finding must point at the budget escape hatch: {}",
        f.message
    );
}

#[test]
fn l19_nesting_at_budget_stays_silent() {
    let findings = semantic_fixture("l19_nesting_neg.rs");
    assert!(
        findings.is_empty(),
        "l19_nesting_neg.rs flagged: {findings:#?}"
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = fixture("clean.rs");
    assert!(findings.is_empty(), "clean.rs flagged: {findings:#?}");
}

#[test]
fn every_fixture_is_covered_by_a_test() {
    // Guards against someone adding a fixture without an assertion.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures dir readable")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "clean.rs",
            "l10_seed_neg.rs",
            "l10_seed_pos.rs",
            "l11_projection_neg.rs",
            "l11_projection_pos.rs",
            "l12_discard_neg.rs",
            "l12_discard_pos.rs",
            "l13_div_neg.rs",
            "l13_div_pos.rs",
            "l14_cast_neg.rs",
            "l14_cast_pos.rs",
            "l15_contract_neg.rs",
            "l15_contract_pos.rs",
            "l16_alloc_neg.rs",
            "l16_alloc_pos.rs",
            "l16_closure_pos.rs",
            "l16_generic_neg.rs",
            "l17_loop_neg.rs",
            "l17_loop_pos.rs",
            "l18_coverage_neg.rs",
            "l18_coverage_pos.rs",
            "l19_nesting_neg.rs",
            "l19_nesting_pos.rs",
            "l1_expect.rs",
            "l1_panic.rs",
            "l1_unwrap.rs",
            "l2_hash_collections.rs",
            "l2_thread_rng.rs",
            "l2_wall_clock.rs",
            "l3_partial_cmp.rs",
            "l4_lossy_cast.rs",
            "l5_reach_neg.rs",
            "l5_reach_pos.rs",
            "l6_rng_neg.rs",
            "l6_rng_pos.rs",
            "l7_units_neg.rs",
            "l7_units_pos.rs",
            "l8_index_neg.rs",
            "l8_index_pos.rs",
            "l9_taint_neg.rs",
            "l9_taint_pos.rs",
        ],
        "fixture set changed — update the tests to match"
    );
}

#[test]
fn real_workspace_is_clean_under_checked_in_config() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let cfg = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => parse_config(&text).expect("lint.toml must validate"),
        Err(_) => Default::default(),
    };
    let report = lint_workspace(&root, &cfg).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "library crates violate the invariants:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_entries.is_empty(),
        "stale lint.toml entries: {:?}",
        report.unused_entries
    );
    assert!(report.files_scanned >= 30, "suspiciously few files scanned");
}
