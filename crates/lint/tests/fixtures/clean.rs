//! Fixture: a file exercising every rule's escape hatch. Must produce
//! zero findings. Mentions of .unwrap() and panic! in comments are fine.

/// Doc comments may say `.unwrap()` and `HashMap` freely.
pub fn checked_first(tasks: &[usize]) -> Option<usize> {
    tasks.first().copied()
}

pub fn with_default(x: Option<f64>) -> f64 {
    // unwrap_or / unwrap_or_else / unwrap_or_default are not panic paths
    x.unwrap_or(0.0).max(x.unwrap_or_else(|| 1.0))
}

pub fn must_fail(r: Result<(), String>) -> String {
    r.expect_err("fixture wants the error branch")
}

pub fn int_to_float(x: usize) -> f64 {
    x as f64 // widening int→float is allowed by L4
}

pub fn nan_safe_max(v: &[f64]) -> Option<f64> {
    v.iter().copied().max_by(|a, b| a.total_cmp(b))
}

pub fn strings_are_not_code() -> &'static str {
    "call .unwrap() or panic! or Instant::now() — all inert here"
}

pub fn raw_strings_too() -> &'static str {
    r#"thread_rng and HashMap inside a raw "string""#
}

pub struct Holder<'a> {
    /// Lifetimes must not be mistaken for char literals.
    pub slice: &'a [f64],
    /// Storing an Instant is fine; only `Instant::now()` is banned.
    pub started: Option<std::time::Instant>,
}

pub fn option_compare(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    // partial_cmp without a trailing unwrap/expect is legitimate
    a.partial_cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_in_tests() {
        let v = vec![1usize];
        assert_eq!(checked_first(&v).unwrap(), 1);
        let m: std::collections::HashMap<u32, u32> = Default::default();
        assert!(m.is_empty());
        let frac = 0.7_f64;
        assert_eq!((frac * 10.0) as usize, 7);
    }
}
