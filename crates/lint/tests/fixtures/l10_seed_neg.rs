//! L10 negative: every RNG construction is data-derivable from the
//! master seed — a literal, a const, or an xor-derived stream. Must
//! produce no L10 finding.

pub struct Rng {
    pub state: u64,
}

impl Rng {
    pub fn new(x: u64) -> Rng {
        Rng { state: x }
    }
}

const STREAM_SALT: u64 = 0x9E37_79B9;

pub fn derived_stream(master_seed: u64) -> Rng {
    let stream = master_seed ^ STREAM_SALT;
    Rng::new(stream)
}

pub fn literal_seed() -> Rng {
    Rng::new(0x5EED)
}
