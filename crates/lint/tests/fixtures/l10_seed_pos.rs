//! L10 positive: seed laundering. A local *named* `seed` is bound from a
//! value with no seed provenance, then fed to the RNG constructor. The
//! name-based L6 check is satisfied; the dataflow L10 check is not.

pub struct Rng {
    pub state: u64,
}

impl Rng {
    pub fn new(x: u64) -> Rng {
        Rng { state: x }
    }
}

fn wall_clock_entropy() -> u64 {
    4
}

pub fn laundered() -> Rng {
    let seed = wall_clock_entropy();
    Rng::new(seed)
}
