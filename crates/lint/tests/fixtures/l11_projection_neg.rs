//! L11 negative: the decision vector passes through `project_to_budget`
//! before actuation. Must produce no L11 finding.

pub struct Scaler {
    pub gain: f64,
}

impl Scaler {
    pub fn decide(&mut self, pressure: f64) -> f64 {
        pressure * self.gain
    }
}

pub struct FluidSim {
    pub level: f64,
}

impl FluidSim {
    pub fn reconfigure(&mut self, target: f64) -> Result<(), String> {
        self.level = target;
        Ok(())
    }
}

fn project_to_budget(x: f64, budget: f64) -> f64 {
    x.clamp(0.0, budget)
}

pub fn act(scaler: &mut Scaler, sim: &mut FluidSim) -> Result<(), String> {
    let proposal = scaler.decide(0.5);
    let feasible = project_to_budget(proposal, 10.0);
    sim.reconfigure(feasible)
}
