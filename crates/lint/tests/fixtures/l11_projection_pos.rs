//! L11 positive: a scaler's decision vector is actuated directly —
//! `decide -> reconfigure` with no projection onto the box/budget
//! constraint set in between.

pub struct Scaler {
    pub gain: f64,
}

impl Scaler {
    pub fn decide(&mut self, pressure: f64) -> f64 {
        pressure * self.gain
    }
}

pub struct FluidSim {
    pub level: f64,
}

impl FluidSim {
    pub fn reconfigure(&mut self, target: f64) -> Result<(), String> {
        self.level = target;
        Ok(())
    }
}

pub fn act(scaler: &mut Scaler, sim: &mut FluidSim) -> Result<(), String> {
    let proposal = scaler.decide(0.5);
    sim.reconfigure(proposal)
}
