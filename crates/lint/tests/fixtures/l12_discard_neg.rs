//! L12 negative: fallible results are propagated, and `let _ =` is only
//! used on an infallible call. Must produce no L12 finding.

pub fn reconfigure_cluster(delta: i64) -> Result<(), String> {
    if delta >= 0 {
        Ok(())
    } else {
        Err("shrink refused".to_string())
    }
}

pub fn current_len(v: &[f64]) -> usize {
    v.len()
}

pub fn handled(delta: i64) -> Result<(), String> {
    reconfigure_cluster(delta)
}

pub fn discard_infallible(v: &[f64]) {
    let _ = current_len(v);
}
