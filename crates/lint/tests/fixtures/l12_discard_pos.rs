//! L12 positive: a fallible reconfiguration's `Result` is dropped with
//! `let _ =` in non-test code, silently swallowing the error contract.

pub fn reconfigure_cluster(delta: i64) -> Result<(), String> {
    if delta >= 0 {
        Ok(())
    } else {
        Err("shrink refused".to_string())
    }
}

pub fn fire_and_forget(delta: i64) {
    let _ = reconfigure_cluster(delta);
}
