//! L13 negative: the guard tests the divisor itself, so the fall-through
//! interval excludes zero and the division is statically safe — the
//! intervals *prove* it, retracting what L5 would otherwise report.

pub fn per_slot(total_tuples: f64, n_slots: f64) -> f64 {
    if n_slots > 0.0 {
        total_tuples / n_slots
    } else {
        0.0
    }
}
