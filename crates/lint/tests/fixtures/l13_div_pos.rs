//! L13 positive: the guard tests the *wrong variable* — the divisor's
//! declared domain (`_slots` → [0, 4096]) still contains zero, and the
//! intervals prove the guard buys nothing.

pub fn per_slot(total_tuples: f64, n_slots: f64, n_ticks: f64) -> f64 {
    if n_ticks > 0.0 {
        total_tuples / n_slots
    } else {
        0.0
    }
}
