//! L14 negative: the helper's input is clamped into the exactly-
//! representable nonnegative range first, so saturation is unreachable
//! and the intervals prove the cast lossless.

pub fn scaled_ticks(window_secs: f64) -> usize {
    let scaled = (window_secs * 16.0).min(9.0e6);
    crate::convert::f64_to_usize_saturating(scaled)
}
