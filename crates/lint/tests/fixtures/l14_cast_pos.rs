//! L14 positive: the saturating-cast helper receives a value the
//! intervals prove can exceed 2^53 (`_secs` → [0, 1e7], scaled by 1e12)
//! — the saturation the helper papers over is reachable.

pub fn scaled_ticks(window_secs: f64) -> usize {
    let scaled = window_secs * 1.0e12;
    crate::convert::f64_to_usize_saturating(scaled)
}
