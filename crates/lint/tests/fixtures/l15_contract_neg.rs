//! L15 negative: the same posterior, but the variance is clamped at
//! zero before it is bound — the computed interval [0, +inf] satisfies
//! the contract and the NaN case is absorbed by `max`.

pub struct GpPosterior {
    pub mean: f64,
    pub var: f64,
}

pub struct GpRegressor {
    pub prior: f64,
}

impl GpRegressor {
    pub fn posterior(&self, k_xx: f64, explained: f64) -> GpPosterior {
        GpPosterior {
            mean: self.prior,
            var: (k_xx - explained).max(0.0),
        }
    }
}
