//! L15 positive: the GP-posterior contract (`GpRegressor::posterior::var`
//! = [0, +inf]) demands a nonnegative variance, but the computed field
//! interval extends below zero (and may be NaN).

pub struct GpPosterior {
    pub mean: f64,
    pub var: f64,
}

pub struct GpRegressor {
    pub prior: f64,
}

impl GpRegressor {
    pub fn posterior(&self, k_xx: f64, explained: f64) -> GpPosterior {
        GpPosterior {
            mean: self.prior,
            var: k_xx - explained,
        }
    }
}
