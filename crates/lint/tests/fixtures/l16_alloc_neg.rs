//! L16 negative: the scratch-buffer idiom — `mem::take`, `clear` +
//! `extend`, `clone_from` — reuses storage across slots and must stay
//! silent.

pub struct Scaler {
    pub gain: f64,
    scratch: Vec<f64>,
    last: Vec<f64>,
}

impl Scaler {
    pub fn decide(&mut self, loads: &[f64]) -> f64 {
        let mut work = std::mem::take(&mut self.scratch);
        work.clear();
        work.extend(loads.iter().map(|l| l * self.gain));
        let total = work.iter().sum::<f64>();
        self.last.clone_from(&work);
        self.scratch = work;
        total
    }
}
