//! L16 positive: a `decide` hot root reaches an allocating helper — the
//! finding must carry the root → callee chain.

pub struct Scaler {
    pub gain: f64,
}

impl Scaler {
    pub fn decide(&mut self, loads: &[f64]) -> f64 {
        let doubled = self.expand(loads);
        doubled.iter().sum::<f64>() * self.gain
    }

    fn expand(&self, loads: &[f64]) -> Vec<f64> {
        loads.to_vec()
    }
}
