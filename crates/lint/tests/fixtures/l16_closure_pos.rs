//! L16 edge case: an allocation inside a closure defined in a hot body
//! is still hot — the closure captures hot-path locals and runs once per
//! element, every slot.

pub struct Mapper {
    pub gain: f64,
}

impl Mapper {
    pub fn decide(&self, loads: &[f64]) -> f64 {
        let gain = self.gain;
        let expand = |l: &f64| vec![l * gain, l + gain];
        let mut total = 0.0;
        for l in loads {
            for part in expand(l) {
                total += part;
            }
        }
        total
    }
}
