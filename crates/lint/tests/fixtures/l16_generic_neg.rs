//! L16 edge case: `impl Trait` returns and generic method calls stay in
//! the call graph without dragging external constructors into the hot
//! set — iterator adapters borrow, they do not allocate.

pub struct Folder {
    pub bias: f64,
}

impl Folder {
    pub fn decide(&self, xs: &[f64]) -> f64 {
        let raw = self.shifted(xs).fold(0.0, |acc, v| acc + v);
        self.apply(raw, |v| v * 0.5)
    }

    fn shifted<'a>(&'a self, xs: &'a [f64]) -> impl Iterator<Item = f64> + 'a {
        xs.iter().map(move |x| x + self.bias)
    }

    fn apply<F: Fn(f64) -> f64>(&self, x: f64, f: F) -> f64 {
        f(x)
    }
}
