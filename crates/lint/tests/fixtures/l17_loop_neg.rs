//! L17 negative: every hot loop has a derivable bound — `for` over a
//! finite collection, a counted `while` with a monotone step, a
//! `while let` draining a queue.

pub struct Drainer {
    pub queue: Vec<f64>,
}

impl Drainer {
    pub fn decide(&mut self, xs: &[f64]) -> f64 {
        let mut total = 0.0;
        for x in xs {
            total += x;
        }
        let mut i = 0;
        while i < xs.len() {
            total += 1.0;
            i += 1;
        }
        while let Some(v) = self.queue.pop() {
            total += v;
        }
        total
    }
}
