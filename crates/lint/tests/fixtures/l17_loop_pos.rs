//! L17 positive: a condition-polling `while` in a hot root has no
//! derivable bound — it needs a declared `[bounds]` measure.

pub struct Poller {
    pub target: u64,
}

impl Poller {
    pub fn decide(&mut self, mut signal: u64) -> u64 {
        let mut spins = 0;
        while signal != self.target {
            signal = next_signal(signal);
            spins += 1;
        }
        spins
    }
}

fn next_signal(s: u64) -> u64 {
    s.wrapping_mul(31).wrapping_add(7)
}
