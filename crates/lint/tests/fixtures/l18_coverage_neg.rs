//! L18 negative: every field of the checkpoint-carried struct is
//! mentioned in both the encode and decode directions.

pub struct LearnerState {
    pub weights: f64,
    pub bias: f64,
}

pub fn encode_state(s: &LearnerState) -> (f64, f64) {
    (s.weights, s.bias)
}

pub fn decode_state(raw: (f64, f64)) -> LearnerState {
    let weights = raw.0;
    let bias = raw.1;
    LearnerState { weights, bias }
}
