//! L18 positive: `LearnerState.bias` is written by the encoder but
//! forgotten by the decoder — a crash/restore would silently resurrect
//! it from `Default`.

#[derive(Default)]
pub struct LearnerState {
    pub weights: f64,
    pub bias: f64,
}

pub fn encode_state(s: &LearnerState) -> (f64, f64) {
    (s.weights, s.bias)
}

pub fn decode_state(raw: (f64, f64)) -> LearnerState {
    let weights = raw.0;
    LearnerState {
        weights,
        ..Default::default()
    }
}
