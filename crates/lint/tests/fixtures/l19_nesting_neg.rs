//! L19 negative: two nested loops sit exactly at the default budget and
//! must stay silent.

pub struct Planner {
    pub floor: f64,
}

impl Planner {
    pub fn decide(&self, ops: &[f64], tasks: &[f64]) -> f64 {
        let mut best = self.floor;
        for a in ops {
            for b in tasks {
                let score = a + b;
                if score > best {
                    best = score;
                }
            }
        }
        best
    }
}
