//! L19 positive: a triple-nested loop in a hot root exceeds the default
//! nesting budget of 2 — per-slot work shaped like this goes superlinear
//! in operators × tasks.

pub struct Planner {
    pub floor: f64,
}

impl Planner {
    pub fn decide(&self, ops: &[f64], tasks: &[f64]) -> f64 {
        let mut best = self.floor;
        for a in ops {
            for b in tasks {
                for c in tasks {
                    let score = a + b + c;
                    if score > best {
                        best = score;
                    }
                }
            }
        }
        best
    }
}
