//! Fixture: `.expect(..)` in library code must trigger exactly L1.

pub fn budget(pods: Option<usize>) -> usize {
    pods.expect("budget must be configured")
}
