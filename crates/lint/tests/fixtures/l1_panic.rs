//! Fixture: explicit panic macros must each trigger L1 (three findings).

pub fn dispatch(kind: u8) -> usize {
    match kind {
        0 => todo!("not built yet"),
        1 => panic!("bad kind"),
        _ => unreachable!(),
    }
}
