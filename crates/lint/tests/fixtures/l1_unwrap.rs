//! Fixture: `.unwrap()` in library code must trigger exactly L1.

pub fn first_operator(tasks: &[usize]) -> usize {
    *tasks.first().unwrap()
}
