//! Fixture: `HashMap`/`HashSet` must trigger L2 (two findings).

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> (usize, usize) {
    let mut counts: HashMap<u32, usize> = Default::default();
    let mut seen: HashSet<u32> = Default::default();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
        seen.insert(x);
    }
    (counts.len(), seen.len())
}
