//! Fixture: unseeded RNG must trigger exactly L2.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::r#gen(&mut rng)
}
