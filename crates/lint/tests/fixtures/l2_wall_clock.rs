//! Fixture: wall-clock reads must trigger L2 (two findings).

pub fn stamp() -> (std::time::Instant, std::time::SystemTime) {
    (
        std::time::Instant::now(),
        std::time::SystemTime::now(),
    )
}
