//! Fixture: NaN-unsafe comparator must trigger exactly L3 — and not a
//! second L1 for the trailing `.unwrap()`.

pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
