//! Fixture: float→int `as` cast must trigger exactly L4.

pub fn pods_for_budget(dollars_per_hour: f64, dollars_per_pod: f64) -> usize {
    (dollars_per_hour / dollars_per_pod) as usize
}
