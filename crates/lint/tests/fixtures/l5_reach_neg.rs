//! L5 negative: the same division chain, but no `pub` item reaches it —
//! the panic site is dead weight for the public API, so reachability
//! stays silent.

fn entry(total: u64, n: u64) -> u64 {
    middle(total, n)
}

fn middle(total: u64, n: u64) -> u64 {
    leaf(total, n)
}

fn leaf(total: u64, n: u64) -> u64 {
    total / n
}

pub fn safe(total: u64, n: u64) -> u64 {
    total.checked_div(n).unwrap_or(0)
}
