//! L5 positive: a `pub` entry point reaches an unguarded integer division
//! two private calls deep. The finding must carry the full call chain
//! `entry -> middle -> leaf`.

pub fn entry(total: u64, n: u64) -> u64 {
    middle(total, n)
}

fn middle(total: u64, n: u64) -> u64 {
    leaf(total, n)
}

fn leaf(total: u64, n: u64) -> u64 {
    total / n
}
