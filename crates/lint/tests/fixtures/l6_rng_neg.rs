//! L6 negative: RNG streams derived from an explicit seed or a named
//! stream constructor are replayable and pass the discipline check.

pub fn seeded_draw(seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen()
}

pub fn named_stream(noise_seed: u64) -> f64 {
    let mut rng = StreamRng::new(noise_seed);
    rng.gen()
}
