//! L6 positive: an entropy-seeded RNG construction. Replaying a trace is
//! impossible when the stream is seeded from the OS.

pub fn unseeded_draw() -> f64 {
    let mut rng = SmallRng::from_entropy();
    rng.gen()
}
