//! L7 negative: converting between dimensions with `*`/`/` is the
//! sanctioned idiom, and same-dimension arithmetic is always fine.

pub fn convert(processed_tuples: f64, elapsed_secs: f64) -> f64 {
    processed_tuples / elapsed_secs
}

pub fn same_dimension(warmup_secs: f64, run_secs: f64) -> f64 {
    warmup_secs + run_secs
}
