//! L7 positive: adding a rate (tuples/s) to a duration (seconds) is
//! dimensionally meaningless and must be flagged.

pub fn mixed(input_tps: f64, window_secs: f64) -> f64 {
    input_tps + window_secs
}
