//! L8 negative: `.get()` with an explicit fallback never panics, and
//! attribute brackets / array types are not indexing.

#[derive(Clone, Default)]
pub struct Window {
    pub samples: [f64; 4],
}

pub fn pick(xs: &[f64], i: usize) -> f64 {
    xs.get(i).copied().unwrap_or(0.0)
}
