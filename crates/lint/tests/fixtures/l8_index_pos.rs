//! L8 positive: unchecked slice indexing panics on an out-of-range id.

pub fn pick(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
