//! L9 negative: the same source→sink shape as `l9_taint_pos.rs`, but the
//! snapshot is gated through `MetricSanitizer::sanitize` before reaching
//! the GP. Must produce no L9 finding.

pub struct FluidSim {
    pub backlog: f64,
}

impl FluidSim {
    pub fn run_slot(&mut self, rate_tps: f64) -> f64 {
        self.backlog = self.backlog + rate_tps;
        self.backlog
    }
}

pub struct MetricSanitizer {
    pub ceiling: f64,
}

impl MetricSanitizer {
    pub fn sanitize(&mut self, m: f64) -> f64 {
        m.clamp(0.0, self.ceiling)
    }
}

pub struct GpRegressor {
    pub sum: f64,
}

impl GpRegressor {
    pub fn observe(&mut self, y: f64) -> Result<(), String> {
        self.sum = self.sum + y;
        Ok(())
    }
}

pub fn drive(
    sim: &mut FluidSim,
    san: &mut MetricSanitizer,
    gp: &mut GpRegressor,
) -> Result<(), String> {
    let raw = sim.run_slot(9.0);
    let clean = san.sanitize(raw);
    gp.observe(clean)
}
