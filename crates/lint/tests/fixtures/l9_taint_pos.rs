//! L9 positive: a raw slot snapshot flows through a helper into the GP
//! without ever passing the sanitizer. The finding must carry the full
//! source→sink chain `run_slot -> fetch -> drive -> observe`.

pub struct FluidSim {
    pub backlog: f64,
}

impl FluidSim {
    pub fn run_slot(&mut self, rate_tps: f64) -> f64 {
        self.backlog = self.backlog + rate_tps;
        self.backlog
    }
}

pub struct GpRegressor {
    pub sum: f64,
}

impl GpRegressor {
    pub fn observe(&mut self, y: f64) -> Result<(), String> {
        self.sum = self.sum + y;
        Ok(())
    }
}

fn fetch(sim: &mut FluidSim) -> f64 {
    sim.run_slot(9.0)
}

pub fn drive(sim: &mut FluidSim, gp: &mut GpRegressor) -> Result<(), String> {
    let raw = fetch(sim);
    gp.observe(raw)
}
