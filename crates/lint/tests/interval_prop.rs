//! Soundness property test for the interval domain: for randomly
//! generated straight-line programs, every concrete execution result must
//! land inside the abstract return summary computed by the interpreter
//! (or be NaN with the summary's NaN flag set).
//!
//! The generator is a hand-rolled xorshift64* with a fixed seed — the
//! lint crate is dependency-free by design, and the repo's own L2/L6
//! rules demand deterministic tests.

use dragster_lint::absint::summaries_for_source;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Literals whose `{:?}` rendering is plain decimal (no scientific
/// notation — the token-level number parser does not read exponents).
const LITS: &[f64] = &[0.0, 0.5, 1.0, 2.0, 3.5, 10.0, 100.0, 1000000.0];

/// One straight-line statement: how variable `i` is computed from
/// variables with smaller indices (0 = param `a`, 1 = param `b`).
#[derive(Clone, Copy)]
enum Expr {
    Lit(f64),
    Bin(char, usize, usize),
    Max(usize, f64),
    Min(usize, f64),
    Clamp(usize, f64, f64),
    Abs(usize),
    Sqrt(usize),
}

fn var_name(i: usize) -> String {
    match i {
        0 => "a".to_string(),
        1 => "b".to_string(),
        _ => format!("x{i}"),
    }
}

fn gen_expr(rng: &mut Rng, n_defined: usize) -> Expr {
    let v = |rng: &mut Rng| rng.below(n_defined);
    let lit = |rng: &mut Rng| {
        let l = LITS[rng.below(LITS.len())];
        if rng.below(2) == 0 {
            -l
        } else {
            l
        }
    };
    match rng.below(8) {
        0 => Expr::Lit(lit(rng)),
        1 => Expr::Bin('+', v(rng), v(rng)),
        2 => Expr::Bin('-', v(rng), v(rng)),
        3 => Expr::Bin('*', v(rng), v(rng)),
        4 => Expr::Bin('/', v(rng), v(rng)),
        5 => Expr::Max(v(rng), lit(rng)),
        6 => Expr::Min(v(rng), lit(rng)),
        7 => {
            let (x, y) = (lit(rng), lit(rng));
            if rng.below(3) == 0 {
                Expr::Abs(v(rng))
            } else if rng.below(2) == 0 {
                Expr::Sqrt(v(rng))
            } else {
                Expr::Clamp(v(rng), x.min(y), x.max(y))
            }
        }
        _ => unreachable!(),
    }
}

fn expr_src(e: &Expr) -> String {
    match *e {
        Expr::Lit(l) => format!("{l:?}"),
        Expr::Bin(op, i, j) => format!("{} {op} {}", var_name(i), var_name(j)),
        Expr::Max(i, l) => format!("{}.max({l:?})", var_name(i)),
        Expr::Min(i, l) => format!("{}.min({l:?})", var_name(i)),
        Expr::Clamp(i, lo, hi) => format!("{}.clamp({lo:?}, {hi:?})", var_name(i)),
        Expr::Abs(i) => format!("{}.abs()", var_name(i)),
        Expr::Sqrt(i) => format!("{}.sqrt()", var_name(i)),
    }
}

fn render(prog: &[Expr]) -> String {
    let mut s = String::from("pub fn f(a: f64, b: f64) -> f64 {\n");
    for (i, e) in prog.iter().enumerate().skip(2) {
        s.push_str(&format!("    let x{i} = {};\n", expr_src(e)));
    }
    s.push_str(&format!("    x{}\n}}\n", prog.len() - 1));
    s
}

/// Concrete f64 semantics, mirroring what rustc would execute.
fn eval(prog: &[Expr], a: f64, b: f64) -> f64 {
    let mut vals = vec![a, b];
    for e in &prog[2..] {
        let v = match *e {
            Expr::Lit(l) => l,
            Expr::Bin('+', i, j) => vals[i] + vals[j],
            Expr::Bin('-', i, j) => vals[i] - vals[j],
            Expr::Bin('*', i, j) => vals[i] * vals[j],
            Expr::Bin('/', i, j) => vals[i] / vals[j],
            Expr::Bin(..) => unreachable!(),
            Expr::Max(i, l) => vals[i].max(l),
            Expr::Min(i, l) => vals[i].min(l),
            Expr::Clamp(i, lo, hi) => vals[i].clamp(lo, hi),
            Expr::Abs(i) => vals[i].abs(),
            Expr::Sqrt(i) => vals[i].sqrt(),
        };
        vals.push(v);
    }
    *vals.last().expect("program has at least the two params")
}

/// Concrete inputs: zeros, signs, magnitudes, infinities, and NaN — the
/// summary must absorb all of them (params are seeded TOP).
const INPUTS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -2.5,
    1.0e8,
    -1.0e8,
    f64::MAX,
    -f64::MAX,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::NAN,
];

#[test]
fn concrete_runs_land_inside_abstract_summaries() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut checked = 0usize;
    for round in 0..300 {
        let n_lets = 3 + rng.below(6);
        let mut prog: Vec<Expr> = vec![Expr::Lit(0.0), Expr::Lit(0.0)]; // param slots
        for _ in 0..n_lets {
            let n = prog.len();
            prog.push(gen_expr(&mut rng, n));
        }
        let src = render(&prog);
        let summaries = summaries_for_source("prop.rs", &src);
        let (_, iv) = summaries
            .iter()
            .find(|(k, _)| k.ends_with("::f") || k.as_str() == "f")
            .unwrap_or_else(|| panic!("round {round}: no summary for `f` in:\n{src}"));
        for (ai, &a) in INPUTS.iter().enumerate() {
            // Pair each input with a rotating partner to cover the grid
            // without quadratic blowup.
            let b = INPUTS[(ai + round) % INPUTS.len()];
            let r = eval(&prog, a, b);
            if r.is_nan() {
                assert!(
                    iv.nan,
                    "round {round}: f({a:?}, {b:?}) = NaN but summary {} claims NaN-free for:\n{src}",
                    iv.render()
                );
            } else {
                assert!(
                    iv.contains(r),
                    "round {round}: f({a:?}, {b:?}) = {r:?} escapes summary {} for:\n{src}",
                    iv.render()
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 3000, "generator under-delivered: {checked}");
}
